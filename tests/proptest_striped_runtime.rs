//! Property tests for the multi-region runtime: random
//! put/delete/cas/get mixes — as single-op tasks and as batch windows —
//! driven through `StripedRuntime::run_tasks` over a sharded KV store,
//! with crash injection into random regions (shard or control), checked
//! two ways:
//!
//! * `check_kv_sharded` over the collected history (per-shard chains,
//!   global tags, key routing);
//! * a `KvSpec` replay — answer-exact against the sequential map in
//!   the single-worker, no-crash property, and witness-derived final
//!   contents in the crashing property.
//!
//! # Reproducing failures
//!
//! The proptest shim has no shrinking; every case is deterministic per
//! (test, case index). Knobs:
//!
//! * `PROPTEST_SHIM_SEED=<u64>` — perturbs all case seeds (default 0);
//! * `PROPTEST_CASES=<n>` — cases per property (default 256, lowered
//!   per-property below).
//!
//! A failure message names the case index; re-running with the same
//! environment replays the identical case.

use proptest::prelude::*;

use pstack::core::{FunctionRegistry, RecoveryMode, RuntimeConfig, StripedRuntime, Task};
use pstack::kv::{
    shard_of, KvOpTable, KvTaskOp, KvTaskResult, KvVariant, ShardedKvStore, ShardedKvTaskFunction,
    KV_SHARDED_FUNC_ID,
};
use pstack::nvram::{FailPlan, PMem, PMemBuilder, PMemStripe, POffset};
use pstack::verify::{
    check_kv_sharded, KvAnswer, KvOp, KvOpKind, KvShardedHistory, KvSpec, KvWitnessRecord,
};

const KEY_SPACE: u64 = 12;

fn op_strategy() -> impl Strategy<Value = KvTaskOp> {
    let key = 0u64..KEY_SPACE;
    let val = -50i64..50;
    prop_oneof![
        4 => (key.clone(), val.clone()).prop_map(|(key, value)| KvTaskOp::Put { key, value }),
        2 => key.clone().prop_map(|key| KvTaskOp::Get { key }),
        1 => key.clone().prop_map(|key| KvTaskOp::Delete { key }),
        2 => (key, val.clone(), val)
            .prop_map(|(key, expected, new)| KvTaskOp::Cas { key, expected, new }),
    ]
}

/// `partition_ops_padded` under a shorter local name: the per-shard op
/// lists, idle shards padded — their concatenation in shard order is
/// exactly the order `pending_tasks` emits single-op tasks in.
fn partition_padded(ops: &[KvTaskOp], shards: usize) -> Vec<Vec<KvTaskOp>> {
    ShardedKvTaskFunction::partition_ops_padded(ops, shards)
}

/// Formats the whole system: buffered stripe, one store + table per
/// shard, a one-worker runtime over a fresh control region. Returns
/// the regions plus each shard's table base (to re-attach after a
/// crash).
fn build_system(per_shard: &[Vec<KvTaskOp>]) -> (PMem, PMemStripe, Vec<POffset>) {
    let shards = per_shard.len();
    let stripe = PMemBuilder::new().len(1 << 19).build_striped(shards);
    let store = ShardedKvStore::format(stripe.regions(), 8, 1024, KvVariant::Nsrl).unwrap();
    let bases: Vec<POffset> = per_shard
        .iter()
        .enumerate()
        .map(|(s, shard_ops)| {
            KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops)
                .unwrap()
                .base()
        })
        .collect();
    let control = PMemBuilder::new().len(1 << 20).build_in_memory();
    let stub = FunctionRegistry::new();
    StripedRuntime::format(
        control.clone(),
        stripe.clone(),
        RuntimeConfig::new(1).stack_capacity(8 * 1024),
        &stub,
    )
    .unwrap();
    (control, stripe, bases)
}

fn attach(
    control: &PMem,
    stripe: &PMemStripe,
    bases: &[POffset],
) -> (ShardedKvStore, Vec<KvOpTable>, StripedRuntime) {
    let store = ShardedKvStore::open(stripe.regions(), KvVariant::Nsrl).unwrap();
    let tables: Vec<KvOpTable> = bases
        .iter()
        .enumerate()
        .map(|(s, &base)| KvOpTable::open(stripe.region(s).clone(), base).unwrap())
        .collect();
    let mut registry = FunctionRegistry::new();
    registry
        .register(
            KV_SHARDED_FUNC_ID,
            ShardedKvTaskFunction::new(store.clone(), tables.clone()).into_arc(),
        )
        .unwrap();
    let rt = StripedRuntime::open(control.clone(), stripe.clone(), &registry).unwrap();
    (store, tables, rt)
}

/// Tiny xorshift Fisher–Yates, so task schedules vary per case without
/// pulling an RNG into the facade's dev-dependencies.
fn shuffle(tasks: &mut [Task], mut seed: u64) {
    for i in (1..tasks.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        tasks.swap(i, (seed % (i as u64 + 1)) as usize);
    }
}

/// The spec's answer for `op`, applied in place.
fn spec_answer(spec: &mut KvSpec, op: KvTaskOp) -> KvTaskResult {
    match op {
        KvTaskOp::Put { key, value } => KvTaskResult::Stored(spec.put(key, value)),
        KvTaskOp::Get { key } => KvTaskResult::Got(spec.get(key)),
        KvTaskOp::Delete { key } => KvTaskResult::Deleted(spec.delete(key)),
        KvTaskOp::Cas { key, expected, new } => KvTaskResult::Swapped(spec.cas(key, expected, new)),
    }
}

/// Builds the verifier history from quiescent tables + chains.
fn history_of(store: &ShardedKvStore, tables: &[KvOpTable]) -> KvShardedHistory {
    let shards = store
        .snapshot_sharded()
        .unwrap()
        .into_iter()
        .map(|chains| {
            chains
                .into_iter()
                .map(|chain| chain.into_iter().map(KvWitnessRecord::from).collect())
                .collect()
        })
        .collect();
    let mut ops = Vec::new();
    for (s, table) in tables.iter().enumerate() {
        for idx in 0..table.len() {
            let answer = table.result(idx).unwrap().expect("table drained");
            let seq = ShardedKvTaskFunction::seq_of(s as u32, idx);
            let pid = u64::from(answer.executor);
            let (kind, key, value, expected, ans) = match (table.op(idx).unwrap(), answer.result) {
                (KvTaskOp::Put { key, value }, KvTaskResult::Stored(ok)) => {
                    (KvOpKind::Put, key, value, 0, KvAnswer::Stored(ok))
                }
                (KvTaskOp::Get { key }, KvTaskResult::Got(v)) => {
                    (KvOpKind::Get, key, 0, 0, KvAnswer::Got(v))
                }
                (KvTaskOp::Delete { key }, KvTaskResult::Deleted(ok)) => {
                    (KvOpKind::Delete, key, 0, 0, KvAnswer::Deleted(ok))
                }
                (KvTaskOp::Cas { key, expected, new }, KvTaskResult::Swapped(ok)) => {
                    (KvOpKind::Cas, key, new, expected, KvAnswer::Swapped(ok))
                }
                (op, res) => panic!("answer {res:?} does not match op {op:?}"),
            };
            ops.push(KvOp {
                pid,
                seq,
                kind,
                key,
                value,
                expected,
                answer: ans,
            });
        }
    }
    KvShardedHistory { ops, shards }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-free single-op drive: one worker executes every descriptor
    /// in shard-table order, so the answers must match a `KvSpec`
    /// replay in exactly that order, op for op.
    #[test]
    fn single_worker_answers_match_the_sequential_spec(
        ops in proptest::collection::vec(op_strategy(), 1..48),
        shards in 2usize..=4,
    ) {
        let per_shard = partition_padded(&ops, shards);
        let (control, stripe, bases) = build_system(&per_shard);
        let (store, tables, rt) = attach(&control, &stripe, &bases);
        let func = ShardedKvTaskFunction::new(store.clone(), tables.clone());
        let tasks = func.pending_tasks(KV_SHARDED_FUNC_ID, 1).unwrap();
        let report = rt.run_tasks(tasks);
        prop_assert!(!report.crashed);
        prop_assert_eq!(report.task_errors, 0);

        let mut spec = KvSpec::new();
        for (s, shard_ops) in per_shard.iter().enumerate() {
            for (idx, &op) in shard_ops.iter().enumerate() {
                let expected = spec_answer(&mut spec, op);
                let got = tables[s].result(idx).unwrap().expect("descriptor done");
                prop_assert_eq!(got.result, expected, "shard {} descriptor {}", s, idx);
            }
        }
        // Final contents agree with the spec too.
        for (key, value) in store.contents().unwrap() {
            prop_assert_eq!(spec.get(key), Some(value));
        }
        let verdict = check_kv_sharded(&history_of(&store, &tables), |k| shard_of(k, shards));
        prop_assert!(verdict.is_linearizable(), "{:?}", verdict);
    }

    /// Random batch windows + crash injection into random regions: the
    /// campaign loop in miniature. After every schedule the history
    /// must pass `check_kv_sharded`, and the store's reported contents
    /// must equal a `KvSpec` replay of the published witness chains.
    #[test]
    fn crashing_schedules_stay_linearizable(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        shards in 2usize..=4,
        batch in 1usize..=6,
        schedule_seed in 1u64..u64::MAX,
        kills in proptest::collection::vec((0usize..8, 2u64..50), 0..4),
    ) {
        let per_shard = partition_padded(&ops, shards);
        let (mut control, mut stripe, bases) = build_system(&per_shard);
        let mut kills = kills.into_iter();
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            prop_assert!(rounds <= 24, "system failed to drain");
            let (store, tables, rt) = attach(&control, &stripe, &bases);
            let func = ShardedKvTaskFunction::new(store.clone(), tables.clone());
            let mut tasks = func.pending_tasks(KV_SHARDED_FUNC_ID, batch).unwrap();
            if tasks.is_empty() {
                let verdict =
                    check_kv_sharded(&history_of(&store, &tables), |k| shard_of(k, shards));
                prop_assert!(verdict.is_linearizable(), "{:?}", verdict);
                // KvSpec replay of the witness chains reproduces the
                // store's reported contents exactly.
                let mut spec = KvSpec::new();
                for chains in store.snapshot_sharded().unwrap() {
                    for rec in chains.iter().flatten() {
                        if rec.is_delete {
                            spec.delete(rec.key);
                        } else {
                            spec.put(rec.key, rec.value);
                        }
                    }
                }
                let contents = store.contents().unwrap();
                prop_assert_eq!(contents.len(), spec.contents().len());
                for (key, value) in contents {
                    prop_assert_eq!(spec.get(key), Some(value));
                }
                break;
            }
            shuffle(&mut tasks, schedule_seed ^ rounds as u64);

            // Inject this round's kill, if the plan has one left:
            // region `r % (shards + 1)`, where the extra index is the
            // control region (the runtime's own stack discipline).
            if let Some((r, countdown)) = kills.next() {
                let plan = FailPlan::after_events(countdown);
                if r % (shards + 1) == shards {
                    control.arm_failpoint(plan);
                } else {
                    stripe.region(r % (shards + 1)).arm_failpoint(plan);
                }
            }
            let report = rt.run_tasks(tasks);
            stripe.disarm_all();
            control.disarm_failpoint();
            if report.crashed {
                prop_assert!(rt.all_crashed(), "crash must trip every region");
                prop_assert!(report.crash_site.is_some(), "crash must be attributed");
                control = control.reopen().unwrap();
                stripe = stripe.reopen_all().unwrap();
                let (_, _, rt) = attach(&control, &stripe, &bases);
                rt.recover(RecoveryMode::Parallel).unwrap();
            }
        }
    }
}
