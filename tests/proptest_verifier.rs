//! Property tests for the verifiers: the polynomial Eulerian checker
//! against the brute-force oracle, witness replay soundness, and
//! "simulated executions are always serializable".

use proptest::prelude::*;

use pstack::verify::{
    brute_force_serializable, check_linearizability, check_sequential_consistency,
    check_serializability, replay_witness, CasHistory, CasOp, ProgramOrderHistory, SerialVerdict,
    TimedHistory, TimedOp,
};

fn op_strategy(values: std::ops::RangeInclusive<i64>) -> impl Strategy<Value = CasOp> {
    (0usize..4, values.clone(), values, proptest::bool::ANY).prop_map(|(pid, old, new, success)| {
        CasOp {
            pid,
            old,
            new,
            success,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The polynomial checker agrees with brute force on random small
    /// histories over a tiny value domain (maximizing collisions).
    #[test]
    fn eulerian_checker_matches_brute_force(
        init in -2i64..=2,
        final_value in -2i64..=2,
        ops in proptest::collection::vec(op_strategy(-2..=2), 0..7),
    ) {
        let h = CasHistory::new(init, final_value, ops);
        let fast = check_serializability(&h).is_serializable();
        let slow = brute_force_serializable(&h);
        prop_assert_eq!(fast, slow, "disagreement on {:?}", h);
    }

    /// Positive verdicts always come with a replayable witness.
    #[test]
    fn witnesses_always_replay(
        init in -3i64..=3,
        final_value in -3i64..=3,
        ops in proptest::collection::vec(op_strategy(-3..=3), 0..8),
    ) {
        let h = CasHistory::new(init, final_value, ops);
        if let SerialVerdict::Serializable { order } = check_serializability(&h) {
            prop_assert!(replay_witness(&h, &order).is_ok(), "witness failed for {:?}", h);
        }
    }

    /// Histories produced by an actual sequential register simulation
    /// are always serializable — and stay so under op reordering.
    #[test]
    fn simulated_executions_are_serializable(
        init in -5i64..=5,
        attempts in proptest::collection::vec((-5i64..=5, -5i64..=5), 1..40),
        rotation in 0usize..40,
    ) {
        let mut register = init;
        let mut ops = Vec::new();
        for (old, new) in attempts {
            let success = register == old;
            if success {
                register = new;
            }
            ops.push(CasOp { pid: 0, old, new, success });
        }
        let final_value = register;
        // Serializability has no real-time constraints: any reporting
        // order of the same op multiset must stay serializable.
        let r = rotation % ops.len().max(1);
        ops.rotate_left(r);
        let h = CasHistory::new(init, final_value, ops);
        prop_assert!(
            check_serializability(&h).is_serializable(),
            "simulated execution rejected: {:?}",
            h
        );
    }

    /// Corrupting one successful op's reported answer in a simulated
    /// execution is (almost always) caught; specifically, flipping a
    /// *unique-valued* successful op to failed must always be caught,
    /// because its edge was load-bearing for the final value.
    #[test]
    fn dropping_a_success_is_caught_when_values_are_unique(
        n in 2usize..20,
        victim in 0usize..20,
    ) {
        // Build a chain 0→1→2→…→n with unique values: every edge is
        // necessary.
        let mut ops: Vec<CasOp> = (0..n as i64)
            .map(|i| CasOp { pid: 0, old: i, new: i + 1, success: true })
            .collect();
        let victim = victim % n;
        ops[victim].success = false; // lie: it actually happened
        let h = CasHistory::new(0, n as i64, ops);
        prop_assert!(
            !check_serializability(&h).is_serializable(),
            "dropped success not caught: {:?}",
            h
        );
    }

    /// Linearizable timed histories are serializable after untiming.
    #[test]
    fn linearizable_implies_serializable(
        init in -2i64..=2,
        raw in proptest::collection::vec((op_strategy(-2..=2), 0u64..40, 1u64..10), 0..6),
    ) {
        let ops: Vec<TimedOp> = raw
            .into_iter()
            .map(|(op, start, dur)| TimedOp { op, invoked: start, returned: start + dur })
            .collect();
        let h = TimedHistory::new(init, ops);
        if let pstack::verify::LinVerdict::Linearizable { order } = check_linearizability(&h) {
            let mut reg = h.init;
            for &i in &order {
                if h.ops[i].op.success {
                    reg = h.ops[i].op.new;
                }
            }
            prop_assert!(
                check_serializability(&h.untimed(reg)).is_serializable(),
                "linearizable but not serializable: {:?}",
                h
            );
        }
    }

    /// The classical hierarchy: linearizability implies sequential
    /// consistency. Per-process programs get sequential (within a
    /// process) but overlapping (across processes) intervals; whenever
    /// the timed history linearizes, the same answers must admit a
    /// program-order-respecting interleaving.
    #[test]
    fn linearizable_implies_sequentially_consistent(
        init in -2i64..=2,
        programs in proptest::collection::vec(
            proptest::collection::vec((-2i64..=2, -2i64..=2, proptest::bool::ANY), 0..3),
            1..4,
        ),
    ) {
        let mut timed = Vec::new();
        let mut per_process = Vec::new();
        for (pid, prog) in programs.iter().enumerate() {
            let mut mine = Vec::new();
            for (j, (old, new, success)) in prog.iter().enumerate() {
                let op = CasOp { pid, old: *old, new: *new, success: *success };
                mine.push(op);
                // Sequential within the process, overlapping across
                // processes: [10j + pid, 10j + pid + 8].
                let invoked = (j as u64) * 10 + pid as u64;
                timed.push(TimedOp { op, invoked, returned: invoked + 8 });
            }
            per_process.push(mine);
        }
        prop_assume!(!timed.is_empty() && timed.len() <= 12);
        let th = TimedHistory::new(init, timed);
        if check_linearizability(&th).is_linearizable() {
            let poh = ProgramOrderHistory::new(init, per_process);
            prop_assert!(
                check_sequential_consistency(&poh).is_sequentially_consistent(),
                "linearizable but not SC: {:?}",
                th
            );
        }
    }
}
