//! Integration test for the `pstack-dump` image inspector: build a
//! file-backed system, leave an in-flight frame on a worker stack via a
//! crash, and check the inspector renders it without touching the
//! image.

use std::path::PathBuf;
use std::process::Command;

use pstack::core::{FunctionRegistry, Runtime, RuntimeConfig, Task};
use pstack::nvram::{FailPlan, PMemBuilder};

fn tmp_image(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("pstack-dumptest-{tag}-{}.img", std::process::id()));
    p
}

#[test]
fn dump_renders_crashed_image() {
    let image = tmp_image("crashed");
    let _ = std::fs::remove_file(&image);
    {
        let pmem = PMemBuilder::new()
            .len(1 << 20)
            .eager_flush(true)
            .build_file(&image)
            .unwrap();
        let mut registry = FunctionRegistry::new();
        registry
            .register_pair(
                0xDEAD,
                |ctx, _args| {
                    // Burn persistence events until the fail-point cuts us.
                    for i in 0..1000u64 {
                        ctx.pmem.write_u64(ctx.user_root(), i)?;
                        ctx.pmem.flush(ctx.user_root(), 8)?;
                    }
                    Ok(None)
                },
                |_ctx, _args| Ok(None),
            )
            .unwrap();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &registry).unwrap();
        pmem.arm_failpoint(FailPlan::after_events(60));
        let report = rt.run_tasks(vec![Task::new(0xDEAD, b"payload!".to_vec())]);
        assert!(report.crashed);
        // Process "dies": handles dropped, only the file remains.
    }

    let before = std::fs::read(&image).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pstack-dump"))
        .arg(&image)
        .output()
        .expect("inspector runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("superblock"), "{text}");
    assert!(text.contains("workers:      2"), "{text}");
    assert!(
        text.contains("func 0xdead"),
        "in-flight frame missing: {text}"
    );
    assert!(text.contains("consistency: ok"), "{text}");
    assert!(text.contains("heap:"), "{text}");
    // Read-only: the image is bit-identical after inspection.
    assert_eq!(
        before,
        std::fs::read(&image).unwrap(),
        "inspector must not write"
    );

    let _ = std::fs::remove_file(&image);
}

#[test]
fn dump_rejects_garbage_and_missing_files() {
    let image = tmp_image("garbage");
    std::fs::write(&image, vec![0u8; 4096]).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_pstack-dump"))
        .arg(&image)
        .output()
        .unwrap();
    assert!(!out.status.success(), "garbage image must not parse");
    let _ = std::fs::remove_file(&image);

    let out = Command::new(env!("CARGO_BIN_EXE_pstack-dump"))
        .arg("/nonexistent/image.img")
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = Command::new(env!("CARGO_BIN_EXE_pstack-dump"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "usage error code");
}
