//! End-to-end §5.2 campaigns as integration tests: correct CAS always
//! serializable across configurations; verifier agrees with the
//! linearizability checker on tiny single-worker executions.

use pstack::chaos::{run_campaign, CampaignConfig};
use pstack::core::StackKind;
use pstack::recoverable::CasVariant;
use pstack::verify::{check_linearizability, LinVerdict, TimedHistory, TimedOp};

#[test]
fn campaign_wide_serializable() {
    let report = run_campaign(&CampaignConfig::wide(80, 1)).unwrap();
    assert!(report.is_serializable(), "{:?}", report.verdict);
    assert!(report.crashes > 0);
}

#[test]
fn campaign_narrow_serializable() {
    let report = run_campaign(&CampaignConfig::narrow(80, 2)).unwrap();
    assert!(report.is_serializable(), "{:?}", report.verdict);
}

#[test]
fn campaigns_on_unbounded_stacks() {
    for kind in [StackKind::Vec, StackKind::List] {
        let report = run_campaign(&CampaignConfig::narrow(40, 3).stack(kind)).unwrap();
        assert!(report.is_serializable(), "{kind}: {:?}", report.verdict);
    }
}

#[test]
fn single_worker_campaign_history_is_linearizable() {
    // With one worker the execution is sequential, so the untimed
    // history must also pass the (stricter) linearizability checker
    // when given sequential timestamps in completion order... which we
    // don't know; but serializability's witness gives a valid order.
    // Use a tiny campaign and check via the witness that a sequential
    // timing exists: assign each op its witness position as interval.
    let cfg = CampaignConfig {
        workers: 1,
        n_ops: 12,
        ..CampaignConfig::narrow(12, 9)
    };
    let report = run_campaign(&cfg).unwrap();
    let verdict = report.verdict.clone();
    let order = match verdict {
        pstack::verify::SerialVerdict::Serializable { order } => order,
        other => panic!("single-worker campaign not serializable: {other:?}"),
    };
    // Build a timed history where op order[i] occupies interval
    // [2i, 2i+1]: sequential and in witness order. It must linearize.
    let mut timed = vec![None; report.history.ops.len()];
    for (pos, &idx) in order.iter().enumerate() {
        timed[idx] = Some(TimedOp {
            op: report.history.ops[idx],
            invoked: 2 * pos as u64,
            returned: 2 * pos as u64 + 1,
        });
    }
    let h = TimedHistory::new(
        report.history.init,
        timed.into_iter().map(|t| t.unwrap()).collect(),
    );
    assert!(matches!(
        check_linearizability(&h),
        LinVerdict::Linearizable { .. }
    ));
}

#[test]
fn buggy_campaign_reports_are_well_formed() {
    // Whether or not the bug manifests for this seed, the report must
    // be complete and internally consistent.
    let cfg = CampaignConfig::narrow(30, 5).variant(CasVariant::NoMatrix);
    let report = run_campaign(&cfg).unwrap();
    assert_eq!(report.history.ops.len(), 30);
    assert!(report.rounds >= 1);
}
