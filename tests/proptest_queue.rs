//! Property tests: the recoverable queue against a volatile `VecDeque`
//! model, random crash points with recovery, and metamorphic checks on
//! the FIFO verifier (random mutations of a valid witness must be
//! caught).

use std::collections::VecDeque;

use proptest::prelude::*;

use pstack::heap::PHeap;
use pstack::nvram::{FailPlan, PMemBuilder, POffset};
use pstack::recoverable::{QueueVariant, RecoverableQueue};
use pstack::verify::{
    check_fifo, FifoVerdict, QueueAnswer, QueueHistory, QueueOp, QueueOpKind, SlotWitness,
};

const REGION: usize = 1 << 20;

fn fixture(capacity: u64) -> (pstack::nvram::PMem, RecoverableQueue) {
    let pmem = PMemBuilder::new()
        .len(REGION)
        .eager_flush(true)
        .build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(0), REGION as u64).unwrap();
    let q = RecoverableQueue::format(pmem.clone(), &heap, capacity, QueueVariant::Nsrl).unwrap();
    (pmem, q)
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Enqueue(i64),
    Dequeue,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (-1000i64..1000).prop_map(Op::Enqueue),
        2 => Just(Op::Dequeue),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential queue behaviour matches a VecDeque exactly (until
    /// lifetime capacity runs out, which the model tracks too).
    #[test]
    fn matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let capacity = 40u64;
        let (_, q) = fixture(capacity);
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut enqueued = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let seq = i as u64 + 1;
            match op {
                Op::Enqueue(v) => {
                    let accepted = q.enqueue(0, seq, *v).unwrap();
                    let model_accepts = enqueued < capacity;
                    prop_assert_eq!(accepted, model_accepts);
                    if accepted {
                        enqueued += 1;
                        model.push_back(*v);
                    }
                }
                Op::Dequeue => {
                    let got = q.dequeue(0, seq).unwrap();
                    prop_assert_eq!(got, model.pop_front());
                }
            }
        }
        // The slot snapshot agrees with the model's consumed prefix.
        let snap = q.snapshot().unwrap();
        prop_assert_eq!(snap.len() as u64, enqueued);
        let consumed = snap.iter().filter(|s| s.is_tombstone()).count();
        prop_assert_eq!(consumed as u64, enqueued - model.len() as u64);
    }

    /// Crash at a random persistence event inside a random operation;
    /// after recovery the operation is applied exactly once (or
    /// legitimately not at all for unlinearized dequeues of an empty
    /// queue), and the queue still matches a reference model.
    #[test]
    fn random_crash_recovery_is_exactly_once(
        warmup in proptest::collection::vec(op_strategy(), 0..20),
        victim in op_strategy(),
        crash_after in 0u64..12,
    ) {
        let capacity = 64u64;
        let (pmem, q) = fixture(capacity);
        let mut seq = 0u64;
        for op in &warmup {
            seq += 1;
            match op {
                Op::Enqueue(v) => { let _ = q.enqueue(0, seq, *v).unwrap(); }
                Op::Dequeue => { let _ = q.dequeue(0, seq).unwrap(); }
            }
        }
        let before = q.snapshot().unwrap();
        let victim_seq = seq + 1;
        pmem.arm_failpoint(FailPlan::after_events(crash_after));
        let crashed = match victim {
            Op::Enqueue(v) => q.enqueue(1, victim_seq, v).is_err(),
            Op::Dequeue => q.dequeue(1, victim_seq).is_err(),
        };
        if !crashed {
            // The fail-point did not fire inside the op; nothing to
            // recover. Disarm and finish.
            pmem.disarm_failpoint();
            return Ok(());
        }
        let pmem2 = pmem.reopen().unwrap();
        let q2 = RecoverableQueue::open(pmem2, q.base(), QueueVariant::Nsrl).unwrap();
        match victim {
            Op::Enqueue(v) => {
                let ok = q2.recover_enqueue(1, victim_seq, v).unwrap();
                prop_assert!(ok, "capacity 64 cannot be exhausted here");
                let snap = q2.snapshot().unwrap();
                let mine: Vec<_> = snap.iter().filter(|s| s.pid == 1 && s.seq == victim_seq).collect();
                prop_assert_eq!(mine.len(), 1, "exactly one slot for the victim");
                prop_assert_eq!(mine[0].value, v);
                prop_assert_eq!(snap.len(), before.len() + 1);
            }
            Op::Dequeue => {
                let got = q2.recover_dequeue(1, victim_seq).unwrap();
                let full_before = before.iter().filter(|s| s.is_full()).count();
                if full_before == 0 {
                    prop_assert_eq!(got, None);
                } else {
                    // FIFO: the oldest still-full value.
                    let expect = before.iter().find(|s| s.is_full()).unwrap().value;
                    prop_assert_eq!(got, Some(expect));
                    let snap = q2.snapshot().unwrap();
                    let mine = snap
                        .iter()
                        .filter(|s| s.is_tombstone() && s.deq_pid == 1 && s.deq_seq == victim_seq)
                        .count();
                    prop_assert_eq!(mine, 1, "exactly one tombstone for the victim");
                }
            }
        }
    }

    /// Metamorphic check on the verifier: a history generated by an
    /// actual (correct) execution passes; mutating the witness — dup a
    /// slot, change a value, drop a tombstone — makes it fail.
    #[test]
    fn verifier_catches_witness_mutations(
        ops in proptest::collection::vec(op_strategy(), 2..40),
        mutation in 0usize..3,
        pick in 0usize..100,
    ) {
        let capacity = 40u64;
        let (_, q) = fixture(capacity);
        let mut history_ops = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let seq = i as u64 + 1;
            match op {
                Op::Enqueue(v) => {
                    let ok = q.enqueue(0, seq, *v).unwrap();
                    history_ops.push(QueueOp {
                        pid: 0, seq, kind: QueueOpKind::Enqueue, value: *v,
                        answer: QueueAnswer::Accepted(ok),
                    });
                }
                Op::Dequeue => {
                    let got = q.dequeue(0, seq).unwrap();
                    history_ops.push(QueueOp {
                        pid: 0, seq, kind: QueueOpKind::Dequeue, value: 0,
                        answer: QueueAnswer::Dequeued(got),
                    });
                }
            }
        }
        let snapshot: Vec<SlotWitness> = q.snapshot().unwrap().into_iter().map(|s| SlotWitness {
            value: s.value,
            pid: s.pid,
            seq: s.seq,
            dequeued_by: if s.is_tombstone() { Some((s.deq_pid, s.deq_seq)) } else { None },
        }).collect();
        let history = QueueHistory { ops: history_ops, snapshot };
        prop_assert!(check_fifo(&history).is_fifo(), "honest history must pass");

        if history.snapshot.is_empty() {
            return Ok(());
        }
        let mut mutated = history.clone();
        let i = pick % mutated.snapshot.len();
        match mutation {
            0 => {
                // Double application: duplicate a slot (same tag twice).
                let s = mutated.snapshot[i];
                mutated.snapshot.push(SlotWitness { dequeued_by: None, ..s });
            }
            1 => {
                // Value corruption.
                mutated.snapshot[i].value = mutated.snapshot[i].value.wrapping_add(1);
            }
            _ => {
                // Phantom enqueuer tag.
                mutated.snapshot[i].pid = 77;
                mutated.snapshot[i].seq = u64::MAX;
            }
        }
        prop_assert!(
            matches!(check_fifo(&mutated), FifoVerdict::NotFifo { .. }),
            "mutation {mutation} at {i} must be caught"
        );
    }
}
