//! Property tests for the generational log: random KV op traffic with
//! **interleaved `compact()` calls** at random points, checked against
//! the sequential map spec (`KvSpec`) two ways — answer-exact after
//! every operation, and via the generation-aware chain-witness check
//! over the collected history at the end. Runs on both commit modes
//! (eager and buffered/group-commit).
//!
//! # Reproducing failures
//!
//! The proptest shim has no shrinking; every case is deterministic per
//! (test, case index). Knobs:
//!
//! * `PROPTEST_SHIM_SEED=<u64>` — perturbs all case seeds (default 0);
//! * `PROPTEST_CASES=<n>` — cases per property.
//!
//! A failure message names the case index; re-running with the same
//! environment replays the identical case.

use proptest::prelude::*;

use pstack::heap::PHeap;
use pstack::kv::{KvVariant, PKvStore};
use pstack::nvram::{PMemBuilder, POffset};
use pstack::verify::{check_kv_gen, KvAnswer, KvHistory, KvOp, KvOpKind, KvSpec, KvWitnessRecord};

const REGION: usize = 1 << 21;
const KEY_SPACE: u64 = 8;

#[derive(Debug, Clone, Copy)]
enum Step {
    Put {
        key: u64,
        value: i64,
    },
    Get {
        key: u64,
    },
    Delete {
        key: u64,
    },
    Cas {
        key: u64,
        expected: i64,
        new: i64,
    },
    /// Compact when headroom has dropped under `below` free slots —
    /// mixing "maintenance whenever" with "maintenance when needed".
    Compact {
        below: u64,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let key = 0u64..KEY_SPACE;
    let val = -40i64..40;
    prop_oneof![
        5 => (key.clone(), val.clone()).prop_map(|(key, value)| Step::Put { key, value }),
        2 => key.clone().prop_map(|key| Step::Get { key }),
        2 => key.clone().prop_map(|key| Step::Delete { key }),
        2 => (key, val.clone(), val)
            .prop_map(|(key, expected, new)| Step::Cas { key, expected, new }),
        2 => (0u64..16).prop_map(|below| Step::Compact { below }),
    ]
}

/// Drives the steps against a store and the spec in lockstep,
/// asserting answer equality op by op, then checks the collected
/// history against the generation-aware witness verifier.
fn run_case(steps: &[Step], eager: bool, log_cap: u64) -> Result<(), TestCaseError> {
    let mut builder = PMemBuilder::new().len(REGION);
    if eager {
        builder = builder.eager_flush(true);
    }
    let pmem = builder.build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(0), REGION as u64).unwrap();
    let kv = PKvStore::format(pmem.clone(), &heap, 4, log_cap, KvVariant::Nsrl).unwrap();
    let mut spec = KvSpec::new();
    let mut ops: Vec<KvOp> = Vec::new();
    let mut compactions = 0u64;

    for (i, step) in steps.iter().enumerate() {
        let seq = i as u64 + 1;
        match *step {
            Step::Put { key, value } => {
                // Keep headroom: the spec has no capacity, so compact
                // instead of letting the log reject the mutation.
                if kv.log_reserved().unwrap() >= kv.log_capacity().unwrap() {
                    kv.compact(&heap).unwrap();
                    compactions += 1;
                }
                let stored = kv.put(0, seq, key, value).unwrap();
                prop_assert!(stored, "put after compaction cannot be rejected");
                spec.put(key, value);
                ops.push(KvOp {
                    pid: 0,
                    seq,
                    kind: KvOpKind::Put,
                    key,
                    value,
                    expected: 0,
                    answer: KvAnswer::Stored(true),
                });
            }
            Step::Get { key } => {
                let got = kv.get(key).unwrap();
                prop_assert_eq!(got, spec.get(key), "step {}: get mismatch", i);
                ops.push(KvOp {
                    pid: 0,
                    seq,
                    kind: KvOpKind::Get,
                    key,
                    value: 0,
                    expected: 0,
                    answer: KvAnswer::Got(got),
                });
            }
            Step::Delete { key } => {
                if kv.log_reserved().unwrap() >= kv.log_capacity().unwrap() {
                    kv.compact(&heap).unwrap();
                    compactions += 1;
                }
                let deleted = kv.delete(0, seq, key).unwrap();
                prop_assert_eq!(deleted, spec.delete(key), "step {}: delete mismatch", i);
                ops.push(KvOp {
                    pid: 0,
                    seq,
                    kind: KvOpKind::Delete,
                    key,
                    value: 0,
                    expected: 0,
                    answer: KvAnswer::Deleted(deleted),
                });
            }
            Step::Cas { key, expected, new } => {
                if kv.log_reserved().unwrap() >= kv.log_capacity().unwrap() {
                    kv.compact(&heap).unwrap();
                    compactions += 1;
                }
                let swapped = kv.cas(0, seq, key, expected, new).unwrap();
                prop_assert_eq!(
                    swapped,
                    spec.cas(key, expected, new),
                    "step {}: cas mismatch",
                    i
                );
                ops.push(KvOp {
                    pid: 0,
                    seq,
                    kind: KvOpKind::Cas,
                    key,
                    value: new,
                    expected,
                    answer: KvAnswer::Swapped(swapped),
                });
            }
            Step::Compact { below } => {
                let headroom = kv.log_capacity().unwrap() - kv.log_reserved().unwrap();
                if headroom < below {
                    kv.compact(&heap).unwrap();
                    compactions += 1;
                    // Compaction must be invisible to the map.
                    for key in 0..KEY_SPACE {
                        prop_assert_eq!(
                            kv.get(key).unwrap(),
                            spec.get(key),
                            "step {}: compaction changed key {}",
                            i,
                            key
                        );
                    }
                }
            }
        }
    }

    // Final state and the full multi-generation witness.
    let contents = kv.contents().unwrap();
    prop_assert_eq!(contents.len(), spec.contents().len());
    for (k, v) in spec.contents() {
        prop_assert_eq!(contents.get(k), Some(v));
    }
    let generation = kv.generation().unwrap();
    prop_assert_eq!(generation, compactions, "every compact() commits one swap");
    let chains: Vec<Vec<KvWitnessRecord>> = kv
        .snapshot()
        .unwrap()
        .into_iter()
        .map(|chain| chain.into_iter().map(KvWitnessRecord::from).collect())
        .collect();
    let verdict = check_kv_gen(&KvHistory { ops, chains }, generation);
    prop_assert!(verdict.is_linearizable(), "{:?}", verdict);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eager store: random traffic with interleaved compactions stays
    /// answer-exact against the spec and witness-verifiable, far past
    /// the 12-slot log's nominal capacity.
    #[test]
    fn eager_traffic_with_interleaved_compactions_matches_spec(
        steps in proptest::collection::vec(step_strategy(), 1..120)
    ) {
        run_case(&steps, true, 12)?;
    }

    /// Batched (buffered-region) store: same property over the
    /// group-commit path.
    #[test]
    fn batched_traffic_with_interleaved_compactions_matches_spec(
        steps in proptest::collection::vec(step_strategy(), 1..120)
    ) {
        run_case(&steps, false, 12)?;
    }
}
