//! The strongest end-to-end guarantee in the suite: enumerate EVERY
//! crash point across a complete runtime task — queue pop, return-slot
//! clear, frame push, recoverable CAS, answer persist, return-slot
//! write, frame pop — and prove that recovery always converges to the
//! correct final state with exactly-once semantics.

use pstack::chaos::{enumerate_crash_points, CrashScenario};
use pstack::core::{
    FunctionRegistry, PError, RecoveryMode, Runtime, RuntimeConfig, StackKind, Task,
};
use pstack::nvram::{PMem, PMemBuilder, POffset};
use pstack::recoverable::{
    CasTaskFunction, CasVariant, RecoverableCas, TaskTable, CAS_TASK_FUNC_ID,
};

const INIT: i64 = 100;
const NEW: i64 = 200;

struct FullTaskScenario {
    kind: StackKind,
}

struct System {
    pmem: PMem,
    runtime: Runtime,
}

fn build_registry(pmem: &PMem) -> Result<(FunctionRegistry, RecoverableCas, TaskTable), PError> {
    let cas_base = POffset::new(pmem.read_u64(POffset::new(64))?);
    let table_base = POffset::new(pmem.read_u64(POffset::new(72))?);
    let cas = RecoverableCas::open(pmem.clone(), cas_base, 1, CasVariant::Nsrl)?;
    let table = TaskTable::open(pmem.clone(), table_base)?;
    let mut registry = FunctionRegistry::new();
    registry.register(
        CAS_TASK_FUNC_ID,
        CasTaskFunction::new(cas.clone(), table.clone()).into_arc(),
    )?;
    Ok((registry, cas, table))
}

impl CrashScenario for FullTaskScenario {
    type System = System;

    fn setup(&self) -> Result<(PMem, System), PError> {
        let pmem = PMemBuilder::new()
            .len(1 << 20)
            .eager_flush(true)
            .build_in_memory();
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(
            pmem.clone(),
            RuntimeConfig::new(1)
                .stack_kind(self.kind)
                .stack_capacity(4096),
            &stub,
        )?;
        let cas = RecoverableCas::format(pmem.clone(), rt.heap(), 1, INIT, CasVariant::Nsrl)?;
        let table = TaskTable::format(pmem.clone(), rt.heap(), &[(INIT, NEW)])?;
        pmem.write_u64(POffset::new(64), cas.base().get())?;
        pmem.write_u64(POffset::new(72), table.base().get())?;
        pmem.flush(POffset::new(64), 16)?;
        let (registry, _, _) = build_registry(&pmem)?;
        let runtime = Runtime::open(pmem.clone(), &registry)?;
        Ok((pmem.clone(), System { pmem, runtime }))
    }

    fn run(&self, sys: &mut System) -> Result<(), PError> {
        let report = sys.runtime.run_tasks(vec![Task::new(
            CAS_TASK_FUNC_ID,
            0u64.to_le_bytes().to_vec(),
        )]);
        if report.crashed || sys.pmem.is_crashed() {
            Err(PError::Mem(pstack::nvram::MemError::Crashed))
        } else {
            Ok(())
        }
    }

    fn verify(&self, pmem: PMem, crash_event: u64) -> Result<(), PError> {
        let fail = |msg: String| -> Result<(), PError> {
            Err(PError::CorruptStack(format!("event {crash_event}: {msg}")))
        };
        let (registry, cas, table) = build_registry(&pmem)?;
        let rt = Runtime::open(pmem.clone(), &registry)?;
        rt.recover(RecoveryMode::Parallel)?;

        // The stack is balanced after recovery.
        let stack = rt.open_stack(0)?;
        if stack.depth() != 0 {
            return fail(format!("stack depth {} after recovery", stack.depth()));
        }
        stack.check_consistency()?;

        // The single descriptor either never started (crash before the
        // frame linearized) or completed exactly once with the right
        // answer — and the register agrees with the recorded answer.
        let register = cas.read()?;
        match table.result(0)? {
            Some(true) => {
                if register != NEW {
                    return fail(format!("answer true but register {register}"));
                }
            }
            Some(false) => {
                // With one process the CAS(INIT→NEW) cannot legitimately
                // fail: nothing else writes the register.
                return fail("answer false for an uncontended CAS".into());
            }
            None => {
                if register != INIT {
                    return fail(format!(
                        "descriptor pending but register moved to {register}"
                    ));
                }
                // Resubmitting the task must complete it.
                let report = rt.run_tasks(vec![Task::new(
                    CAS_TASK_FUNC_ID,
                    0u64.to_le_bytes().to_vec(),
                )]);
                if report.completed != 1 {
                    return fail("resubmission did not complete".into());
                }
                if cas.read()? != NEW || table.result(0)? != Some(true) {
                    return fail("resubmitted task has wrong outcome".into());
                }
            }
        }
        Ok(())
    }
}

#[test]
fn every_crash_point_of_a_full_task_recovers_exactly_once() {
    for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
        let report = enumerate_crash_points(&FullTaskScenario { kind }, &[0.0])
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert!(
            report.total_events >= 8,
            "{kind}: a full task should persist through many events, saw {}",
            report.total_events
        );
    }
}
