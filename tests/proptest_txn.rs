//! Property tests for the Appendix-A transactional loop: random sizes,
//! random initial arrays, random crash points — always all-or-nothing,
//! across stack layouts and consecutive transactions.

use std::sync::Arc;

use proptest::prelude::*;

use pstack::core::{
    FunctionRegistry, PError, RecoveryMode, Runtime, RuntimeConfig, StackKind, TxnLoop, U64CellStep,
};
use pstack::nvram::{FailPlan, PMem, PMemBuilder, POffset};

const TXN_FN: u64 = 0x7878;

fn update(v: u64) -> u64 {
    v.wrapping_mul(3).wrapping_add(7)
}

fn setup(kind: StackKind, init: &[u64]) -> Result<(PMem, Runtime, U64CellStep, TxnLoop), PError> {
    let pmem = PMemBuilder::new().len(1 << 21).build_in_memory();
    let stub = FunctionRegistry::new();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(1).stack_kind(kind).stack_capacity(512),
        &stub,
    )?;
    let step = U64CellStep::format(&rt, init.len() as u64, Arc::new(update))?;
    for (i, v) in init.iter().enumerate() {
        step.write_item(i as u64, *v)?;
    }
    let mut registry = FunctionRegistry::new();
    let txn = TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone()))?;
    let rt = Runtime::open(pmem.clone(), &registry)?;
    Ok((pmem, rt, step, txn))
}

fn recovery_boot(pmem: &PMem, base: POffset) -> (Runtime, U64CellStep) {
    let pmem2 = pmem.reopen().unwrap();
    let stub = FunctionRegistry::new();
    let probe = Runtime::open(pmem2.clone(), &stub).unwrap();
    let step = U64CellStep::open(&probe, base, Arc::new(update)).unwrap();
    let mut registry = FunctionRegistry::new();
    TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone())).unwrap();
    let rt = Runtime::open(pmem2, &registry).unwrap();
    (rt, step)
}

fn kind_strategy() -> impl Strategy<Value = StackKind> {
    prop_oneof![
        Just(StackKind::Fixed),
        Just(StackKind::Vec),
        Just(StackKind::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A crash at an arbitrary event leaves the array either fully
    /// updated or fully restored — never torn — on every stack layout.
    #[test]
    fn all_or_nothing_under_random_crashes(
        kind in kind_strategy(),
        init in proptest::collection::vec(0u64..1_000_000, 1..24),
        crash_after in 1u64..400,
    ) {
        let count = init.len() as u64;
        // A 512-byte fixed stack caps the depth; keep Fixed runs small.
        prop_assume!(kind != StackKind::Fixed || count <= 8);
        let (pmem, rt, step, txn) = setup(kind, &init).unwrap();
        let after: Vec<u64> = init.iter().map(|v| update(*v)).collect();
        step.begin().unwrap();
        pmem.arm_failpoint(FailPlan::after_events(crash_after));
        let report = rt.run_tasks(vec![txn.task(count)]);
        if !report.crashed {
            prop_assert_eq!(step.read_all().unwrap(), after.clone());
            return Ok(());
        }
        let (rt2, step2) = recovery_boot(&pmem, step.base());
        rt2.recover(RecoveryMode::Parallel).unwrap();
        let got = step2.read_all().unwrap();
        prop_assert!(
            got == init || got == after,
            "torn transaction: {:?} (init {:?})", got, init
        );
        // Committed iff the updated state stands.
        prop_assert_eq!(step2.is_committed().unwrap(), got == after);
        // Stacks are balanced; a second recovery is a no-op.
        prop_assert_eq!(rt2.recover(RecoveryMode::Serial).unwrap().total_frames(), 0);
    }

    /// Consecutive transactions (each with a fresh epoch) never replay
    /// one another's undo state, whatever mix of commits and rollbacks
    /// happens.
    #[test]
    fn epochs_isolate_consecutive_transactions(
        init in proptest::collection::vec(0u64..1000, 1..10),
        crashes in proptest::collection::vec(proptest::option::of(1u64..200), 1..4),
    ) {
        let count = init.len() as u64;
        let (mut pmem, mut rt, mut step, txn) = setup(StackKind::List, &init).unwrap();
        // The logical value of the array evolves only by full commits.
        let mut logical = init.clone();
        for crash in &crashes {
            step.begin().unwrap();
            if let Some(events) = crash {
                pmem.arm_failpoint(FailPlan::after_events(*events));
            }
            let report = rt.run_tasks(vec![txn.task(count)]);
            if report.crashed {
                let (rt2, step2) = recovery_boot(&pmem, step.base());
                rt2.recover(RecoveryMode::Parallel).unwrap();
                let got = step2.read_all().unwrap();
                let committed: Vec<u64> = logical.iter().map(|v| update(*v)).collect();
                prop_assert!(
                    got == logical || got == committed,
                    "torn across transactions: {:?}", got
                );
                if got == committed {
                    logical = committed;
                }
                // Rebind handles to the reopened region.
                pmem = rt2.pmem().clone();
                rt = rt2;
                step = step2;
            } else {
                pmem.disarm_failpoint();
                logical = logical.iter().map(|v| update(*v)).collect();
                prop_assert_eq!(step.read_all().unwrap(), logical.clone());
            }
        }
    }
}
