//! Workspace-wiring smoke test: exercises the `pstack` facade's
//! re-exports end-to-end, so a broken manifest, a missing re-export or
//! cross-crate API drift fails here before anything subtler does.
//!
//! Every layer is reached exclusively through `pstack::*` paths — the
//! way downstream users see the workspace — never through the
//! underlying `pstack_*` crates directly.

use pstack::core::{FunctionRegistry, RecoveryMode, Runtime, RuntimeConfig, Task};
use pstack::nvram::{PMemBuilder, POffset};

const STORE: u64 = 1;

fn registry() -> FunctionRegistry {
    let mut registry = FunctionRegistry::new();
    let store = |ctx: &mut pstack::core::PContext<'_>, args: &[u8]| {
        let val = u64::from_le_bytes(args[..8].try_into().expect("8-byte argument"));
        let slot = ctx.user_root() + val * 8;
        ctx.pmem.write_u64(slot, val * val)?;
        ctx.pmem.flush(slot, 8)?;
        Ok(None)
    };
    registry
        .register_pair(STORE, store, store)
        .expect("function registers");
    registry
}

/// The quickstart path: build a region, format a runtime, run tasks,
/// read the persisted effects back, and confirm a clean recovery pass.
#[test]
fn facade_quickstart_round_trip() {
    let registry = registry();
    let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
    let runtime =
        Runtime::format(pmem.clone(), RuntimeConfig::new(2), &registry).expect("format succeeds");

    let tasks: Vec<Task> = (0..16u64)
        .map(|i| Task::new(STORE, i.to_le_bytes().to_vec()))
        .collect();
    let report = runtime.run_tasks(tasks);
    assert_eq!(report.completed, 16, "all tasks complete without crashes");
    assert!(!report.crashed);

    // Effects persisted through the facade's nvram paths.
    let user_root = runtime.user_root().expect("user root resolves");
    for i in 0..16u64 {
        assert_eq!(
            pmem.read_u64(user_root + i * 8).expect("read back"),
            i * i,
            "slot {i} holds i²"
        );
    }

    // Emulate a power cut after quiescence: every flushed line
    // survives (probability 1), and recovery finds no in-flight frames.
    pmem.crash_now(0, 1.0);
    let reopened = pmem.reopen().expect("image reopens");
    let runtime = Runtime::open(reopened, &registry).expect("open succeeds");
    let recovery = runtime
        .recover(RecoveryMode::Parallel)
        .expect("recovery runs");
    assert_eq!(recovery.total_frames(), 0);
}

/// The heap layer through the facade: format, allocate, free.
#[test]
fn facade_heap_allocates() {
    let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
    let heap = pstack::heap::PHeap::format(pmem, POffset::new(4096), (1 << 20) - 4096)
        .expect("heap formats");
    let block = heap.alloc(256).expect("alloc succeeds");
    heap.free(block).expect("free succeeds");
}

/// The verify layer through the facade: a trivial serializable history.
#[test]
fn facade_verifier_accepts_serial_history() {
    use pstack::verify::{check_serializability, CasHistory, CasOp};

    let history = CasHistory::new(
        0,
        2,
        vec![
            CasOp {
                pid: 0,
                old: 0,
                new: 1,
                success: true,
            },
            CasOp {
                pid: 0,
                old: 1,
                new: 2,
                success: true,
            },
        ],
    );
    assert!(check_serializability(&history).is_serializable());
}

/// The chaos + recoverable layers through the facade: a small seeded
/// in-process crash campaign must terminate and verify serializable.
#[test]
fn facade_campaign_is_serializable() {
    let cfg = pstack::chaos::CampaignConfig::wide(24, 7);
    let report = pstack::chaos::run_campaign(&cfg).expect("campaign completes");
    assert!(report.rounds >= 1);
    assert!(
        report.is_serializable(),
        "correct NSRL CAS must stay serializable under crashes"
    );
}

/// The kv + chaos + verify layers through the facade: store operations
/// round-trip, and a small seeded KV crash campaign verifies
/// linearizable against the sequential spec.
#[test]
fn facade_kv_store_and_campaign() {
    use pstack::kv::{KvVariant, PKvStore};

    let pmem = PMemBuilder::new()
        .len(1 << 16)
        .eager_flush(true)
        .build_in_memory();
    let heap =
        pstack::heap::PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).expect("heap formats");
    let kv = PKvStore::format(pmem, &heap, 8, 32, KvVariant::Nsrl).expect("store formats");
    assert!(kv.put(0, 1, 9, 90).expect("put"));
    assert_eq!(kv.get(9).expect("get"), Some(90));
    assert!(kv.delete(0, 2, 9).expect("delete"));

    let cfg = pstack::chaos::KvCampaignConfig::new(24, 7);
    let report = pstack::chaos::run_kv_campaign(&cfg).expect("campaign completes");
    assert!(report.rounds >= 1);
    assert!(
        report.is_linearizable(),
        "correct KV store must stay linearizable under crashes"
    );
    assert!(report.log_had_headroom());
}

/// The sharded scaling layer through the facade: a striped store with
/// a group-committed cross-shard batch, and a small sharded crash
/// campaign with kills inside batch windows.
#[test]
fn facade_sharded_kv_store_and_campaign() {
    use pstack::kv::{KvVariant, ShardedKvStore};

    let stripe = PMemBuilder::new().len(1 << 17).build_striped(2);
    let kv =
        ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl).expect("store formats");
    let mut batch = kv.batch();
    for key in 0..16u64 {
        batch.put(0, key + 1, key, key as i64);
    }
    assert!(batch
        .commit()
        .expect("commit")
        .iter()
        .all(|o| o.took_effect()));
    assert_eq!(kv.contents().expect("contents").len(), 16);

    let cfg = pstack::chaos::ShardedKvCampaignConfig::new(32, 7);
    let report = pstack::chaos::run_sharded_kv_campaign(&cfg).expect("campaign completes");
    assert!(
        report.is_linearizable(),
        "sharded store must stay linearizable under batch-window kills"
    );
    assert_eq!(report.log_usage.len(), 4);
}
