//! Property tests for the NVRAM substrate itself: the volatile-cache /
//! persistent-image split against a shadow model, across random
//! write/flush/crash interleavings.

use std::collections::HashSet;

use proptest::prelude::*;

use pstack::nvram::{PMemBuilder, POffset};

const LEN: usize = 4096;
const LINE: usize = 64;

#[derive(Debug, Clone)]
enum Op {
    Write { off: usize, len: usize, byte: u8 },
    Flush { off: usize, len: usize },
    Fence,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..LEN, 1usize..200, any::<u8>()).prop_map(|(off, len, byte)| Op::Write {
            off: off.min(LEN - 1),
            len,
            byte,
        }),
        3 => (0usize..LEN, 1usize..400).prop_map(|(off, len)| Op::Flush {
            off: off.min(LEN - 1),
            len,
        }),
        1 => Just(Op::Fence),
    ]
}

/// Shadow model: a "cached" byte array (what reads must see) and a
/// "durable" array plus the set of dirty lines.
struct Model {
    cached: Vec<u8>,
    durable: Vec<u8>,
    dirty: HashSet<usize>,
}

impl Model {
    fn new() -> Self {
        Model {
            cached: vec![0; LEN],
            durable: vec![0; LEN],
            dirty: HashSet::new(),
        }
    }

    fn write(&mut self, off: usize, data_len: usize, byte: u8) {
        for i in off..(off + data_len).min(LEN) {
            self.cached[i] = byte;
            self.dirty.insert(i / LINE);
        }
    }

    fn flush(&mut self, off: usize, len: usize) {
        let end = (off + len).min(LEN);
        if off >= end {
            return;
        }
        for li in off / LINE..=(end - 1) / LINE {
            if self.dirty.remove(&li) {
                let s = li * LINE;
                self.durable[s..s + LINE].copy_from_slice(&self.cached[s..s + LINE]);
            }
        }
    }

    /// Crash with survival probability 0 or 1: deterministic outcomes.
    fn crash(&mut self, keep_dirty: bool) {
        if keep_dirty {
            for li in self.dirty.drain() {
                let s = li * LINE;
                self.durable[s..s + LINE].copy_from_slice(&self.cached[s..s + LINE]);
            }
        } else {
            self.dirty.clear();
        }
        self.cached = self.durable.clone();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reads always see the latest writes; after a crash the surviving
    /// content equals the shadow model's durable image (checked for
    /// both extreme survivor probabilities).
    #[test]
    fn pmem_matches_shadow_model(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        keep_dirty in proptest::bool::ANY,
    ) {
        let pmem = PMemBuilder::new().len(LEN).line_size(LINE).build_in_memory();
        let mut model = Model::new();

        for op in &ops {
            match *op {
                Op::Write { off, len, byte } => {
                    let len = len.min(LEN - off);
                    if len == 0 { continue; }
                    pmem.write(POffset::new(off as u64), &vec![byte; len]).unwrap();
                    model.write(off, len, byte);
                }
                Op::Flush { off, len } => {
                    let len = len.min(LEN - off);
                    if len == 0 { continue; }
                    pmem.flush(POffset::new(off as u64), len).unwrap();
                    model.flush(off, len);
                }
                Op::Fence => pmem.fence(),
            }
            // Live reads must see the cached view.
            let got = pmem.read_vec(POffset::new(0), LEN).unwrap();
            prop_assert_eq!(&got, &model.cached);
        }

        let prob = if keep_dirty { 1.0 } else { 0.0 };
        pmem.crash_now(99, prob);
        model.crash(keep_dirty);
        let pmem = pmem.reopen().unwrap();
        let got = pmem.read_vec(POffset::new(0), LEN).unwrap();
        prop_assert_eq!(&got, &model.durable);
    }

    /// Eager-flush regions behave like the model with an implicit flush
    /// after every write: nothing is ever lost in a crash.
    #[test]
    fn eager_mode_never_loses_writes(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let pmem = PMemBuilder::new()
            .len(LEN)
            .line_size(LINE)
            .eager_flush(true)
            .build_in_memory();
        let mut shadow = vec![0u8; LEN];
        for op in &ops {
            if let Op::Write { off, len, byte } = *op {
                let len = len.min(LEN - off);
                if len == 0 { continue; }
                pmem.write(POffset::new(off as u64), &vec![byte; len]).unwrap();
                shadow[off..off + len].fill(byte);
            }
        }
        pmem.crash_now(1, 0.0); // survivors irrelevant: nothing is dirty
        let pmem = pmem.reopen().unwrap();
        prop_assert_eq!(pmem.read_vec(POffset::new(0), LEN).unwrap(), shadow);
    }

    /// The event counter advances exactly once per write and once per
    /// line persisted in buffered mode — the contract crash-point
    /// enumeration depends on.
    #[test]
    fn event_accounting_is_exact(
        writes in proptest::collection::vec((0usize..LEN, 1usize..100, any::<u8>()), 1..20),
    ) {
        let pmem = PMemBuilder::new().len(LEN).line_size(LINE).build_in_memory();
        let mut expected = 0u64;
        for (off, len, byte) in writes {
            let off = off.min(LEN - 1);
            let len = len.min(LEN - off);
            if len == 0 { continue; }
            pmem.write(POffset::new(off as u64), &vec![byte; len]).unwrap();
            expected += 1; // one event per write
            let before_lines = pmem.stats().snapshot().lines_persisted;
            pmem.flush(POffset::new(off as u64), len).unwrap();
            let persisted = pmem.stats().snapshot().lines_persisted - before_lines;
            // Every line of the flush counts as an event whether or not
            // it was dirty... no: only the countdown sees all lines; the
            // event counter ticks per *covering line*, dirty or not.
            let first = off / LINE;
            let last = (off + len - 1) / LINE;
            expected += (last - first + 1) as u64;
            prop_assert!(persisted <= (last - first + 1) as u64);
        }
        prop_assert_eq!(pmem.events(), expected);
    }
}
