//! Property tests: persistent stacks against a volatile reference
//! model, under random operation sequences and random crash points.

use proptest::prelude::*;

use pstack::core::{FixedStack, ListStack, PError, PersistentStack, StackKind, VecStack};
use pstack::heap::PHeap;
use pstack::nvram::{FailPlan, PMem, PMemBuilder, POffset};

const HEAP_BASE: u64 = 64 * 1024;

#[derive(Debug, Clone)]
enum Op {
    Push { func_id: u64, arg_len: usize },
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..1000, 0usize..120).prop_map(|(func_id, arg_len)| Op::Push { func_id, arg_len }),
        2 => Just(Op::Pop),
    ]
}

fn kind_strategy() -> impl Strategy<Value = StackKind> {
    prop_oneof![
        Just(StackKind::Fixed),
        Just(StackKind::Vec),
        Just(StackKind::List),
    ]
}

fn build(kind: StackKind, pmem: &PMem, heap: &PHeap) -> Box<dyn PersistentStack> {
    match kind {
        StackKind::Fixed => {
            Box::new(FixedStack::format(pmem.clone(), POffset::new(0), 48 * 1024).unwrap())
        }
        StackKind::Vec => {
            Box::new(VecStack::format(pmem.clone(), heap.clone(), POffset::new(0), 128).unwrap())
        }
        StackKind::List => {
            Box::new(ListStack::format(pmem.clone(), heap.clone(), POffset::new(0), 160).unwrap())
        }
    }
}

fn reopen(kind: StackKind, pmem: &PMem, heap: &PHeap) -> Result<Box<dyn PersistentStack>, PError> {
    Ok(match kind {
        StackKind::Fixed => Box::new(FixedStack::open(pmem.clone(), POffset::new(0), 48 * 1024)?),
        StackKind::Vec => Box::new(VecStack::open(pmem.clone(), heap.clone(), POffset::new(0))?),
        StackKind::List => Box::new(ListStack::open(
            pmem.clone(),
            heap.clone(),
            POffset::new(0),
        )?),
    })
}

fn fresh() -> (PMem, PHeap) {
    let pmem = PMemBuilder::new().len(1 << 19).build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(HEAP_BASE), (1 << 19) - HEAP_BASE)
        .expect("heap formats");
    (pmem, heap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any operation sequence leaves the stack agreeing with a simple
    /// Vec model, both live and after a clean crash/reopen.
    #[test]
    fn stacks_agree_with_reference_model(
        kind in kind_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..80),
    ) {
        let (pmem, heap) = fresh();
        let mut stack = build(kind, &pmem, &heap);
        let mut model: Vec<(u64, Vec<u8>)> = Vec::new();

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Push { func_id, arg_len } => {
                    let args = vec![(step % 256) as u8; *arg_len];
                    match stack.push(*func_id, &args) {
                        Ok(()) => model.push((*func_id, args)),
                        Err(PError::StackOverflow { .. }) => {
                            // Legal for the fixed variant; stack unchanged.
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("push: {e}"))),
                    }
                }
                Op::Pop => {
                    if model.is_empty() {
                        prop_assert!(matches!(stack.pop(), Err(PError::StackEmpty)));
                    } else {
                        stack.pop().unwrap();
                        model.pop();
                    }
                }
            }
            prop_assert_eq!(stack.depth(), model.len());
        }
        stack.check_consistency().unwrap();
        for (i, (id, args)) in model.iter().enumerate() {
            let rec = stack.frame_record(i + 1).unwrap();
            prop_assert_eq!(rec.func_id, *id);
            prop_assert_eq!(&rec.args, args);
        }

        // Everything was flushed, so a survivor-less crash preserves all.
        drop(stack);
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(HEAP_BASE)).unwrap();
        let stack2 = reopen(kind, &pmem2, &heap2).unwrap();
        prop_assert_eq!(stack2.depth(), model.len());
        for (i, (id, args)) in model.iter().enumerate() {
            let rec = stack2.frame_record(i + 1).unwrap();
            prop_assert_eq!(rec.func_id, *id);
            prop_assert_eq!(&rec.args, args);
        }
        stack2.check_consistency().unwrap();
    }

    /// A crash injected at a random persistence event during a random
    /// operation sequence always leaves a recoverable stack whose
    /// content is a *prefix-consistent* state: the surviving depth
    /// matches the model at some step boundary (each push/pop is
    /// atomic), and every surviving frame is untorn.
    #[test]
    fn random_crash_points_leave_recoverable_prefix(
        kind in kind_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..50),
        crash_after in 1u64..300,
        survivors in 0u8..=2,
    ) {
        let (pmem, heap) = fresh();
        let mut stack = build(kind, &pmem, &heap);

        // Model of the last *committed* state, plus the operation that
        // was in flight when the crash hit (if any): recovery must see
        // either the committed state or that state with the in-flight
        // operation applied — each push/pop is atomic, nothing else.
        let mut committed: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut inflight: Option<Option<(u64, Vec<u8>)>> = None; // Some(Some)=push, Some(None)=pop

        let prob = f64::from(survivors) / 2.0;
        pmem.arm_failpoint(FailPlan::after_events(crash_after).with_survivors(crash_after, prob));

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Push { func_id, arg_len } => {
                    let args = vec![(step % 256) as u8; *arg_len];
                    match stack.push(*func_id, &args) {
                        Ok(()) => committed.push((*func_id, args)),
                        Err(PError::StackOverflow { .. }) => {}
                        Err(e) => {
                            prop_assert!(e.is_crash(), "unexpected error: {e}");
                            inflight = Some(Some((*func_id, args)));
                            break;
                        }
                    }
                }
                Op::Pop => {
                    if stack.depth() == 0 {
                        continue;
                    }
                    match stack.pop() {
                        Ok(()) => {
                            committed.pop();
                        }
                        Err(e) => {
                            prop_assert!(e.is_crash(), "unexpected error: {e}");
                            inflight = Some(None);
                            break;
                        }
                    }
                }
            }
        }
        if !pmem.is_crashed() {
            pmem.crash_now(crash_after, prob);
        }

        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(HEAP_BASE)).unwrap();
        let stack2 = reopen(kind, &pmem2, &heap2).unwrap();
        stack2.check_consistency().unwrap();

        let mut valid_states = vec![committed.clone()];
        match inflight {
            Some(Some(pushed)) => {
                let mut with_push = committed.clone();
                with_push.push(pushed);
                valid_states.push(with_push);
            }
            Some(None) => {
                let mut with_pop = committed.clone();
                with_pop.pop();
                valid_states.push(with_pop);
            }
            None => {}
        }

        let depth = stack2.depth();
        let recovered: Vec<(u64, Vec<u8>)> = (1..=depth)
            .map(|i| {
                let r = stack2.frame_record(i).unwrap();
                (r.func_id, r.args)
            })
            .collect();
        prop_assert!(
            valid_states.contains(&recovered),
            "recovered state (depth {depth}) is neither the committed state \
             (depth {}) nor the in-flight transition applied",
            committed.len()
        );
    }
}
