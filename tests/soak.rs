//! Long-running soak tests — excluded from the default test run.
//!
//! ```sh
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! Each test grinds a §5.2-style campaign far past the sizes of the CI
//! suites: hundreds of operations, dozens of crashes (including crashes
//! during recovery), across every stack layout and both workloads, and
//! a deep transactional loop over the unbounded stacks. Run these when
//! touching any of the persistence protocols.

use std::sync::Arc;

use pstack::chaos::{run_campaign, run_queue_campaign, CampaignConfig, QueueCampaignConfig};
use pstack::core::{
    FunctionRegistry, RecoveryMode, Runtime, RuntimeConfig, StackKind, TxnLoop, U64CellStep,
};
use pstack::nvram::{FailPlan, PMemBuilder};
use pstack::recoverable::QueueVariant;

#[test]
#[ignore = "soak: long-running; use cargo test --release --test soak -- --ignored"]
fn cas_campaigns_soak() {
    for seed in 0..96u64 {
        for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            let cfg = CampaignConfig {
                max_crashes: 24,
                recovery_crash_prob: 0.5,
                ..CampaignConfig::narrow(500, seed)
            }
            .stack(kind);
            let report = run_campaign(&cfg).expect("campaign completes");
            assert!(
                report.is_serializable(),
                "seed {seed}, stack {kind}: {:?}",
                report.verdict
            );
            assert_eq!(report.history.ops.len(), 500);
        }
    }
}

#[test]
#[ignore = "soak: long-running; use cargo test --release --test soak -- --ignored"]
fn queue_campaigns_soak() {
    for seed in 0..96u64 {
        for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            let cfg = QueueCampaignConfig {
                max_crashes: 24,
                recovery_crash_prob: 0.5,
                ..QueueCampaignConfig::new(500, seed)
            }
            .stack(kind)
            .variant(QueueVariant::Nsrl);
            let report = run_queue_campaign(&cfg).expect("campaign completes");
            assert!(
                report.is_fifo(),
                "seed {seed}, stack {kind}: {:?}",
                report.verdict
            );
        }
    }
}

#[test]
#[ignore = "soak: long-running; use cargo test --release --test soak -- --ignored"]
fn deep_transactions_soak() {
    const TXN_FN: u64 = 0x50AC;
    for kind in [StackKind::Vec, StackKind::List] {
        for crash_events in [500u64, 5_000, 50_000, 200_000] {
            let count = 8_000u64;
            let pmem = PMemBuilder::new().len(1 << 24).build_in_memory();
            let stub = FunctionRegistry::new();
            let rt = Runtime::format(
                pmem.clone(),
                RuntimeConfig::new(1).stack_kind(kind).stack_capacity(1024),
                &stub,
            )
            .unwrap();
            let step = U64CellStep::format(&rt, count, Arc::new(|v| v + 3)).unwrap();
            let before = step.read_all().unwrap();
            let after: Vec<u64> = before.iter().map(|v| v + 3).collect();
            let mut registry = FunctionRegistry::new();
            let txn = TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone())).unwrap();
            // 8000 persistent frames mirror 8000 host frames: give the
            // workers a big volatile stack (see Runtime::host_stack_size).
            let rt = Runtime::open(pmem.clone(), &registry)
                .unwrap()
                .host_stack_size(256 << 20);
            step.begin().unwrap();
            pmem.arm_failpoint(FailPlan::after_events(crash_events));
            let report = rt.run_tasks(vec![txn.task(count)]);
            if !report.crashed {
                assert_eq!(step.read_all().unwrap(), after);
                continue;
            }
            let pmem2 = pmem.reopen().unwrap();
            let stub = FunctionRegistry::new();
            let probe = Runtime::open(pmem2.clone(), &stub).unwrap();
            let step2 = U64CellStep::open(&probe, step.base(), Arc::new(|v| v + 3)).unwrap();
            let mut registry = FunctionRegistry::new();
            TxnLoop::register(&mut registry, TXN_FN, Arc::new(step2.clone())).unwrap();
            let rt2 = Runtime::open(pmem2, &registry).unwrap();
            rt2.recover(RecoveryMode::Parallel).unwrap();
            let got = step2.read_all().unwrap();
            assert!(
                got == before || got == after,
                "{kind}, crash at {crash_events}: torn 8000-item transaction"
            );
        }
    }
}
