//! Cross-crate integration: the full §4.3 runtime executing recoverable
//! workloads across stack variants, with crashes, recovery modes and
//! re-submission loops.

use pstack::core::{
    FunctionRegistry, PContext, RecoveryMode, Runtime, RuntimeConfig, StackKind, Task,
};
use pstack::nvram::{FailPlan, PMemBuilder};

const MARK_SLOT: u64 = 1;
const FANOUT: u64 = 2;

/// MARK_SLOT(slot, value): persist `value` into user slot `slot`,
/// idempotently.
fn mark_slot_registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    let body = |c: &mut PContext<'_>, args: &[u8]| {
        let slot = u64::from_le_bytes(args[..8].try_into().unwrap());
        let val = u64::from_le_bytes(args[8..16].try_into().unwrap());
        let off = c.user_root() + slot * 8;
        c.pmem.write_u64(off, val)?;
        c.pmem.flush(off, 8)?;
        Ok(None)
    };
    reg.register_pair(MARK_SLOT, body, body).unwrap();

    // FANOUT(slot, value): calls MARK_SLOT three times (slot, slot+1,
    // slot+2) as nested persistent calls; recovery must resume without
    // redoing completed children (checked via child_status).
    let fan = |c: &mut PContext<'_>, args: &[u8]| {
        let slot = u64::from_le_bytes(args[..8].try_into().unwrap());
        let val = u64::from_le_bytes(args[8..16].try_into().unwrap());
        for k in 0..3u64 {
            let mut a = (slot + k).to_le_bytes().to_vec();
            a.extend_from_slice(&val.to_le_bytes());
            c.call(MARK_SLOT, &a)?;
        }
        Ok(None)
    };
    reg.register_pair(FANOUT, fan, fan).unwrap();
    reg
}

fn mark_task(slot: u64, val: u64) -> Task {
    let mut args = slot.to_le_bytes().to_vec();
    args.extend_from_slice(&val.to_le_bytes());
    Task::new(MARK_SLOT, args)
}

#[test]
fn all_stack_kinds_run_identical_workloads() {
    for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = mark_slot_registry();
        let rt = Runtime::format(
            pmem.clone(),
            RuntimeConfig::new(3).stack_kind(kind).stack_capacity(2048),
            &reg,
        )
        .unwrap();
        let report = rt.run_tasks((0..60).map(|i| mark_task(i, i * 7)));
        assert_eq!(report.completed, 60, "{kind}");
        let root = rt.user_root().unwrap();
        for i in 0..60u64 {
            assert_eq!(pmem.read_u64(root + i * 8).unwrap(), i * 7, "{kind}");
        }
    }
}

#[test]
fn crash_restart_resubmit_until_done() {
    // The full §5.2-style driving loop with a generic workload: crash,
    // recover, resubmit, repeat; at the end every slot is written and
    // no slot is torn.
    for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
        let mut pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = mark_slot_registry();
        let _ = Runtime::format(
            pmem.clone(),
            RuntimeConfig::new(4).stack_kind(kind).stack_capacity(4096),
            &reg,
        )
        .unwrap();

        let mut crashes = 0;
        loop {
            let rt = Runtime::open(pmem.clone(), &reg).unwrap();
            if crashes < 5 {
                pmem.arm_failpoint(FailPlan::after_events(60 + crashes * 30));
            }
            let report = rt.run_tasks((0..80).map(|i| mark_task(i, 1000 + i)));
            if !report.crashed {
                break;
            }
            crashes += 1;
            pmem = pmem.reopen().unwrap();
            let rt = Runtime::open(pmem.clone(), &reg).unwrap();
            rt.recover(RecoveryMode::Parallel).unwrap();
        }
        assert!(crashes > 0, "{kind}: the fail-points should fire");
        let rt = Runtime::open(pmem.clone(), &reg).unwrap();
        let root = rt.user_root().unwrap();
        for i in 0..80u64 {
            assert_eq!(pmem.read_u64(root + i * 8).unwrap(), 1000 + i, "{kind}");
        }
    }
}

#[test]
fn nested_calls_crash_and_recover_cleanly() {
    let mut pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
    let reg = mark_slot_registry();
    let _ = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &reg).unwrap();

    let fan_task = |slot: u64| {
        let mut args = slot.to_le_bytes().to_vec();
        args.extend_from_slice(&5u64.to_le_bytes());
        Task::new(FANOUT, args)
    };

    let mut crashes = 0;
    loop {
        let rt = Runtime::open(pmem.clone(), &reg).unwrap();
        if crashes < 4 {
            pmem.arm_failpoint(FailPlan::after_events(45 + crashes * 25));
        }
        let report = rt.run_tasks((0..10).map(|t| fan_task(t * 3)));
        if !report.crashed {
            break;
        }
        crashes += 1;
        pmem = pmem.reopen().unwrap();
        let rt = Runtime::open(pmem.clone(), &reg).unwrap();
        rt.recover(RecoveryMode::Parallel).unwrap();
        // After recovery every stack is balanced.
        for pid in 0..2 {
            assert_eq!(rt.open_stack(pid).unwrap().depth(), 0);
        }
    }
    let rt = Runtime::open(pmem.clone(), &reg).unwrap();
    let root = rt.user_root().unwrap();
    for slot in 0..30u64 {
        assert_eq!(pmem.read_u64(root + slot * 8).unwrap(), 5, "slot {slot}");
    }
}

#[test]
fn serial_and_parallel_recovery_have_identical_effects() {
    // Build two identical crashed systems; recover one serially and one
    // in parallel; the persistent outcomes must match.
    let build_crashed = || {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = mark_slot_registry();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(4), &reg).unwrap();
        // Plant one un-recovered frame per worker deterministically.
        for pid in 0..4 {
            let mut stack = rt.open_stack(pid).unwrap();
            let mut args = (200 + pid as u64).to_le_bytes().to_vec();
            args.extend_from_slice(&(90 + pid as u64).to_le_bytes());
            stack.push(MARK_SLOT, &args).unwrap();
        }
        pmem.crash_now(0, 1.0);
        (pmem.reopen().unwrap(), reg)
    };

    let mut outcomes = Vec::new();
    for mode in [RecoveryMode::Serial, RecoveryMode::Parallel] {
        let (pmem, reg) = build_crashed();
        let rt = Runtime::open(pmem.clone(), &reg).unwrap();
        let report = rt.recover(mode).unwrap();
        assert_eq!(report.total_frames(), 4);
        assert_eq!(report.frames_recovered, vec![1, 1, 1, 1]);
        let root = rt.user_root().unwrap();
        let vals: Vec<u64> = (0..4)
            .map(|pid| pmem.read_u64(root + (200 + pid as u64) * 8).unwrap())
            .collect();
        outcomes.push(vals);
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0], vec![90, 91, 92, 93]);
}

#[test]
fn eager_flush_region_runs_the_runtime_too() {
    // §5 mode: every write persists immediately; the runtime protocols
    // must be oblivious to the flushing mode.
    let pmem = PMemBuilder::new()
        .len(1 << 20)
        .eager_flush(true)
        .build_in_memory();
    let reg = mark_slot_registry();
    let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &reg).unwrap();
    let report = rt.run_tasks((0..20).map(|i| mark_task(i, i + 1)));
    assert_eq!(report.completed, 20);
    pmem.crash_now(0, 0.0);
    let pmem2 = pmem.reopen().unwrap();
    let rt2 = Runtime::open(pmem2.clone(), &reg).unwrap();
    assert_eq!(
        rt2.recover(RecoveryMode::Parallel).unwrap().total_frames(),
        0
    );
    let root = rt2.user_root().unwrap();
    for i in 0..20u64 {
        assert_eq!(pmem2.read_u64(root + i * 8).unwrap(), i + 1);
    }
}

#[test]
fn small_line_size_region_works_end_to_end() {
    // 16-byte cache lines: frames span many lines, marker flips still
    // single-line. Exercises the long-frame path pervasively (E3).
    let mut pmem = PMemBuilder::new()
        .len(1 << 20)
        .line_size(16)
        .build_in_memory();
    let reg = mark_slot_registry();
    let _ = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &reg).unwrap();
    let mut crashes = 0;
    loop {
        let rt = Runtime::open(pmem.clone(), &reg).unwrap();
        if crashes < 3 {
            pmem.arm_failpoint(FailPlan::after_events(80));
        }
        let report = rt.run_tasks((0..30).map(|i| mark_task(i, i)));
        if !report.crashed {
            break;
        }
        crashes += 1;
        pmem = pmem.reopen().unwrap();
        Runtime::open(pmem.clone(), &reg)
            .unwrap()
            .recover(RecoveryMode::Parallel)
            .unwrap();
    }
    let rt = Runtime::open(pmem.clone(), &reg).unwrap();
    let root = rt.user_root().unwrap();
    for i in 0..30u64 {
        assert_eq!(pmem.read_u64(root + i * 8).unwrap(), i);
    }
}
