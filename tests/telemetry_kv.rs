//! Flight-recorder integration over the KV store: spans opened around
//! (and across) a crash/reopen boundary stay balanced, the collected
//! trace validates, and the summary attributes the store's ops.
#![cfg(feature = "telemetry")]

use pstack::heap::PHeap;
use pstack::kv::{KvVariant, PKvStore};
use pstack::nvram::PMemBuilder;
use pstack::telemetry::{self, TraceSession};

#[test]
fn spans_stay_balanced_across_crash_and_reopen() {
    // A span opened *before* the session must not leak an unbalanced
    // exit into the trace when it closes inside the session.
    let pre_session_span = telemetry::span("test.pre-session");

    let session = TraceSession::start();

    let pmem = PMemBuilder::new()
        .len(1 << 18)
        .eager_flush(true)
        .build_in_memory();
    let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 18).unwrap();
    let kv = PKvStore::format(pmem.clone(), &heap, 16, 128, KvVariant::Nsrl).unwrap();

    {
        let _outer = telemetry::span("test.outer");
        kv.put(0, 1, 10, 1).unwrap();
        kv.put(0, 2, 20, 2).unwrap();
        {
            let _inner = telemetry::span("test.inner");
            kv.delete(0, 3, 20).unwrap();
        }
    }

    // A span held OPEN across the power cut and the reopen: the crash
    // event lands inside it, the exit comes after recovery, and the
    // pairing must survive.
    let kv = {
        let _spanning = telemetry::span("test.across-crash");
        pmem.crash_now(7, 0.0);
        let pmem = pmem.reopen().unwrap();
        PKvStore::open(pmem, kv.base(), KvVariant::Nsrl).unwrap()
    };
    assert_eq!(kv.get(10).unwrap(), Some(1));

    drop(pre_session_span);
    let snapshot = session.finish();

    if !telemetry::compiled() {
        assert!(snapshot.threads.is_empty());
        return;
    }

    // The structural lint the trace-dump --validate mode runs: monotone
    // timestamps, gapless positions, and — the point of this test —
    // balanced span enter/exit pairs despite the crash in the middle
    // and the guard that outlived the session start.
    snapshot.validate().unwrap_or_else(|errs| {
        panic!("trace must validate: {errs:?}");
    });

    let summary = snapshot.summary();
    let labels: Vec<&str> = summary.ops.iter().map(|op| op.label.as_str()).collect();
    assert!(labels.contains(&"test.outer"), "ops: {labels:?}");
    assert!(labels.contains(&"test.inner"), "ops: {labels:?}");
    assert!(labels.contains(&"test.across-crash"), "ops: {labels:?}");
    assert!(labels.contains(&"kv.put"), "ops: {labels:?}");
    assert!(
        !labels.contains(&"test.pre-session"),
        "a span entered before the session must not appear: {labels:?}"
    );
    // The power cut is on the timeline, attributed to the region.
    assert_eq!(summary.timeline.len(), 1, "{:?}", summary.timeline);
    assert!(summary.events > 0);

    // Persist economy: the eager puts persisted inside their spans.
    assert!(
        summary
            .persist_economy
            .iter()
            .any(|pe| pe.label == "kv.put" && pe.persists > 0),
        "economy: {:?}",
        summary.persist_economy
    );
}

#[test]
fn overlapping_sessions_collect_independently() {
    // Sessions may nest (a campaign inside an example-wide recording);
    // each gets the events from its own start cursor and both stay
    // valid.
    let outer = TraceSession::start();
    let pmem = PMemBuilder::new()
        .len(1 << 16)
        .eager_flush(true)
        .build_in_memory();
    pmem.write_u64(0u64.into(), 1).unwrap();
    pmem.flush(0u64.into(), 8).unwrap();

    let inner = TraceSession::start();
    pmem.write_u64(64u64.into(), 2).unwrap();
    pmem.flush(64u64.into(), 8).unwrap();
    let inner_snap = inner.finish();

    pmem.write_u64(128u64.into(), 3).unwrap();
    pmem.flush(128u64.into(), 8).unwrap();
    let outer_snap = outer.finish();

    if !telemetry::compiled() {
        return;
    }
    inner_snap.validate().expect("inner trace validates");
    outer_snap.validate().expect("outer trace validates");
    let inner_events: usize = inner_snap.threads.iter().map(|t| t.events.len()).sum();
    let outer_events: usize = outer_snap.threads.iter().map(|t| t.events.len()).sum();
    assert!(
        outer_events > inner_events,
        "outer ({outer_events}) spans a superset of inner ({inner_events})"
    );
}
