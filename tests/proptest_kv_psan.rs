//! Property tests for the persist-order sanitizer: random KV op mixes
//! with interleaved compactions, on both commit modes, with PSan's
//! shadow-line tracking enabled — asserting the store's publish
//! discipline produces **zero violations** no matter how the traffic
//! and the generation swaps interleave. The answer-exactness against
//! the sequential spec rides along so a silent store bug can't
//! masquerade as "clean".
//!
//! The negative direction (seeded `EarlyPublish` /
//! `NoPersistBeforeSwap` variants *do* trip the sanitizer) is covered
//! by the campaign tests in `pstack-chaos`; here the property is the
//! correct store's cleanliness.
//!
//! # Reproducing failures
//!
//! The proptest shim has no shrinking; every case is deterministic per
//! (test, case index). `PROPTEST_SHIM_SEED=<u64>` perturbs all case
//! seeds, `PROPTEST_CASES=<n>` sets cases per property.

use proptest::prelude::*;

use pstack::heap::PHeap;
use pstack::kv::{KvVariant, PKvStore};
use pstack::nvram::{PMemBuilder, POffset};
use pstack::verify::KvSpec;

const REGION: usize = 1 << 21;
const KEY_SPACE: u64 = 8;

#[derive(Debug, Clone, Copy)]
enum Step {
    Put {
        key: u64,
        value: i64,
    },
    Get {
        key: u64,
    },
    Delete {
        key: u64,
    },
    Cas {
        key: u64,
        expected: i64,
        new: i64,
    },
    /// Compact when headroom has dropped under `below` free slots.
    Compact {
        below: u64,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let key = 0u64..KEY_SPACE;
    let val = -40i64..40;
    prop_oneof![
        5 => (key.clone(), val.clone()).prop_map(|(key, value)| Step::Put { key, value }),
        2 => key.clone().prop_map(|key| Step::Get { key }),
        2 => key.clone().prop_map(|key| Step::Delete { key }),
        2 => (key, val.clone(), val)
            .prop_map(|(key, expected, new)| Step::Cas { key, expected, new }),
        2 => (0u64..16).prop_map(|below| Step::Compact { below }),
    ]
}

/// Random traffic + threshold-triggered compactions under PSan; the
/// property is zero violations at every quiescent point and at the
/// end, with answers matching the sequential spec throughout.
fn run_case(steps: &[Step], eager: bool, log_cap: u64) -> Result<(), TestCaseError> {
    let mut builder = PMemBuilder::new().len(REGION).psan(true);
    if eager {
        builder = builder.eager_flush(true);
    }
    let pmem = builder.build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(0), REGION as u64).unwrap();
    let kv = PKvStore::format(pmem.clone(), &heap, 4, log_cap, KvVariant::Nsrl).unwrap();
    let mut spec = KvSpec::new();
    let mut compactions = 0u64;
    let mut compact = |kv: &PKvStore| {
        kv.compact(&heap).unwrap();
        compactions += 1;
    };

    for (i, step) in steps.iter().enumerate() {
        let seq = i as u64 + 1;
        let full = kv.log_reserved().unwrap() >= kv.log_capacity().unwrap();
        match *step {
            Step::Put { key, value } => {
                if full {
                    compact(&kv);
                }
                prop_assert!(kv.put(0, seq, key, value).unwrap());
                spec.put(key, value);
            }
            Step::Get { key } => {
                prop_assert_eq!(kv.get(key).unwrap(), spec.get(key), "step {}", i);
            }
            Step::Delete { key } => {
                if full {
                    compact(&kv);
                }
                prop_assert_eq!(kv.delete(0, seq, key).unwrap(), spec.delete(key));
            }
            Step::Cas { key, expected, new } => {
                if full {
                    compact(&kv);
                }
                prop_assert_eq!(
                    kv.cas(0, seq, key, expected, new).unwrap(),
                    spec.cas(key, expected, new)
                );
            }
            Step::Compact { below } => {
                let headroom = kv.log_capacity().unwrap() - kv.log_reserved().unwrap();
                if headroom < below {
                    compact(&kv);
                }
            }
        }
        // The shadow state machine must stay clean after *every* step,
        // not just at the end — a violation names the first bad op.
        prop_assert_eq!(
            pmem.psan_violation_count(),
            0,
            "step {} ({:?}): {:?}",
            i,
            step,
            pmem.psan_violations()
        );
    }

    prop_assert_eq!(kv.generation().unwrap(), compactions);
    for (k, v) in spec.contents() {
        prop_assert_eq!(kv.get(*k).unwrap(), Some(*v));
    }
    prop_assert!(
        pmem.psan_violations().is_empty(),
        "{:?}",
        pmem.psan_violations()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eager store: every write is instantly durable, so the publish
    /// checks must never fire regardless of op order.
    #[test]
    fn eager_random_traffic_is_psan_clean(
        steps in proptest::collection::vec(step_strategy(), 1..120)
    ) {
        run_case(&steps, true, 12)?;
    }

    /// Buffered store: group commits must persist records and heads
    /// before the flush-epoch bump publishes the batch, and
    /// compactions must persist the new generation before the swap —
    /// under PSan's eyes, on every interleaving.
    #[test]
    fn batched_random_traffic_is_psan_clean(
        steps in proptest::collection::vec(step_strategy(), 1..120)
    ) {
        run_case(&steps, false, 12)?;
    }
}
