//! Contract tests: every `PersistentStack` variant must satisfy the
//! same observable behaviour (the §3 protocol), including reopen after
//! a crash. Each test runs against all three layouts.

use pstack::core::{FixedStack, ListStack, PError, PersistentStack, ReturnSlot, VecStack};
use pstack::heap::PHeap;
use pstack::nvram::{PMem, PMemBuilder, POffset};

const HEAP_BASE: u64 = 64 * 1024;

struct Variant {
    name: &'static str,
    make: fn(PMem, PHeap) -> Box<dyn PersistentStack>,
    reopen: fn(PMem, PHeap) -> Result<Box<dyn PersistentStack>, PError>,
}

fn fresh() -> (PMem, PHeap) {
    let pmem = PMemBuilder::new().len(1 << 18).build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(HEAP_BASE), (1 << 18) - HEAP_BASE)
        .expect("heap formats");
    (pmem, heap)
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            name: "fixed",
            make: |pmem, _| Box::new(FixedStack::format(pmem, POffset::new(0), 32 * 1024).unwrap()),
            reopen: |pmem, _| {
                Ok(Box::new(FixedStack::open(
                    pmem,
                    POffset::new(0),
                    32 * 1024,
                )?))
            },
        },
        Variant {
            name: "vec",
            make: |pmem, heap| {
                Box::new(VecStack::format(pmem, heap, POffset::new(0), 128).unwrap())
            },
            reopen: |pmem, heap| Ok(Box::new(VecStack::open(pmem, heap, POffset::new(0))?)),
        },
        Variant {
            name: "list",
            make: |pmem, heap| {
                Box::new(ListStack::format(pmem, heap, POffset::new(0), 128).unwrap())
            },
            reopen: |pmem, heap| Ok(Box::new(ListStack::open(pmem, heap, POffset::new(0))?)),
        },
    ]
}

#[test]
fn lifo_discipline_holds() {
    for v in variants() {
        let (pmem, heap) = fresh();
        let mut s = (v.make)(pmem, heap);
        for i in 0..40u64 {
            s.push(i, &i.to_le_bytes()).unwrap();
            assert_eq!(s.depth() as u64, i + 1, "{}", v.name);
        }
        for i in (0..40u64).rev() {
            let top = s.frame_record(s.top_index()).unwrap();
            assert_eq!(top.func_id, i, "{}", v.name);
            assert_eq!(top.args, i.to_le_bytes(), "{}", v.name);
            s.pop().unwrap();
        }
        assert_eq!(s.depth(), 0, "{}", v.name);
        assert!(matches!(s.pop(), Err(PError::StackEmpty)), "{}", v.name);
        s.check_consistency().unwrap();
    }
}

#[test]
fn interleaved_push_pop_random_walk() {
    for v in variants() {
        let (pmem, heap) = fresh();
        let mut s = (v.make)(pmem, heap);
        // Deterministic pseudo-random walk.
        let mut x = 0x12345678u64;
        let mut model: Vec<(u64, Vec<u8>)> = Vec::new();
        for step in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let go_push = model.is_empty() || !(x >> 33).is_multiple_of(3);
            if go_push && model.len() < 60 {
                let args = vec![(step % 251) as u8; (x % 48) as usize];
                s.push(step, &args).unwrap();
                model.push((step, args));
            } else if !model.is_empty() {
                s.pop().unwrap();
                model.pop();
            }
            assert_eq!(s.depth(), model.len(), "{} at step {step}", v.name);
        }
        // Full content comparison at the end.
        for (idx, (id, args)) in model.iter().enumerate() {
            let rec = s.frame_record(idx + 1).unwrap();
            assert_eq!(rec.func_id, *id, "{}", v.name);
            assert_eq!(&rec.args, args, "{}", v.name);
        }
        s.check_consistency().unwrap();
    }
}

#[test]
fn survives_crash_and_reopen_with_content() {
    for v in variants() {
        let (pmem, heap) = fresh();
        let mut s = (v.make)(pmem.clone(), heap.clone());
        for i in 0..25u64 {
            s.push(100 + i, &[i as u8; 33]).unwrap();
        }
        s.pop().unwrap();
        s.pop().unwrap();
        s.set_ret(5, ReturnSlot::Value(*b"SLOT-ABC")).unwrap();
        drop(s);
        pmem.crash_now(1, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(HEAP_BASE)).unwrap();
        let s2 = (v.reopen)(pmem2, heap2).unwrap();
        assert_eq!(s2.depth(), 23, "{}", v.name);
        assert_eq!(s2.frame_record(23).unwrap().func_id, 122, "{}", v.name);
        assert_eq!(
            s2.ret(5).unwrap(),
            ReturnSlot::Value(*b"SLOT-ABC"),
            "{}",
            v.name
        );
        s2.check_consistency().unwrap();
    }
}

#[test]
fn unflushed_push_never_survives_as_torn_frame() {
    // Write-heavy push then immediate survivor-less crash: whatever the
    // variant, the reopened stack must parse cleanly to a prefix depth.
    for v in variants() {
        let (pmem, heap) = fresh();
        let mut s = (v.make)(pmem.clone(), heap.clone());
        for i in 0..10u64 {
            s.push(i, &[7u8; 100]).unwrap();
        }
        drop(s);
        pmem.crash_now(2, 0.5);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(HEAP_BASE)).unwrap();
        let s2 = (v.reopen)(pmem2, heap2).unwrap();
        // Flush discipline means everything is durable here.
        assert_eq!(s2.depth(), 10, "{}", v.name);
        s2.check_consistency().unwrap();
    }
}

#[test]
fn return_slot_protocol_is_uniform() {
    for v in variants() {
        let (pmem, heap) = fresh();
        let mut s = (v.make)(pmem, heap);
        s.push(1, b"parent").unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Empty, "{}", v.name);
        s.set_ret(1, ReturnSlot::Unit).unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Unit, "{}", v.name);
        s.set_ret(1, ReturnSlot::Value([3u8; 8])).unwrap();
        assert_eq!(s.ret(1).unwrap(), ReturnSlot::Value([3u8; 8]), "{}", v.name);
        s.set_ret(0, ReturnSlot::Value([9u8; 8])).unwrap();
        assert_eq!(s.ret(0).unwrap(), ReturnSlot::Value([9u8; 8]), "{}", v.name);
        // Out-of-range indices are rejected uniformly.
        assert!(s.ret(7).is_err(), "{}", v.name);
        assert!(s.set_ret(7, ReturnSlot::Unit).is_err(), "{}", v.name);
    }
}

#[test]
fn empty_args_and_large_args_round_trip() {
    for v in variants() {
        let (pmem, heap) = fresh();
        let mut s = (v.make)(pmem, heap);
        s.push(1, &[]).unwrap();
        let big = vec![0xC3u8; 4096];
        s.push(2, &big).unwrap();
        assert_eq!(
            s.frame_record(1).unwrap().args,
            Vec::<u8>::new(),
            "{}",
            v.name
        );
        assert_eq!(s.frame_record(2).unwrap().args, big, "{}", v.name);
        s.check_consistency().unwrap();
    }
}
