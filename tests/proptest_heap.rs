//! Property tests: the persistent heap against a volatile reference
//! model, under random alloc/free sequences, with crash/reopen
//! consistency at random points.

use std::collections::HashMap;

use proptest::prelude::*;

use pstack::heap::PHeap;
use pstack::nvram::{PMemBuilder, POffset};

const REGION: usize = 1 << 20;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate `size` bytes and remember the handle under `slot`.
    Alloc { slot: u8, size: usize },
    /// Free the handle remembered under `slot` (no-op if none).
    Free { slot: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..16, 1usize..2048).prop_map(|(slot, size)| Op::Alloc { slot, size }),
        2 => (0u8..16).prop_map(|slot| Op::Free { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Allocations never overlap, never leave the region, survive a
    /// full-survivor crash, and the allocator's internal consistency
    /// check passes after every reopen.
    #[test]
    fn random_alloc_free_stays_consistent(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let pmem = PMemBuilder::new().len(REGION).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), REGION as u64).unwrap();
        let mut live: HashMap<u8, (POffset, usize)> = HashMap::new();

        for op in &ops {
            match op {
                Op::Alloc { slot, size } => {
                    if live.contains_key(slot) {
                        continue;
                    }
                    match heap.alloc(*size) {
                        Ok(p) => {
                            // In bounds.
                            prop_assert!(p.get() as usize + size <= REGION);
                            // Disjoint from every live allocation.
                            for (q, qlen) in live.values() {
                                let disjoint = p.get() + *size as u64 <= q.get()
                                    || q.get() + *qlen as u64 <= p.get();
                                prop_assert!(disjoint, "{p} overlaps {q}");
                            }
                            // Scribble over the payload; this must never
                            // corrupt allocator metadata (checked below).
                            pmem.fill(p, 0xEE, *size).unwrap();
                            live.insert(*slot, (p, *size));
                        }
                        Err(_) => {
                            // Out of memory is legal under fragmentation;
                            // the heap must still be consistent.
                            heap.check_consistency().unwrap();
                        }
                    }
                }
                Op::Free { slot } => {
                    if let Some((p, _)) = live.remove(slot) {
                        heap.free(p).unwrap();
                    }
                }
            }
        }
        heap.check_consistency().unwrap();

        // A clean-shutdown crash (all dirty lines survive) and reopen
        // must reconstruct the same live set.
        pmem.crash_now(0, 1.0);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(0)).unwrap();
        heap2.check_consistency().unwrap();
        for (p, len) in live.values() {
            prop_assert_eq!(heap2.payload_len(*p).unwrap() >= *len as u64, true);
            // Payload bytes survived.
            let bytes = pmem2.read_vec(*p, *len).unwrap();
            prop_assert!(bytes.iter().all(|b| *b == 0xEE));
        }
        // Live allocations can still be freed after recovery; freed
        // space is reusable.
        for (p, _) in live.values() {
            heap2.free(*p).unwrap();
        }
        heap2.check_consistency().unwrap();
        let big = heap2.alloc(REGION / 2).unwrap();
        heap2.free(big).unwrap();
    }

    /// Canary round-trip under random alloc/free: every live
    /// allocation is filled with a slot-unique byte pattern, and no
    /// interleaving of allocs, frees, coalescing or crash/reopen may
    /// disturb another allocation's payload — the no-overlap guarantee
    /// observed through the data itself rather than through offsets.
    /// After everything is freed, coalescing must restore a single
    /// free block.
    #[test]
    fn canaries_survive_and_frees_recoalesce(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let pmem = PMemBuilder::new().len(REGION).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), REGION as u64).unwrap();
        let initial = heap.stats();
        let mut live: HashMap<u8, (POffset, usize)> = HashMap::new();

        for op in &ops {
            match op {
                Op::Alloc { slot, size } => {
                    if live.contains_key(slot) {
                        continue;
                    }
                    if let Ok(p) = heap.alloc(*size) {
                        // Slot-unique canary, never 0x00 (the fresh-heap
                        // fill) so stale memory cannot masquerade.
                        pmem.fill(p, 0xA0 | (slot & 0x0F), *size).unwrap();
                        pmem.flush(p, *size).unwrap();
                        live.insert(*slot, (p, *size));
                    }
                }
                Op::Free { slot } => {
                    if let Some((p, _)) = live.remove(slot) {
                        heap.free(p).unwrap();
                    }
                }
            }
            // Every live canary is intact after every operation.
            for (slot, (p, len)) in &live {
                let want = 0xA0 | (slot & 0x0F);
                let bytes = pmem.read_vec(*p, *len).unwrap();
                prop_assert!(
                    bytes.iter().all(|b| *b == want),
                    "slot {slot} canary disturbed"
                );
            }
        }

        // Canaries also survive a crash/reopen (payloads were flushed).
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let heap2 = PHeap::open(pmem2.clone(), POffset::new(0)).unwrap();
        for (slot, (p, len)) in &live {
            let want = 0xA0 | (slot & 0x0F);
            let bytes = pmem2.read_vec(*p, *len).unwrap();
            prop_assert!(
                bytes.iter().all(|b| *b == want),
                "slot {slot} canary lost across reopen"
            );
        }

        // Free everything: coalescing must fold the heap back into one
        // free block with the original capacity.
        for (p, _) in live.values() {
            heap2.free(*p).unwrap();
        }
        let end = heap2.stats();
        prop_assert_eq!(end.used_blocks, 0);
        prop_assert_eq!(end.free_blocks, 1, "fragments left: {:?}", end);
        prop_assert_eq!(end.free_payload_bytes, initial.free_payload_bytes);
        heap2.check_consistency().unwrap();
    }

    /// Alignment requests are honored and do not break consistency.
    #[test]
    fn aligned_allocations_are_aligned(
        sizes in proptest::collection::vec(1usize..1024, 1..20),
        align_pow in 4u32..8,
    ) {
        let align = 1u64 << align_pow;
        let pmem = PMemBuilder::new().len(REGION).build_in_memory();
        let heap = PHeap::format(pmem, POffset::new(0), REGION as u64).unwrap();
        let mut handles = Vec::new();
        for size in &sizes {
            let p = heap.alloc_aligned(*size, align).unwrap();
            prop_assert!(p.is_aligned(align), "{p} not {align}-aligned");
            handles.push(p);
        }
        for p in handles {
            heap.free(p).unwrap();
        }
        heap.check_consistency().unwrap();
    }
}
