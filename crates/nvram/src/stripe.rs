//! Multi-region striping: a bundle of independent [`PMem`] regions.
//!
//! A sharded persistent object (one lock + one log + one recovery scan
//! per shard) wants each shard on its own region, so that the internal
//! critical section of one region never serializes accesses to another
//! and a crash/recover cycle can be driven over all of them at once. A
//! system failure takes every region down together — [`crash_all`] and
//! [`reopen_all`] model that, with per-region seeds keeping survivor
//! selection deterministic.
//!
//! [`crash_all`]: PMemStripe::crash_all
//! [`reopen_all`]: PMemStripe::reopen_all

use crate::pmem::PMemBuilder;
use crate::psan::PsanViolation;
use crate::rootswap::RootCell;
use crate::stats::StatsSnapshot;
use crate::{MemError, PMem, POffset};

/// A fixed-size bundle of independent [`PMem`] regions, one per shard.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
///
/// let stripe = PMemBuilder::new().len(4096).eager_flush(true).build_striped(4);
/// assert_eq!(stripe.len(), 4);
/// stripe.region(0).write_u64(64u64.into(), 7).unwrap();
/// assert_eq!(stripe.aggregate_stats().writes, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PMemStripe {
    regions: Vec<PMem>,
}

impl PMemStripe {
    /// Bundles existing regions into a stripe.
    ///
    /// # Panics
    ///
    /// Panics on an empty region list.
    #[must_use]
    pub fn from_regions(regions: Vec<PMem>) -> Self {
        assert!(!regions.is_empty(), "a stripe needs at least one region");
        PMemStripe { regions }
    }

    /// Number of regions in the stripe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `false` always — stripes hold at least one region.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The `i`-th region.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn region(&self, i: usize) -> &PMem {
        &self.regions[i]
    }

    /// All regions, in stripe order.
    #[must_use]
    pub fn regions(&self) -> &[PMem] {
        &self.regions
    }

    /// Sum of every region's statistics counters — the system-wide
    /// persist/coalesce totals a scaling bench reports.
    #[must_use]
    pub fn aggregate_stats(&self) -> StatsSnapshot {
        self.regions
            .iter()
            .map(|r| r.stats().snapshot())
            .fold(StatsSnapshot::default(), |acc, s| acc + s)
    }

    /// `true` if any region has crashed.
    #[must_use]
    pub fn any_crashed(&self) -> bool {
        self.regions.iter().any(PMem::is_crashed)
    }

    /// `true` only when **every** region has crashed — the state a
    /// whole-system failure leaves behind and the precondition of
    /// [`PMemStripe::reopen_all`].
    #[must_use]
    pub fn all_crashed(&self) -> bool {
        self.regions.iter().all(PMem::is_crashed)
    }

    /// Indexes of the regions currently in the crashed state.
    #[must_use]
    pub fn crashed_regions(&self) -> Vec<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_crashed())
            .map(|(i, _)| i)
            .collect()
    }

    /// Attribution of a partial failure: the **first-observed** crashed
    /// region together with its frozen persistence-event counter (the
    /// counter stops advancing at the crash, so it records exactly how
    /// far that region got). `None` while no region has crashed.
    ///
    /// Each region records a monotonic observation stamp at the instant
    /// its crash is first observed ([`PMem::crash_stamp`]); attribution
    /// picks the earliest stamp, so with several near-simultaneous
    /// region deaths the true first faller is named — not merely the
    /// lowest-indexed casualty. Still most meaningful *before* the
    /// failure is propagated stripe-wide: after
    /// [`PMemStripe::crash_all`] every region is crashed, though the
    /// original faller keeps the earliest stamp and stays attributed.
    #[must_use]
    pub fn crash_site(&self) -> Option<(usize, u64)> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_crashed())
            .min_by_key(|(_, r)| r.crash_stamp().unwrap_or(u64::MAX))
            .map(|(i, r)| (i, r.events()))
    }

    /// Per-region persistence-event counters for this boot, in stripe
    /// order — the denominators campaign logs attribute kills against.
    #[must_use]
    pub fn events_per_region(&self) -> Vec<u64> {
        self.regions.iter().map(PMem::events).collect()
    }

    /// Opens shard `i`'s [`RootCell`] at `base` — the per-shard root-swap
    /// support a generational sharded object uses: each shard keeps its
    /// own double-buffered root in its own region, so one shard's
    /// generation swap never touches (or serializes with) another's.
    ///
    /// # Errors
    ///
    /// Propagated from [`RootCell::open`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn root_cell(&self, i: usize, base: POffset) -> Result<RootCell, MemError> {
        RootCell::open(self.regions[i].clone(), base)
    }

    /// All PSan violations recorded by any region, in stripe order —
    /// empty when PSan is disabled (or when every region is clean).
    /// Region labels (`shard-0`, `shard-1`, …) attribute each one.
    #[must_use]
    pub fn psan_violations(&self) -> Vec<PsanViolation> {
        self.regions
            .iter()
            .flat_map(PMem::psan_violations)
            .collect()
    }

    /// Removes any armed crash-injection plan from every region.
    pub fn disarm_all(&self) {
        for region in &self.regions {
            region.disarm_failpoint();
        }
    }

    /// Injects a system failure into every not-yet-crashed region: each
    /// region `i` crashes with survivor seed `seed ^ i`, so the set of
    /// surviving dirty lines is deterministic per `(seed, prob)` across
    /// the whole stripe. Regions that already crashed are left as they
    /// fell.
    pub fn crash_all(&self, seed: u64, survival_prob: f64) {
        for (i, region) in self.regions.iter().enumerate() {
            region.crash_now(seed ^ i as u64, survival_prob);
        }
    }

    /// Reopens every region of a crashed stripe, as the recovery boot
    /// of the sharded system would.
    ///
    /// # Errors
    ///
    /// [`MemError::InvalidConfig`] if any region has not crashed, or a
    /// propagated I/O error from a file-backed region.
    pub fn reopen_all(&self) -> Result<PMemStripe, MemError> {
        let regions = self
            .regions
            .iter()
            .map(PMem::reopen)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PMemStripe { regions })
    }
}

impl PMemBuilder {
    /// Builds `n` independent in-memory regions sharing this
    /// configuration, bundled as a [`PMemStripe`] — the substrate of a
    /// sharded store where operations on different shards never
    /// contend on a region lock.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the configuration is invalid.
    #[must_use]
    pub fn build_striped(self, n: usize) -> PMemStripe {
        assert!(n > 0, "a stripe needs at least one region");
        PMemStripe::from_regions(
            (0..n)
                .map(|i| {
                    let region = self.clone().build_in_memory();
                    // No-ops unless PSan / the recorder are enabled:
                    // name the region so violation reports and
                    // telemetry events attribute to the right shard.
                    region.psan_set_label(&format!("shard-{i}"));
                    region.telemetry_set_label(&format!("shard-{i}"));
                    region
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::POffset;

    fn stripe(n: usize) -> PMemStripe {
        PMemBuilder::new().len(1024).line_size(64).build_striped(n)
    }

    #[test]
    fn regions_are_independent() {
        let s = stripe(3);
        for i in 0..3u64 {
            s.region(i as usize)
                .write_u64(POffset::new(0), i + 1)
                .unwrap();
        }
        for i in 0..3u64 {
            assert_eq!(
                s.region(i as usize).read_u64(POffset::new(0)).unwrap(),
                i + 1
            );
        }
    }

    #[test]
    fn aggregate_stats_sum_across_regions() {
        let s = stripe(4);
        for i in 0..4 {
            s.region(i).write_u64(POffset::new(0), 1).unwrap();
            s.region(i).flush(POffset::new(0), 8).unwrap();
        }
        let agg = s.aggregate_stats();
        assert_eq!(agg.writes, 4);
        assert_eq!(agg.flush_calls, 4);
        assert_eq!(agg.lines_persisted, 4);
        assert_eq!(agg.persists, 4);
    }

    #[test]
    fn crash_all_and_reopen_all_round_trip() {
        let s = stripe(2);
        s.region(0).write_u64(POffset::new(0), 7).unwrap();
        s.region(0).flush(POffset::new(0), 8).unwrap();
        s.region(1).write_u64(POffset::new(0), 9).unwrap(); // unflushed
        assert!(!s.any_crashed());
        s.crash_all(0, 0.0);
        assert!(s.any_crashed());
        let s2 = s.reopen_all().unwrap();
        assert!(!s2.any_crashed());
        assert_eq!(s2.region(0).read_u64(POffset::new(0)).unwrap(), 7);
        assert_eq!(s2.region(1).read_u64(POffset::new(0)).unwrap(), 0);
    }

    #[test]
    fn crash_all_skips_already_crashed_regions() {
        let s = stripe(2);
        s.region(0).crash_now(9, 0.0);
        s.crash_all(0, 1.0); // must not panic on the crashed region
        assert!(s.region(1).is_crashed());
        assert!(s.reopen_all().is_ok());
    }

    #[test]
    fn survivor_seeds_differ_per_region() {
        // With prob 0.5 and identical writes, at least one pair of
        // regions should disagree about survival for some seed; the
        // per-region seed xor makes outcomes independent.
        let s = stripe(8);
        for i in 0..8 {
            s.region(i).write_u64(POffset::new(0), 1).unwrap();
        }
        s.crash_all(3, 0.5);
        let s = s.reopen_all().unwrap();
        let survived: Vec<u64> = (0..8)
            .map(|i| s.region(i).read_u64(POffset::new(0)).unwrap())
            .collect();
        assert!(
            survived.contains(&1) && survived.contains(&0),
            "expected a mix of survivors and losses: {survived:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_rejected() {
        let _ = PMemBuilder::new().len(1024).build_striped(0);
    }

    #[test]
    fn crash_site_attributes_the_first_crashed_region() {
        let s = stripe(3);
        assert_eq!(s.crash_site(), None);
        assert!(s.crashed_regions().is_empty());
        // Region 1 performs two events, then dies; the others stay up.
        s.region(1).write_u64(POffset::new(0), 1).unwrap();
        s.region(1).flush(POffset::new(0), 8).unwrap();
        s.region(1).crash_now(0, 1.0);
        assert_eq!(s.crash_site(), Some((1, 2)));
        assert_eq!(s.crashed_regions(), vec![1]);
        assert!(s.any_crashed());
        assert!(!s.all_crashed());
        // Propagating the failure stripe-wide reaches the all-crashed
        // state reopen_all requires.
        s.crash_all(0, 0.0);
        assert!(s.all_crashed());
        assert_eq!(s.crashed_regions(), vec![0, 1, 2]);
    }

    #[test]
    fn crash_site_names_the_first_faller_not_the_lowest_index() {
        // Two regions die in one window: region 2 trips first, region 0
        // follows. Index order would blame region 0; the observation
        // stamps name region 2.
        let s = stripe(3);
        s.region(2).write_u64(POffset::new(0), 1).unwrap();
        s.region(2).crash_now(0, 1.0);
        s.region(0).write_u64(POffset::new(0), 1).unwrap();
        s.region(0).write_u64(POffset::new(8), 2).unwrap();
        s.region(0).crash_now(0, 1.0);
        assert_eq!(s.crashed_regions(), vec![0, 2]);
        assert_eq!(
            s.crash_site(),
            Some((2, 1)),
            "attribution must follow observation order, not index order"
        );
        // Propagating the failure stripe-wide keeps the original
        // faller attributed: later stamps never displace the earliest.
        s.crash_all(0, 0.0);
        assert!(s.all_crashed());
        assert_eq!(s.crash_site().map(|(i, _)| i), Some(2));
    }

    #[test]
    fn events_per_region_track_independent_streams() {
        let s = stripe(2);
        s.region(0).write_u64(POffset::new(0), 1).unwrap();
        s.region(0).write_u64(POffset::new(8), 2).unwrap();
        s.region(1).write_u64(POffset::new(0), 3).unwrap();
        assert_eq!(s.events_per_region(), vec![2, 1]);
    }

    #[test]
    fn disarm_all_clears_every_failpoint() {
        use crate::FailPlan;
        let s = stripe(2);
        s.region(0).arm_failpoint(FailPlan::after_events(5));
        s.region(1).arm_failpoint(FailPlan::after_events(5));
        s.disarm_all();
        assert!(!s.region(0).failpoint_armed());
        assert!(!s.region(1).failpoint_armed());
    }
}
