//! Offset-based persistent references (§4.1 of the paper).
//!
//! After a restart the NVRAM mapping may land at a different virtual
//! address, so raw pointers stored in NVRAM become garbage. The paper's
//! rule is to store *offsets from the start of the mapping* instead.
//! [`POffset`] enforces that rule in the type system: it is the only
//! form of persistent reference this crate understands.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An offset into an NVRAM region, measured in bytes from the region base.
///
/// `POffset` is what the paper calls `ptr - MAP_ADDR`: a relocatable
/// persistent reference. It is safe to store a `POffset` *inside* NVRAM
/// (e.g. in a stack frame or a heap block header) because it stays valid
/// across restarts and remappings.
///
/// The all-ones value is reserved as [`POffset::NULL`], mirroring how
/// persistent data structures need a distinguishable "no reference" value.
///
/// # Example
///
/// ```
/// use pstack_nvram::POffset;
///
/// let base = POffset::new(64);
/// let field = base + 16u64;
/// assert_eq!(field.get(), 80);
/// assert!(POffset::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct POffset(u64);

impl POffset {
    /// The distinguished "null" offset (all bits set).
    pub const NULL: POffset = POffset(u64::MAX);

    /// Creates an offset from a raw byte count.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        POffset(raw)
    }

    /// Returns the raw byte offset.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the raw byte offset as a `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the offset does not fit in `usize` (impossible on
    /// 64-bit targets for non-null offsets within a real region).
    #[must_use]
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).expect("offset exceeds usize")
    }

    /// Returns `true` if this is [`POffset::NULL`].
    #[must_use]
    pub const fn is_null(self) -> bool {
        self.0 == u64::MAX
    }

    /// Returns the offset rounded up to the next multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    #[must_use]
    pub fn align_up(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        POffset((self.0 + align - 1) & !(align - 1))
    }

    /// Returns `true` if the offset is a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero or not a power of two.
    #[must_use]
    pub fn is_aligned(self, align: u64) -> bool {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }

    /// Checked addition; `None` on overflow or if `self` is null.
    #[must_use]
    pub fn checked_add(self, rhs: u64) -> Option<Self> {
        if self.is_null() {
            return None;
        }
        self.0.checked_add(rhs).map(POffset)
    }

    /// Byte distance from `origin` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `origin > self`.
    #[must_use]
    pub fn distance_from(self, origin: POffset) -> u64 {
        assert!(origin.0 <= self.0, "origin {origin} is past offset {self}");
        self.0 - origin.0
    }
}

impl fmt::Debug for POffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "POffset(NULL)")
        } else {
            write!(f, "POffset({:#x})", self.0)
        }
    }
}

impl fmt::Display for POffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "NULL")
        } else {
            write!(f, "+{:#x}", self.0)
        }
    }
}

impl From<u64> for POffset {
    fn from(raw: u64) -> Self {
        POffset(raw)
    }
}

impl From<POffset> for u64 {
    fn from(off: POffset) -> Self {
        off.0
    }
}

impl Add<u64> for POffset {
    type Output = POffset;

    fn add(self, rhs: u64) -> POffset {
        debug_assert!(!self.is_null(), "arithmetic on NULL offset");
        POffset(self.0 + rhs)
    }
}

impl Add<usize> for POffset {
    type Output = POffset;

    fn add(self, rhs: usize) -> POffset {
        self + rhs as u64
    }
}

impl AddAssign<u64> for POffset {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<u64> for POffset {
    type Output = POffset;

    fn sub(self, rhs: u64) -> POffset {
        debug_assert!(!self.is_null(), "arithmetic on NULL offset");
        POffset(self.0 - rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trip() {
        let a = POffset::new(100);
        assert_eq!((a + 28u64).get(), 128);
        assert_eq!((a + 28usize).get(), 128);
        assert_eq!((a + 28u64 - 28u64), a);
        let mut b = a;
        b += 5;
        assert_eq!(b.get(), 105);
    }

    #[test]
    fn null_is_distinguished() {
        assert!(POffset::NULL.is_null());
        assert!(!POffset::new(0).is_null());
        assert_eq!(POffset::NULL.checked_add(1), None);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(POffset::new(0).align_up(8).get(), 0);
        assert_eq!(POffset::new(1).align_up(8).get(), 8);
        assert_eq!(POffset::new(8).align_up(8).get(), 8);
        assert_eq!(POffset::new(63).align_up(64).get(), 64);
        assert!(POffset::new(64).is_aligned(64));
        assert!(!POffset::new(65).is_aligned(64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_up_rejects_non_power_of_two() {
        let _ = POffset::new(1).align_up(3);
    }

    #[test]
    fn distance_from_measures_bytes() {
        assert_eq!(POffset::new(128).distance_from(POffset::new(64)), 64);
    }

    #[test]
    #[should_panic(expected = "past offset")]
    fn distance_from_rejects_reversed_arguments() {
        let _ = POffset::new(64).distance_from(POffset::new(128));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(POffset::new(0x40).to_string(), "+0x40");
        assert_eq!(POffset::NULL.to_string(), "NULL");
        assert_eq!(format!("{:?}", POffset::NULL), "POffset(NULL)");
    }

    #[test]
    fn conversions() {
        let o: POffset = 7u64.into();
        let raw: u64 = o.into();
        assert_eq!(raw, 7);
        assert_eq!(o.as_usize(), 7);
    }
}
