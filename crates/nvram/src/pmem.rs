//! The emulated NVRAM region.
//!
//! [`PMem`] models a byte-addressable persistent region fronted by a
//! volatile cache of fixed-size lines (§1–§3 of the paper):
//!
//! * [`PMem::write`] stores into volatile dirty lines only;
//! * [`PMem::flush`] makes the covering lines durable, **one line at a
//!   time** — each line persists atomically, but a crash can land
//!   between the lines of a multi-line flush;
//! * a crash ([`PMem::crash_now`] or an armed [`FailPlan`]) persists an
//!   arbitrary seeded subset of dirty lines (modelling evictions that
//!   happened to occur before the failure) and discards the rest, after
//!   which **every** access fails with [`MemError::Crashed`];
//! * [`PMem::reopen`] produces a fresh handle onto the surviving
//!   persistent image, as the recovery boot of the system would.
//!
//! Accesses are serialized internally with critical sections of a single
//! read/write/flush, so concurrent threads interleave at persistence-event
//! granularity — exactly the granularity at which a `kill` can cut a real
//! execution between flushes.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use parking_lot::FairMutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::backend::{Backend, BackendKind, FileBackend, MemBackend};
use crate::failpoint::{FailPlan, FailState};
use crate::psan::{PsanCell, PsanViolation};
use crate::stats::MemStats;
use crate::{MemError, POffset};

/// Default cache-line size in bytes, matching x86.
pub const DEFAULT_CACHE_LINE: usize = 64;

/// Default region length: 1 MiB.
pub const DEFAULT_REGION_LEN: usize = 1 << 20;

/// Configures and creates [`PMem`] regions.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
///
/// let pmem = PMemBuilder::new()
///     .len(64 * 1024)
///     .line_size(64)
///     .eager_flush(false)
///     .build_in_memory();
/// assert_eq!(pmem.len(), 64 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct PMemBuilder {
    len: usize,
    line_size: usize,
    eager_flush: bool,
    jitter: Option<Jitter>,
    persist_delay: Option<std::time::Duration>,
    flush_latency: Option<std::time::Duration>,
    psan: bool,
}

/// Scheduling-noise configuration: after a mutating access, the calling
/// thread occasionally pauses until other threads have made progress,
/// modelling OS preemption and slow persistence hardware. See
/// [`PMemBuilder::access_jitter`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Jitter {
    prob: f64,
    pause_events: u64,
}

impl Default for PMemBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PMemBuilder {
    /// Starts a builder with default length, 64-byte lines and buffered
    /// (non-eager) flushing.
    #[must_use]
    pub fn new() -> Self {
        PMemBuilder {
            len: DEFAULT_REGION_LEN,
            line_size: DEFAULT_CACHE_LINE,
            eager_flush: false,
            jitter: None,
            persist_delay: None,
            flush_latency: None,
            psan: false,
        }
    }

    /// Enables PSan, the persist-order sanitizer, on the region: every
    /// line gets a shadow state machine (`Clean → Dirty → Flushed →
    /// Durable`) and publish/commit/ghost-read ordering checks record
    /// attributable violations (see the [`psan`](crate::psan) module).
    /// The shadow survives crash/reopen cycles. Off by default; when
    /// off, every hook is a single pointer-is-null check.
    #[must_use]
    pub fn psan(mut self, enabled: bool) -> Self {
        self.psan = enabled;
        self
    }

    /// Adds a fixed latency to every persist **round-trip** (a flush
    /// or eager write that makes at least one line durable), paid once
    /// per round-trip inside the region's critical section — the
    /// command/fence cost of a real device, as opposed to
    /// [`PMemBuilder::persist_delay`]'s per-line bandwidth cost.
    ///
    /// This is the knob that makes the two scaling levers measurable
    /// in wall-clock even on a single core: striping a store over `N`
    /// regions lets `N` round-trips overlap (each region is its own
    /// device), and group commit divides the number of round-trips
    /// outright.
    #[must_use]
    pub fn flush_latency(mut self, latency: std::time::Duration) -> Self {
        self.flush_latency = if latency.is_zero() {
            None
        } else {
            Some(latency)
        };
        self
    }

    /// Adds a fixed latency to every line persist, emulating the slow
    /// persistence of the paper's HDD-backed deployment (or an SSD /
    /// pessimistic NVRAM write). The delay is paid inside the device's
    /// critical section, serializing persists exactly as a single
    /// mechanical device would.
    ///
    /// Real kills land *mid-operation* because persists are slow; with
    /// the default zero-latency emulation a whole workload can finish
    /// before any wall-clock kill fires. The real-`kill` harness uses
    /// this knob to restore the paper's timing regime.
    #[must_use]
    pub fn persist_delay(mut self, delay: std::time::Duration) -> Self {
        self.persist_delay = if delay.is_zero() { None } else { Some(delay) };
        self
    }

    /// Enables scheduling noise: after each mutating access, with
    /// probability `prob`, the calling thread pauses until `pause_events`
    /// further persistence events have happened (necessarily performed
    /// by *other* threads), bounded by a 5 ms deadline so a system
    /// where everyone pauses cannot deadlock.
    ///
    /// Real deployments (the paper emulates NVRAM with HDD-backed
    /// `mmap`) have slow persists and OS preemption, so a thread can sit
    /// arbitrarily long between two of its own accesses while others
    /// proceed — exactly the windows crash campaigns must exercise. In
    /// the simulator, threads otherwise interleave in near-lockstep and
    /// those windows stay unrealistically narrow. Pausing on *event*
    /// progress rather than wall-clock time keeps the interleaving
    /// pressure independent of machine load. Jittered regions are
    /// **not** deterministic; leave this off (the default) for
    /// reproducible tests.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    #[must_use]
    pub fn access_jitter(mut self, prob: f64, pause_events: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.jitter = if prob > 0.0 && pause_events > 0 {
            Some(Jitter { prob, pause_events })
        } else {
            None
        };
        self
    }

    /// Sets the region length in bytes.
    #[must_use]
    pub fn len(mut self, len: usize) -> Self {
        self.len = len;
        self
    }

    /// Sets the cache-line size in bytes (must be a power of two).
    ///
    /// Small lines (e.g. 8 bytes) are useful in tests: they make "frame
    /// does not fit in one line" scenarios (§3.4, *Flushing long frames*)
    /// easy to trigger.
    #[must_use]
    pub fn line_size(mut self, line_size: usize) -> Self {
        self.line_size = line_size;
        self
    }

    /// When `true`, every write is immediately made durable, emulating
    /// hardware *without* a volatile NVRAM cache. §5 of the paper uses
    /// this mode to run the recoverable-CAS algorithm, which was designed
    /// for cache-less NVRAM.
    #[must_use]
    pub fn eager_flush(mut self, eager: bool) -> Self {
        self.eager_flush = eager;
        self
    }

    /// Builds a region whose durable image lives only in process memory.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero length, or a line
    /// size that is zero or not a power of two).
    #[must_use]
    pub fn build_in_memory(self) -> PMem {
        self.validate().expect("invalid PMem configuration");
        let image = vec![0u8; self.len];
        self.assemble(image, Box::new(MemBackend))
    }

    /// Builds a region backed by a write-through file, creating and
    /// zero-extending the file if necessary. Reopening the same path
    /// later (even from another process) sees all persisted data.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] for invalid parameters and
    /// [`MemError::Io`] if the file cannot be opened or read.
    pub fn build_file(self, path: impl AsRef<Path>) -> Result<PMem, MemError> {
        self.validate()?;
        let mut backend = FileBackend::open(path.as_ref(), self.len)?;
        let mut image = vec![0u8; self.len];
        backend.load(&mut image)?;
        Ok(self.assemble(image, Box::new(backend)))
    }

    fn validate(&self) -> Result<(), MemError> {
        if self.len == 0 {
            return Err(MemError::InvalidConfig(
                "region length must be positive".into(),
            ));
        }
        if self.line_size == 0 || !self.line_size.is_power_of_two() {
            return Err(MemError::InvalidConfig(
                "line size must be a positive power of two".into(),
            ));
        }
        Ok(())
    }

    fn assemble(self, image: Vec<u8>, backend: Box<dyn Backend>) -> PMem {
        PMem {
            inner: Arc::new(Inner {
                len: self.len,
                line_size: self.line_size,
                eager_flush: self.eager_flush,
                jitter: self.jitter,
                persist_delay: self.persist_delay,
                flush_latency: self.flush_latency,
                psan: self.psan.then(|| Arc::new(PsanCell::new(self.line_size))),
                tlabel: AtomicU32::new(pstack_telemetry::intern("region")),
                crashed: AtomicBool::new(false),
                crash_stamp: AtomicU64::new(0),
                stats: MemStats::default(),
                state: FairMutex::new(State {
                    image,
                    dirty: HashMap::new(),
                    backend,
                    fail: FailState::default(),
                    flights: FlightState::default(),
                }),
                gate: MutatorGate::new(),
            }),
        }
    }
}

struct State {
    image: Vec<u8>,
    /// Volatile cache: line index → full line content.
    dirty: HashMap<usize, Vec<u8>>,
    backend: Box<dyn Backend>,
    fail: FailState,
    flights: FlightState,
}

/// One asynchronous flush command in flight: the line snapshots it
/// promised to make durable and the wall-clock deadline at which the
/// emulated device completes it (`None` with no configured
/// [`PMemBuilder::flush_latency`] — completes on the next touch).
struct Flight {
    serial: u64,
    deadline: Option<std::time::Instant>,
    lines: Vec<(usize, Vec<u8>)>,
}

/// The region's asynchronous flush queue (see [`PMem::flush_async`]).
/// There is no device thread: completions are applied lazily by the
/// application threads that await, fence or synchronously flush, once
/// a flight's deadline has passed — which keeps seeded campaign
/// executions deterministic.
#[derive(Default)]
struct FlightState {
    /// Serial of the most recently issued flight.
    issued: u64,
    /// Serial of the most recently applied (completed) flight.
    completed: u64,
    queue: VecDeque<Flight>,
    /// Line index → serial of the in-flight flight holding its current
    /// snapshot. Cleared when the line is re-dirtied (the snapshot is
    /// stale) or persisted synchronously (the fresher persist subsumes
    /// the promise).
    staged: HashMap<usize, u64>,
}

/// Claim ticket for an asynchronous flush issued with
/// [`PMem::flush_async`]. The round-trip is in flight on the region's
/// flush queue; [`PMem::await_ticket`] (or a [`PMem::fence`], or a
/// synchronous flush covering the same lines) blocks until the staged
/// content is durable. Cheap value type, bound to the issuing region
/// boot — awaiting it against another region or a reopened boot is an
/// error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushTicket {
    /// Identity of the issuing region boot.
    region: usize,
    /// Flush-queue serial this ticket waits for.
    serial: u64,
}

struct Inner {
    len: usize,
    line_size: usize,
    eager_flush: bool,
    jitter: Option<Jitter>,
    persist_delay: Option<std::time::Duration>,
    flush_latency: Option<std::time::Duration>,
    /// PSan shadow memory; shared (`Arc`) across reopen boots so ghosts
    /// and violations outlive crashes. `None` unless enabled.
    psan: Option<Arc<PsanCell>>,
    /// Interned telemetry label naming this region in recorded persist
    /// and crash events (0 = the generic "region" label).
    tlabel: AtomicU32,
    crashed: AtomicBool,
    /// Position of this region's death on the process-wide crash clock
    /// (0 = never crashed this boot). See [`PMem::crash_stamp`].
    crash_stamp: AtomicU64,
    stats: MemStats,
    state: FairMutex<State>,
    /// Region-scoped mutator/quiesce gate (see [`PMem::mutator_enter`]
    /// and [`PMem::quiesce`]); never taken by `PMem` itself.
    gate: MutatorGate,
}

/// Process-wide monotonic clock of crash observations: every region
/// death draws the next tick, so near-simultaneous multi-region
/// failures stay totally ordered by who observed its crash first.
static CRASH_CLOCK: AtomicU64 = AtomicU64::new(0);

/// The region's volatile mutator/quiesce gate: lock-free mutators
/// register while they run the reserve → persist → publish hot path;
/// exclusive sections (group commits, compaction) close the gate and
/// wait the registered epoch out. Shared by every handle on the region
/// (clones and independent opens); purely volatile, reset on reopen.
struct MutatorGate {
    state: StdMutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    /// Lock-free mutators currently inside the hot path.
    active: u64,
    /// `true` while an exclusive section holds the gate closed.
    exclusive: bool,
    /// Bumped on every mutator registration — the per-region epoch
    /// counter exclusive sections wait out.
    epoch: u64,
}

impl MutatorGate {
    fn new() -> Self {
        MutatorGate {
            state: StdMutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state.lock().expect("mutator gate poisoned")
    }
}

/// RAII registration of one lock-free mutator (see
/// [`PMem::mutator_enter`]). Dropping it deregisters the mutator and
/// wakes any exclusive section waiting for the region to quiesce.
pub struct MutatorGuard<'a> {
    gate: &'a MutatorGate,
}

impl Drop for MutatorGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.lock();
        st.active -= 1;
        if st.active == 0 {
            self.gate.cv.notify_all();
        }
    }
}

/// RAII exclusive section (see [`PMem::quiesce`]): while it lives, no
/// lock-free mutator is registered on the region and none can enter.
/// Dropping it reopens the gate.
pub struct QuiesceGuard<'a> {
    gate: &'a MutatorGate,
}

impl Drop for QuiesceGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.lock();
        st.exclusive = false;
        drop(st);
        self.gate.cv.notify_all();
    }
}

/// Handle to an emulated NVRAM region. Cheap to clone; all clones refer
/// to the same region.
///
/// See the [crate-level documentation](crate) for the memory model and a
/// usage example.
#[derive(Clone)]
pub struct PMem {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for PMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PMem")
            .field("len", &self.inner.len)
            .field("line_size", &self.inner.line_size)
            .field("eager_flush", &self.inner.eager_flush)
            .field("crashed", &self.inner.crashed.load(Ordering::Relaxed))
            .finish()
    }
}

impl PMem {
    /// Region length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Returns `true` if the region has zero length (never happens for
    /// regions built through [`PMemBuilder`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Cache-line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.inner.line_size
    }

    /// `true` if every write is immediately made durable (§5 mode).
    #[must_use]
    pub fn is_eager_flush(&self) -> bool {
        self.inner.eager_flush
    }

    /// Live statistics counters for this boot of the region.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.inner.stats
    }

    /// Registers the calling thread as a **lock-free mutator** on this
    /// region for the lifetime of the returned guard. `PMem` never
    /// registers itself; the gate exists so cooperating writers running
    /// a multi-access lock-free protocol (e.g. the KV store's
    /// reserve → persist → publish hot path) can be *machine-checked*
    /// against exclusive sections: while any mutator is registered,
    /// [`PMem::quiesce`] blocks, and while an exclusive section holds
    /// the gate, this call blocks. Any number of handles opened from
    /// the same region share the gate — clones and independent opens.
    /// Purely volatile: not part of the persistent image, reset on
    /// reopen. Re-registering from the same thread while it already
    /// holds a guard is fine; holding a guard across a call to
    /// [`PMem::quiesce`] on the same thread deadlocks.
    pub fn mutator_enter(&self) -> MutatorGuard<'_> {
        let gate = &self.inner.gate;
        let mut st = gate.lock();
        while st.exclusive {
            st = gate.cv.wait(st).expect("mutator gate poisoned");
        }
        st.active += 1;
        st.epoch += 1;
        MutatorGuard { gate }
    }

    /// Closes the region's mutator gate and waits the current epoch
    /// out: when this returns, **no** lock-free mutator is registered
    /// and none can register until the guard drops. Exclusive sections
    /// (group commits, compaction) serialize with each other through
    /// the same gate. This is the machine-checked replacement for the
    /// old caller-promised advisory-lock quiescence discipline.
    pub fn quiesce(&self) -> QuiesceGuard<'_> {
        let gate = &self.inner.gate;
        let mut st = gate.lock();
        while st.exclusive {
            st = gate.cv.wait(st).expect("mutator gate poisoned");
        }
        st.exclusive = true;
        while st.active > 0 {
            st = gate.cv.wait(st).expect("mutator gate poisoned");
        }
        QuiesceGuard { gate }
    }

    /// Number of lock-free mutators currently registered on the region.
    #[must_use]
    pub fn active_mutators(&self) -> u64 {
        self.inner.gate.lock().active
    }

    /// The region's mutator epoch: bumped on every
    /// [`PMem::mutator_enter`]. An unchanged epoch across an interval
    /// proves no mutator entered in between.
    #[must_use]
    pub fn mutator_epoch(&self) -> u64 {
        self.inner.gate.lock().epoch
    }

    /// `true` once a crash has been injected and until [`PMem::reopen`].
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.inner.crashed.load(Ordering::SeqCst)
    }

    /// This region's position on the process-wide crash clock: every
    /// region death draws the next monotonic tick, so when several
    /// regions die in one window the *first observer* carries the
    /// smallest stamp. `None` until the region crashes; reset by
    /// [`PMem::reopen`].
    #[must_use]
    pub fn crash_stamp(&self) -> Option<u64> {
        match self.inner.crash_stamp.load(Ordering::SeqCst) {
            0 => None,
            stamp => Some(stamp),
        }
    }

    /// Which durable backend the region uses.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.state.lock().backend.kind()
    }

    /// Total persistence events (writes, per-line persists, CAS) since
    /// this handle's boot. Used by crash-point enumeration.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.inner.state.lock().fail.events
    }

    /// Arms a crash-injection plan. The crash fires during the operation
    /// that performs the `countdown + 1`-th next persistence event.
    pub fn arm_failpoint(&self, plan: FailPlan) {
        self.inner.state.lock().fail.arm(plan);
    }

    /// Removes any armed crash-injection plan.
    pub fn disarm_failpoint(&self) {
        self.inner.state.lock().fail.disarm();
    }

    /// Returns `true` if a crash-injection plan is armed.
    #[must_use]
    pub fn failpoint_armed(&self) -> bool {
        self.inner.state.lock().fail.armed()
    }

    fn check_alive(&self) -> Result<(), MemError> {
        if self.is_crashed() {
            Err(MemError::Crashed)
        } else {
            Ok(())
        }
    }

    fn check_bounds(&self, off: POffset, len: usize) -> Result<(), MemError> {
        if off.is_null() {
            return Err(MemError::OutOfBounds {
                offset: u64::MAX,
                len,
                region_len: self.inner.len,
            });
        }
        let end = off.get().checked_add(len as u64);
        match end {
            Some(end) if end <= self.inner.len as u64 => Ok(()),
            _ => Err(MemError::OutOfBounds {
                offset: off.get(),
                len,
                region_len: self.inner.len,
            }),
        }
    }

    /// Registers a persistence event; crashes in place when a plan fires.
    fn on_event(&self, st: &mut State) -> Result<(), MemError> {
        if let Some(plan) = st.fail.on_event() {
            self.crash_locked(st, plan.survivor_seed, plan.survival_prob);
            return Err(MemError::Crashed);
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `off`, seeing the volatile cache over
    /// the persistent image (a running program always sees its own
    /// writes, flushed or not).
    ///
    /// # Errors
    ///
    /// [`MemError::Crashed`] after a crash; [`MemError::OutOfBounds`]
    /// for accesses past the region end.
    pub fn read(&self, off: POffset, buf: &mut [u8]) -> Result<(), MemError> {
        self.check_alive()?;
        self.check_bounds(off, buf.len())?;
        let st = self.inner.state.lock();
        self.compose_read(&st, off.as_usize(), buf);
        MemStats::bump(&self.inner.stats.reads);
        if let Some(psan) = &self.inner.psan {
            psan.note_read(off.get(), buf.len(), st.fail.events);
        }
        Ok(())
    }

    fn compose_read(&self, st: &State, start: usize, buf: &mut [u8]) {
        buf.copy_from_slice(&st.image[start..start + buf.len()]);
        if st.dirty.is_empty() {
            return;
        }
        let line = self.inner.line_size;
        let first_line = start / line;
        let last_line = (start + buf.len().max(1) - 1) / line;
        for li in first_line..=last_line {
            if let Some(content) = st.dirty.get(&li) {
                let line_start = li * line;
                let copy_from = start.max(line_start);
                let copy_to = (start + buf.len()).min(line_start + line);
                if copy_from < copy_to {
                    buf[copy_from - start..copy_to - start]
                        .copy_from_slice(&content[copy_from - line_start..copy_to - line_start]);
                }
            }
        }
    }

    /// Writes `data` at `off` into the volatile cache. The data is *not*
    /// durable until the covering lines are flushed (unless the region
    /// was built with [`PMemBuilder::eager_flush`]).
    ///
    /// # Errors
    ///
    /// [`MemError::Crashed`] after a crash (including one injected by an
    /// armed fail-point during this very call, in which case the write
    /// does **not** take effect); [`MemError::OutOfBounds`] past the end.
    pub fn write(&self, off: POffset, data: &[u8]) -> Result<(), MemError> {
        self.check_alive()?;
        self.check_bounds(off, data.len())?;
        let mut round_trip = None;
        {
            let mut st = self.inner.state.lock();
            self.on_event(&mut st)?;
            self.write_locked(&mut st, off.as_usize(), data);
            MemStats::bump(&self.inner.stats.writes);
            MemStats::add(&self.inner.stats.bytes_written, data.len() as u64);
            if let Some(psan) = &self.inner.psan {
                psan.note_write(off.get(), data.len(), st.fail.events);
            }
            if self.inner.eager_flush {
                let probe = pstack_telemetry::persist_probe();
                // Eager regions never hold staged flights (nothing stays
                // dirty), so the covering serial is always `None`.
                let (persisted, _) =
                    self.persist_range_locked(&mut st, off.as_usize(), data.len())?;
                round_trip = Some((probe, persisted));
            }
        }
        if let Some((probe, persisted)) = round_trip {
            self.settle_round_trip(probe, persisted);
        }
        self.maybe_jitter();
        Ok(())
    }

    /// With jitter configured, occasionally parks the calling thread
    /// until other threads have advanced the global event counter — the
    /// moral equivalent of the OS descheduling it right after a
    /// persistence operation. Never called with the region lock held.
    fn maybe_jitter(&self) {
        if let Some(j) = self.inner.jitter {
            let mut rng = rand::rng();
            if !rng.random_bool(j.prob) {
                return;
            }
            let target = self.events() + j.pause_events;
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(5);
            while self.events() < target
                && !self.is_crashed()
                && std::time::Instant::now() < deadline
            {
                std::thread::yield_now();
            }
        }
    }

    fn write_locked(&self, st: &mut State, start: usize, data: &[u8]) {
        let line = self.inner.line_size;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = start + pos;
            let li = abs / line;
            let line_start = li * line;
            let within = abs - line_start;
            let n = (line - within).min(data.len() - pos);
            if !st.flights.staged.is_empty() {
                // Re-dirtying a line staged in an in-flight async flush:
                // the flight's snapshot is stale, so later flushes of
                // this line must persist anew instead of riding it.
                st.flights.staged.remove(&li);
            }
            let image = &st.image;
            let content = st
                .dirty
                .entry(li)
                .or_insert_with(|| image[line_start..line_start + line].to_vec());
            content[within..within + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    /// Flushes the cache lines covering `[off, off + len)` to durable
    /// storage, one line at a time. Each line persists atomically; a
    /// crash injected mid-call persists a prefix of the lines only —
    /// this is the partial-flush hazard of Fig. 5 in the paper.
    ///
    /// # Errors
    ///
    /// [`MemError::Crashed`], [`MemError::OutOfBounds`], or an I/O error
    /// from the write-through backend.
    pub fn flush(&self, off: POffset, len: usize) -> Result<(), MemError> {
        self.check_alive()?;
        self.check_bounds(off, len)?;
        // Telemetry round-trip timer: a no-op unless recording (and
        // compiled away entirely without the `telemetry` feature).
        let probe = pstack_telemetry::persist_probe();
        let (persisted, covering) = {
            let mut st = self.inner.state.lock();
            MemStats::bump(&self.inner.stats.flush_calls);
            self.persist_range_locked(&mut st, off.as_usize(), len)?
        };
        self.settle_round_trip(probe, persisted);
        if let Some(serial) = covering {
            // Lines elided because an in-flight async flush already
            // carries their snapshot: synchronous semantics ("durable
            // on return") still hold — by awaiting that flight.
            self.await_serial(serial)?;
        }
        self.maybe_jitter();
        Ok(())
    }

    /// The locked half of a persist round-trip: drains the dirty lines
    /// covering the range into the backend and returns how many lines
    /// persisted, plus the youngest in-flight async flush whose staged
    /// snapshot made a covered line elidable (the caller must await it
    /// to keep synchronous durability semantics). The per-round-trip
    /// device latency is paid by [`PMem::settle_round_trip`] **after**
    /// the region lock is released, so concurrent mutators' round-trips
    /// on one region overlap (a queued-command device: the data is
    /// durable when the command is accepted here; the latency is the
    /// completion wait).
    fn persist_range_locked(
        &self,
        st: &mut State,
        start: usize,
        len: usize,
    ) -> Result<(u64, Option<u64>), MemError> {
        if len == 0 {
            return Ok((0, None));
        }
        let line = self.inner.line_size;
        let first = start / line;
        let last = (start + len - 1) / line;
        let mut persisted = 0u64;
        let mut covering: Option<u64> = None;
        for li in first..=last {
            // In eager mode the write that queued this line already
            // counted as the persistence event; per-line events would
            // make "between write and its own flush" crash points
            // expressible, which cache-less hardware precludes.
            if !self.inner.eager_flush {
                self.on_event(st).inspect_err(|_| {
                    Self::note_persist(&self.inner.stats, persisted);
                })?;
            }
            if let Some(&serial) = st.flights.staged.get(&li) {
                // The line is staged in an in-flight async flush and has
                // not been re-dirtied since: the flight's snapshot is
                // current, so this persist is elided (FliT-style
                // per-line durable tracking) and the caller awaits the
                // flight instead.
                MemStats::bump(&self.inner.stats.elided_lines);
                covering = Some(covering.map_or(serial, |c: u64| c.max(serial)));
                continue;
            }
            if let Some(content) = st.dirty.remove(&li) {
                let line_start = li * line;
                st.image[line_start..line_start + line].copy_from_slice(&content);
                // A backend failure still ends the round-trip: account
                // the lines persisted so far, like the crash path above.
                st.backend
                    .persist_line(line_start, &content)
                    .inspect_err(|_| {
                        Self::note_persist(&self.inner.stats, persisted);
                    })?;
                MemStats::bump(&self.inner.stats.lines_persisted);
                if let Some(psan) = &self.inner.psan {
                    psan.note_persist_line(li, st.fail.events);
                }
                if !st.flights.queue.is_empty() {
                    // This fresher persist subsumes any queued snapshot
                    // of the line: drop it so a completing flight can
                    // never roll the backend back.
                    for f in &mut st.flights.queue {
                        f.lines.retain(|(l, _)| *l != li);
                    }
                }
                persisted += 1;
                if let Some(delay) = self.inner.persist_delay {
                    // Slow device: the delay is paid with the region
                    // locked, serializing persists like one spindle.
                    std::thread::sleep(delay);
                }
            }
        }
        Self::note_persist(&self.inner.stats, persisted);
        if persisted == 0 && covering.is_none() {
            // A non-empty flush that persisted nothing: every covered
            // line was already durable. Diagnostic, not a violation.
            MemStats::bump(&self.inner.stats.redundant_persists);
        }
        if let Some(psan) = &self.inner.psan {
            // The round-trip completed: everything it copied out is
            // now ordered, i.e. durable.
            psan.note_flush_complete(st.fail.events);
        }
        Ok((persisted, covering))
    }

    /// The unlocked half of a persist round-trip: pays the emulated
    /// per-round-trip device latency and records the telemetry probe.
    /// Called with the region lock released — round-trips issued by
    /// concurrent threads on the same region wait out their latency in
    /// parallel, which is what lets a single hot shard scale with
    /// mutator threads.
    fn settle_round_trip(&self, probe: pstack_telemetry::PersistProbe, persisted: u64) {
        if persisted > 0 {
            if let Some(latency) = self.inner.flush_latency {
                std::thread::sleep(latency);
            }
        }
        // Recorded after the emulated device latency so span/persist
        // durations reflect the cost the caller actually paid.
        probe.record(
            self.inner.tlabel.load(Ordering::Relaxed),
            persisted as usize,
        );
    }

    /// Issues an **asynchronous flush** of the lines covering
    /// `[off, off + len)`: the round-trip is queued on the region's
    /// flush queue with its device latency charged off-thread, and the
    /// returned [`FlushTicket`] is awaited — with [`PMem::await_ticket`],
    /// a [`PMem::fence`], or any synchronous flush over the same lines —
    /// at the point that needs durability, typically right before a
    /// commit-point CAS or root swap. Work done between issue and await
    /// overlaps the round-trip; that overlap is the pipeline win.
    ///
    /// Dirty lines are snapshotted at issue time: once awaited, the
    /// ticket guarantees the content *as of this call* is durable, even
    /// if the lines are re-dirtied in between. A covered line already
    /// staged by an earlier un-completed ticket (and not re-dirtied
    /// since) is elided — the returned ticket rides the earlier flight.
    /// A call whose every covered line is clean or already staged
    /// elides the whole round-trip (counted in `redundant_persists`).
    /// Covered lines consume persistence events exactly like a
    /// synchronous flush, so crash-point enumeration sees the same
    /// event stream; a crash with the flight still queued keeps only
    /// completed flights durable (staged lines take the survivor
    /// lottery like any other dirty line).
    ///
    /// # Errors
    ///
    /// [`MemError::Crashed`] (including a fail-point firing on a
    /// covered line's event) or [`MemError::OutOfBounds`].
    pub fn flush_async(&self, off: POffset, len: usize) -> Result<FlushTicket, MemError> {
        self.check_alive()?;
        self.check_bounds(off, len)?;
        let _issue = pstack_telemetry::span("flush.issue");
        let region = Arc::as_ptr(&self.inner) as usize;
        let mut st = self.inner.state.lock();
        MemStats::bump(&self.inner.stats.flush_calls);
        if len == 0 {
            let serial = st.flights.completed;
            return Ok(FlushTicket { region, serial });
        }
        let line = self.inner.line_size;
        let first = off.as_usize() / line;
        let last = (off.as_usize() + len - 1) / line;
        let serial = st.flights.issued + 1;
        let mut lines = Vec::new();
        let mut covering: Option<u64> = None;
        for li in first..=last {
            if !self.inner.eager_flush {
                self.on_event(&mut st)?;
            }
            if let Some(&s) = st.flights.staged.get(&li) {
                MemStats::bump(&self.inner.stats.elided_lines);
                covering = Some(covering.map_or(s, |c: u64| c.max(s)));
                continue;
            }
            if let Some(content) = st.dirty.get(&li) {
                lines.push((li, content.clone()));
                st.flights.staged.insert(li, serial);
                if let Some(psan) = &self.inner.psan {
                    psan.note_persist_line_ticket(li, serial, st.fail.events);
                }
            }
        }
        if lines.is_empty() {
            // Nothing newly staged: the round-trip is elided outright.
            // The ticket resolves to the youngest flight still carrying
            // a covered line, or to "already complete".
            MemStats::bump(&self.inner.stats.redundant_persists);
            let serial = covering.unwrap_or(st.flights.completed);
            return Ok(FlushTicket { region, serial });
        }
        st.flights.issued = serial;
        let deadline = match self.inner.flush_latency {
            Some(latency) => {
                MemStats::add(
                    &self.inner.stats.async_latency_charged_ns,
                    latency.as_nanos() as u64,
                );
                Some(std::time::Instant::now() + latency)
            }
            None => None,
        };
        st.flights.queue.push_back(Flight {
            serial,
            deadline,
            lines,
        });
        MemStats::bump(&self.inner.stats.async_flushes);
        Ok(FlushTicket { region, serial })
    }

    /// Blocks until the flush issued as `ticket` completed, applying
    /// its staged snapshots (and those of every older flight) to
    /// durable storage. Returns immediately for tickets already
    /// completed or fully elided at issue.
    ///
    /// # Errors
    ///
    /// [`MemError::Crashed`] if the region crashed with the flight
    /// still queued — its staged lines kept only their crash-lottery
    /// outcome, so recovery sees exactly the completed-ticket prefix —
    /// and [`MemError::InvalidConfig`] for a ticket from a different
    /// region or an earlier boot.
    pub fn await_ticket(&self, ticket: &FlushTicket) -> Result<(), MemError> {
        if ticket.region != Arc::as_ptr(&self.inner) as usize {
            return Err(MemError::InvalidConfig(
                "flush ticket belongs to a different region or boot".into(),
            ));
        }
        self.await_serial(ticket.serial)
    }

    /// Completes every queued flight up to `serial`: sleeps out the
    /// youngest covered deadline with the region lock released (so
    /// concurrent awaits — and round-trips on other regions — overlap),
    /// then applies the snapshots under the lock.
    fn await_serial(&self, serial: u64) -> Result<(), MemError> {
        let deadline = {
            let st = self.inner.state.lock();
            if st.flights.completed >= serial {
                return Ok(());
            }
            if self.is_crashed() {
                return Err(MemError::Crashed);
            }
            st.flights
                .queue
                .iter()
                .take_while(|f| f.serial <= serial)
                .filter_map(|f| f.deadline)
                .last()
        };
        let _await = pstack_telemetry::span("flush.await");
        let probe = pstack_telemetry::persist_probe();
        if let Some(d) = deadline {
            let now = std::time::Instant::now();
            if d > now {
                let wait = d - now;
                std::thread::sleep(wait);
                MemStats::add(
                    &self.inner.stats.async_latency_waited_ns,
                    wait.as_nanos() as u64,
                );
            }
        }
        let persisted = {
            let mut st = self.inner.state.lock();
            if self.is_crashed() {
                return Err(MemError::Crashed);
            }
            let mut persisted = 0u64;
            while st.flights.queue.front().is_some_and(|f| f.serial <= serial) {
                let flight = st.flights.queue.pop_front().expect("checked front");
                persisted += self.apply_flight(&mut st, flight)?;
            }
            persisted
        };
        probe.record(
            self.inner.tlabel.load(Ordering::Relaxed),
            persisted as usize,
        );
        Ok(())
    }

    /// Applies one completed flight: copies its snapshots into the
    /// image and the backend, retires their staged markers, and
    /// promotes the ticket's shadow lines. Consumes no persistence
    /// events — those were charged at issue.
    fn apply_flight(&self, st: &mut State, flight: Flight) -> Result<u64, MemError> {
        let line = self.inner.line_size;
        let batch: Vec<(usize, &[u8])> = flight
            .lines
            .iter()
            .map(|(li, content)| (li * line, content.as_slice()))
            .collect();
        st.backend.persist_lines(&batch)?;
        let mut persisted = 0u64;
        for (li, content) in &flight.lines {
            let line_start = li * line;
            st.image[line_start..line_start + line].copy_from_slice(content);
            MemStats::bump(&self.inner.stats.lines_persisted);
            persisted += 1;
            if st.flights.staged.get(li) == Some(&flight.serial) {
                // Not re-dirtied since issue: the snapshot is the live
                // content, so the cache entry retires with the marker.
                st.flights.staged.remove(li);
                st.dirty.remove(li);
            }
        }
        Self::note_persist(&self.inner.stats, persisted);
        st.flights.completed = flight.serial;
        if let Some(psan) = &self.inner.psan {
            psan.note_ticket_complete(flight.serial, st.fail.events);
        }
        Ok(persisted)
    }

    /// Number of asynchronous flushes issued but not yet completed
    /// (flights still on the queue). Crash campaigns use this to prove
    /// kills land while flushes are in flight.
    #[must_use]
    pub fn inflight_tickets(&self) -> u64 {
        self.inner.state.lock().flights.queue.len() as u64
    }

    /// Accounts one persist round-trip that made `lines` lines durable:
    /// `persists` counts the round-trip, `coalesced_lines` the lines
    /// amortized beyond the first.
    fn note_persist(stats: &MemStats, lines: u64) {
        if lines > 0 {
            MemStats::bump(&stats.persists);
            MemStats::add(&stats.coalesced_lines, lines - 1);
        }
    }

    /// Writes and immediately flushes — the common "persist this value
    /// now" idiom of the paper's protocols.
    ///
    /// # Errors
    ///
    /// Same as [`PMem::write`] and [`PMem::flush`].
    pub fn write_persist(&self, off: POffset, data: &[u8]) -> Result<(), MemError> {
        self.write(off, data)?;
        self.flush(off, data.len())
    }

    /// Persistence fence: completes every in-flight asynchronous flush
    /// (the strongest await), then records the `sfence`-style marker
    /// (under PSan it additionally orders any lines still in the
    /// `Flushed` shadow state). Errors from draining — a crashed
    /// region — are swallowed to keep the infallible signature; the
    /// crash surfaces on the next access.
    pub fn fence(&self) {
        let target = self.inner.state.lock().flights.issued;
        let _ = self.await_serial(target);
        MemStats::bump(&self.inner.stats.fences);
        pstack_telemetry::fence_event(self.inner.tlabel.load(Ordering::Relaxed));
        if let Some(psan) = &self.inner.psan {
            psan.note_fence(self.events());
        }
    }

    /// Atomic compare-exchange on `expected.len()` bytes at `off`,
    /// modelling a hardware CAS: it acts on the *cached* value and its
    /// result still needs a flush to become durable.
    ///
    /// Returns `true` (and installs `new`) if the current content equals
    /// `expected`.
    ///
    /// # Errors
    ///
    /// [`MemError::Crashed`] or [`MemError::OutOfBounds`].
    ///
    /// # Panics
    ///
    /// Panics if `expected` and `new` have different lengths.
    pub fn compare_exchange(
        &self,
        off: POffset,
        expected: &[u8],
        new: &[u8],
    ) -> Result<bool, MemError> {
        assert_eq!(
            expected.len(),
            new.len(),
            "compare_exchange operands must have equal lengths"
        );
        self.check_alive()?;
        self.check_bounds(off, expected.len())?;
        let mut st = self.inner.state.lock();
        self.on_event(&mut st)?;
        MemStats::bump(&self.inner.stats.cas_ops);
        let mut current = vec![0u8; expected.len()];
        self.compose_read(&st, off.as_usize(), &mut current);
        if current != expected {
            return Ok(false);
        }
        self.write_locked(&mut st, off.as_usize(), new);
        MemStats::bump(&self.inner.stats.writes);
        MemStats::add(&self.inner.stats.bytes_written, new.len() as u64);
        if let Some(psan) = &self.inner.psan {
            psan.note_write(off.get(), new.len(), st.fail.events);
            // A successful CAS in a registered publish range makes its
            // new value reachable: early-publish check on the target.
            psan.note_cas_publish(off.get(), new, st.fail.events);
        }
        if self.inner.eager_flush {
            let probe = pstack_telemetry::persist_probe();
            let (persisted, _) = self.persist_range_locked(&mut st, off.as_usize(), new.len())?;
            drop(st);
            self.settle_round_trip(probe, persisted);
        } else {
            drop(st);
        }
        self.maybe_jitter();
        Ok(true)
    }

    /// Atomic read-modify-write of the `u64` at `off` via a CAS-retry
    /// loop — the fetch-add-style primitive lock-free reservation
    /// protocols build on. `f` maps the current value to the desired
    /// new one; returning `None` aborts. Returns `Ok(previous)` when an
    /// update was installed and `Err(current)` when `f` declined.
    ///
    /// The update is volatile like any CAS: its durability still takes
    /// a flush of the covering line.
    ///
    /// # Errors
    ///
    /// [`MemError::Crashed`] or [`MemError::OutOfBounds`].
    #[allow(clippy::missing_panics_doc)] // read_u64's slice conversion cannot fail
    pub fn fetch_update<F>(&self, off: POffset, mut f: F) -> Result<Result<u64, u64>, MemError>
    where
        F: FnMut(u64) -> Option<u64>,
    {
        loop {
            let current = self.read_u64(off)?;
            let Some(new) = f(current) else {
                return Ok(Err(current));
            };
            if self.compare_exchange(off, &current.to_le_bytes(), &new.to_le_bytes())? {
                return Ok(Ok(current));
            }
        }
    }

    /// Injects a crash: each dirty line independently survives (is
    /// persisted) with probability `survival_prob`, decided
    /// deterministically from `seed`; all other dirty lines are lost.
    /// Afterwards every access fails until [`PMem::reopen`].
    ///
    /// Calling this on an already-crashed region is a no-op.
    pub fn crash_now(&self, seed: u64, survival_prob: f64) {
        if self.is_crashed() {
            return;
        }
        let mut st = self.inner.state.lock();
        self.crash_locked(&mut st, seed, survival_prob);
    }

    fn crash_locked(&self, st: &mut State, seed: u64, survival_prob: f64) {
        self.inner.crashed.store(true, Ordering::SeqCst);
        // First observation wins the stamp: a region that somehow dies
        // twice in one boot keeps its original position on the clock.
        let _ = self.inner.crash_stamp.compare_exchange(
            0,
            CRASH_CLOCK.fetch_add(1, Ordering::SeqCst) + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        st.fail.disarm();
        MemStats::bump(&self.inner.stats.crashes);
        let line = self.inner.line_size;
        let mut lines: Vec<usize> = st.dirty.keys().copied().collect();
        lines.sort_unstable();
        let mut outcomes = Vec::with_capacity(lines.len());
        for li in lines {
            let survives = if survival_prob <= 0.0 {
                false
            } else if survival_prob >= 1.0 {
                true
            } else {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (li as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                rng.random_bool(survival_prob)
            };
            let content = st.dirty.remove(&li).expect("line listed as dirty");
            if survives {
                let line_start = li * line;
                st.image[line_start..line_start + line].copy_from_slice(&content);
                // Write-through failures during a crash are ignored: the
                // crash wins, and the image stays authoritative for the
                // in-process reopen path.
                let _ = st.backend.persist_line(line_start, &content);
                MemStats::bump(&self.inner.stats.lines_persisted);
            }
            outcomes.push((li, survives));
        }
        st.dirty.clear();
        // Un-completed flights die with the cache: their staged lines
        // just took the lottery above (so recovery sees exactly the
        // completed-ticket prefix, plus any lucky survivors), and
        // pending tickets fail their await with `Crashed`.
        st.flights.queue.clear();
        st.flights.staged.clear();
        pstack_telemetry::crash(self.inner.tlabel.load(Ordering::Relaxed), st.fail.events);
        if let Some(psan) = &self.inner.psan {
            // Dropped lines revert to their durable content (shadow
            // forgets them); lucky survivors' bytes become ghosts.
            psan.note_crash(&outcomes, st.fail.events);
        }
    }

    /// Reopens a crashed region, as the recovery boot of the system
    /// would: the persistent image survives, the volatile cache is
    /// empty, statistics start from zero, and no fail plan is armed.
    ///
    /// For file-backed regions the image is re-read from the file, so
    /// the returned handle sees exactly what a new process would see.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] if the region has not
    /// crashed, or an I/O error when re-reading a file backend.
    pub fn reopen(&self) -> Result<PMem, MemError> {
        if !self.is_crashed() {
            return Err(MemError::InvalidConfig(
                "reopen requires a crashed region; call crash_now first".into(),
            ));
        }
        let mut st = self.inner.state.lock();
        let mut backend = std::mem::replace(&mut st.backend, Box::new(MemBackend));
        let mut image = std::mem::take(&mut st.image);
        if let BackendKind::File(_) = backend.kind() {
            image = vec![0u8; self.inner.len];
            backend.load(&mut image)?;
        }
        Ok(PMem {
            inner: Arc::new(Inner {
                len: self.inner.len,
                line_size: self.inner.line_size,
                eager_flush: self.inner.eager_flush,
                jitter: self.inner.jitter,
                persist_delay: self.inner.persist_delay,
                flush_latency: self.inner.flush_latency,
                psan: self.inner.psan.clone(),
                tlabel: AtomicU32::new(self.inner.tlabel.load(Ordering::Relaxed)),
                gate: MutatorGate::new(),
                crashed: AtomicBool::new(false),
                crash_stamp: AtomicU64::new(0),
                stats: MemStats::default(),
                state: FairMutex::new(State {
                    image,
                    dirty: HashMap::new(),
                    backend,
                    fail: FailState::default(),
                    flights: FlightState::default(),
                }),
            }),
        })
    }

    // ---- typed helpers ------------------------------------------------

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Same as [`PMem::read`].
    pub fn read_u8(&self, off: POffset) -> Result<u8, MemError> {
        let mut b = [0u8; 1];
        self.read(off, &mut b)?;
        Ok(b[0])
    }

    /// Writes one byte (volatile until flushed).
    ///
    /// # Errors
    ///
    /// Same as [`PMem::write`].
    pub fn write_u8(&self, off: POffset, v: u8) -> Result<(), MemError> {
        self.write(off, &[v])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Same as [`PMem::read`].
    pub fn read_u32(&self, off: POffset) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read(off, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32` (volatile until flushed).
    ///
    /// # Errors
    ///
    /// Same as [`PMem::write`].
    pub fn write_u32(&self, off: POffset, v: u32) -> Result<(), MemError> {
        self.write(off, &v.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Same as [`PMem::read`].
    pub fn read_u64(&self, off: POffset) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read(off, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` (volatile until flushed).
    ///
    /// # Errors
    ///
    /// Same as [`PMem::write`].
    pub fn write_u64(&self, off: POffset, v: u64) -> Result<(), MemError> {
        self.write(off, &v.to_le_bytes())
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Same as [`PMem::read`].
    pub fn read_i64(&self, off: POffset) -> Result<i64, MemError> {
        let mut b = [0u8; 8];
        self.read(off, &mut b)?;
        Ok(i64::from_le_bytes(b))
    }

    /// Writes a little-endian `i64` (volatile until flushed).
    ///
    /// # Errors
    ///
    /// Same as [`PMem::write`].
    pub fn write_i64(&self, off: POffset, v: i64) -> Result<(), MemError> {
        self.write(off, &v.to_le_bytes())
    }

    /// Reads `len` bytes into a freshly allocated vector.
    ///
    /// # Errors
    ///
    /// Same as [`PMem::read`].
    pub fn read_vec(&self, off: POffset, len: usize) -> Result<Vec<u8>, MemError> {
        let mut v = vec![0u8; len];
        self.read(off, &mut v)?;
        Ok(v)
    }

    /// Writes `len` copies of `byte` (volatile until flushed).
    ///
    /// # Errors
    ///
    /// Same as [`PMem::write`].
    pub fn fill(&self, off: POffset, byte: u8, len: usize) -> Result<(), MemError> {
        self.write(off, &vec![byte; len])
    }

    // ---- PSan (persist-order sanitizer) -------------------------------
    //
    // All of these are no-ops unless the region was built with
    // [`PMemBuilder::psan`]; application layers call them
    // unconditionally.

    /// `true` if PSan shadows this region.
    #[must_use]
    pub fn psan_enabled(&self) -> bool {
        self.inner.psan.is_some()
    }

    /// Names the region in PSan violation reports (e.g. `"shard-3"`).
    pub fn psan_set_label(&self, label: &str) {
        if let Some(psan) = &self.inner.psan {
            psan.set_label(label);
        }
    }

    /// Names the region in telemetry traces (persist round-trips,
    /// crash events). Survives [`PMem::reopen`] like the PSan label;
    /// a no-op when the flight recorder is compiled out.
    pub fn telemetry_set_label(&self, label: &str) {
        self.inner
            .tlabel
            .store(pstack_telemetry::intern(label), Ordering::Relaxed);
    }

    /// The interned telemetry label id for this region (for layers
    /// that record region-scoped events themselves, e.g. flush-epoch
    /// bumps).
    #[must_use]
    pub fn telemetry_label_id(&self) -> u32 {
        self.inner.tlabel.load(Ordering::Relaxed)
    }

    /// The region's PSan report label, if PSan is enabled.
    #[must_use]
    pub fn psan_label(&self) -> Option<String> {
        self.inner.psan.as_ref().map(|p| p.label())
    }

    /// Registers `[start, start+len)` as a **publish range**: any
    /// successful 8-byte CAS inside it is treated as publishing a
    /// pointer into this region, and the `extent` bytes at the pointer
    /// must already be durable (else an *early-publish* violation).
    /// Typical use: a store registers its bucket-head array so head
    /// CASes are checked against the records they link in.
    pub fn psan_register_publish_range(&self, start: POffset, len: usize, extent: usize) {
        if let Some(psan) = &self.inner.psan {
            psan.register_publish_range(start.get(), len as u64, extent as u64);
        }
    }

    /// Declares that `[start, start+len)` must be durable by the next
    /// root swap on this region ([`RootCell::swap`](crate::RootCell)
    /// consumes the declaration and checks it at its commit point).
    pub fn psan_declare_commit(&self, start: POffset, len: usize) {
        if let Some(psan) = &self.inner.psan {
            psan.declare_commit(start.get(), len as u64);
        }
    }

    /// Immediate commit-ordering check: records an *unordered-commit*
    /// violation for every still-dirty line in `[start, start+len)`.
    /// Used at commit points that are not root swaps (e.g. a
    /// flush-epoch bump after a group commit).
    pub fn psan_check_durable(&self, start: POffset, len: usize) {
        if let Some(psan) = &self.inner.psan {
            psan.check_durable(start.get(), len as u64, self.events());
        }
    }

    /// Internal hook for [`RootCell::swap`](crate::RootCell): the
    /// commit point publishing `ptr`. Checks (and consumes) declared
    /// commit extents — or, with none declared, the line holding `ptr`.
    #[doc(hidden)]
    pub fn psan_note_root_swap(&self, ptr: u64) {
        if let Some(psan) = &self.inner.psan {
            psan.note_root_swap(ptr, self.inner.len as u64, self.events());
        }
    }

    /// Waives ghost-read reports for `[start, start+len)` — for fields
    /// recovery deliberately reads optimistically.
    pub fn psan_waive(&self, start: POffset, len: usize, _reason: &str) {
        if let Some(psan) = &self.inner.psan {
            psan.waive(start.get(), len as u64);
        }
    }

    /// All violations recorded so far (across reopen boots).
    #[must_use]
    pub fn psan_violations(&self) -> Vec<PsanViolation> {
        self.inner
            .psan
            .as_ref()
            .map(|p| p.violations())
            .unwrap_or_default()
    }

    /// Drains recorded violations (and resets per-line deduplication).
    #[must_use]
    pub fn psan_take_violations(&self) -> Vec<PsanViolation> {
        self.inner
            .psan
            .as_ref()
            .map(|p| p.take_violations())
            .unwrap_or_default()
    }

    /// Number of violations recorded so far.
    #[must_use]
    pub fn psan_violation_count(&self) -> usize {
        self.inner.psan.as_ref().map_or(0, |p| p.violation_count())
    }

    /// Shadow state of the line containing `addr` (`None` when PSan is
    /// off). Test/debug accessor.
    #[doc(hidden)]
    #[must_use]
    pub fn psan_line_state(&self, addr: POffset) -> Option<crate::psan::ShadowState> {
        self.inner.psan.as_ref().map(|p| p.state_of(addr.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PMem {
        PMemBuilder::new().len(1024).line_size(64).build_in_memory()
    }

    #[test]
    fn read_sees_unflushed_writes() {
        let p = small();
        p.write_u64(POffset::new(8), 77).unwrap();
        assert_eq!(p.read_u64(POffset::new(8)).unwrap(), 77);
    }

    #[test]
    fn unflushed_data_lost_on_crash() {
        let p = small();
        p.write_u64(POffset::new(8), 77).unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(8)).unwrap(), 0);
    }

    #[test]
    fn flushed_data_survives_crash() {
        let p = small();
        p.write_u64(POffset::new(8), 77).unwrap();
        p.flush(POffset::new(8), 8).unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(8)).unwrap(), 77);
    }

    #[test]
    fn survivors_with_probability_one_keep_everything() {
        let p = small();
        p.write_u64(POffset::new(8), 77).unwrap();
        p.write_u64(POffset::new(512), 88).unwrap();
        p.crash_now(1, 1.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(8)).unwrap(), 77);
        assert_eq!(p.read_u64(POffset::new(512)).unwrap(), 88);
    }

    #[test]
    fn survivors_are_deterministic_per_seed() {
        let outcome = |seed: u64| {
            let p = small();
            for i in 0..16 {
                p.write_u64(POffset::new(i * 64), i + 1).unwrap();
            }
            p.crash_now(seed, 0.5);
            let p = p.reopen().unwrap();
            (0..16)
                .map(|i| p.read_u64(POffset::new(i * 64)).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(outcome(7), outcome(7));
        // With 16 independent 50% draws, two different seeds virtually
        // never agree on all lines *and* differ from all-lost; accept
        // equality only if both kept everything or nothing, which the
        // probability argument makes absurd for these seeds.
        assert_ne!(outcome(7), outcome(8));
    }

    #[test]
    fn whole_line_persists_or_not_atomically() {
        // Two values inside one 64-byte line, only the line flushed once:
        // after a survivor-less crash both are gone; after a full-survivor
        // crash both are present. Never one without the other.
        for (prob, expect) in [(0.0, 0u64), (1.0, 5u64)] {
            let p = small();
            p.write_u64(POffset::new(0), 5).unwrap();
            p.write_u64(POffset::new(8), 5).unwrap();
            p.crash_now(3, prob);
            let p = p.reopen().unwrap();
            assert_eq!(p.read_u64(POffset::new(0)).unwrap(), expect);
            assert_eq!(p.read_u64(POffset::new(8)).unwrap(), expect);
        }
    }

    #[test]
    fn multi_line_flush_can_be_cut_in_the_middle() {
        // Write 3 lines, arm a crash after the 4th event
        // (3 writes + first persisted line), so exactly one line persists.
        let p = small();
        p.write(POffset::new(0), &[1u8; 64]).unwrap();
        p.write(POffset::new(64), &[2u8; 64]).unwrap();
        p.write(POffset::new(128), &[3u8; 64]).unwrap();
        p.arm_failpoint(FailPlan::after_events(1));
        let err = p.flush(POffset::new(0), 192).unwrap_err();
        assert!(matches!(err, MemError::Crashed));
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u8(POffset::new(0)).unwrap(), 1);
        assert_eq!(p.read_u8(POffset::new(64)).unwrap(), 0);
        assert_eq!(p.read_u8(POffset::new(128)).unwrap(), 0);
    }

    #[test]
    fn failpoint_crashes_before_the_write_applies() {
        let p = small();
        p.write_u8(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 1).unwrap();
        p.arm_failpoint(FailPlan::after_events(0));
        let err = p.write_u8(POffset::new(0), 2).unwrap_err();
        assert!(matches!(err, MemError::Crashed));
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u8(POffset::new(0)).unwrap(), 1);
    }

    #[test]
    fn crashed_region_rejects_everything() {
        let p = small();
        p.crash_now(0, 0.0);
        assert!(matches!(p.read_u8(POffset::new(0)), Err(MemError::Crashed)));
        assert!(matches!(
            p.write_u8(POffset::new(0), 1),
            Err(MemError::Crashed)
        ));
        assert!(matches!(
            p.flush(POffset::new(0), 1),
            Err(MemError::Crashed)
        ));
        assert!(matches!(
            p.compare_exchange(POffset::new(0), &[0], &[1]),
            Err(MemError::Crashed)
        ));
    }

    #[test]
    fn reopen_requires_crash() {
        let p = small();
        assert!(matches!(p.reopen(), Err(MemError::InvalidConfig(_))));
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let p = small();
        assert!(matches!(
            p.read_u64(POffset::new(1020)),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            p.write(POffset::new(1024), &[1]),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            p.read(POffset::NULL, &mut [0u8; 1]),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let p = small();
        p.write_u64(POffset::new(0), 10).unwrap();
        let ok = p
            .compare_exchange(POffset::new(0), &10u64.to_le_bytes(), &20u64.to_le_bytes())
            .unwrap();
        assert!(ok);
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 20);
        let ok = p
            .compare_exchange(POffset::new(0), &10u64.to_le_bytes(), &30u64.to_le_bytes())
            .unwrap();
        assert!(!ok);
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 20);
    }

    #[test]
    fn cas_result_is_volatile_until_flushed() {
        let p = small();
        p.write_u64(POffset::new(0), 10).unwrap();
        p.flush(POffset::new(0), 8).unwrap();
        p.compare_exchange(POffset::new(0), &10u64.to_le_bytes(), &20u64.to_le_bytes())
            .unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 10);
    }

    #[test]
    fn eager_flush_makes_writes_durable_immediately() {
        let p = PMemBuilder::new()
            .len(1024)
            .eager_flush(true)
            .build_in_memory();
        p.write_u64(POffset::new(8), 99).unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(8)).unwrap(), 99);
    }

    #[test]
    fn eager_flush_cas_is_durable() {
        let p = PMemBuilder::new()
            .len(1024)
            .eager_flush(true)
            .build_in_memory();
        p.write_u64(POffset::new(0), 1).unwrap();
        p.compare_exchange(POffset::new(0), &1u64.to_le_bytes(), &2u64.to_le_bytes())
            .unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 2);
    }

    #[test]
    fn stats_count_operations() {
        let p = small();
        let before = p.stats().snapshot();
        p.write(POffset::new(0), &[0u8; 16]).unwrap();
        p.flush(POffset::new(0), 16).unwrap();
        p.read_u8(POffset::new(0)).unwrap();
        p.fence();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 16);
        assert_eq!(d.flush_calls, 1);
        assert_eq!(d.lines_persisted, 1);
        assert_eq!(d.reads, 1);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn flush_of_clean_lines_persists_nothing() {
        let p = small();
        p.write_u8(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 1).unwrap();
        let before = p.stats().snapshot();
        p.flush(POffset::new(0), 1).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.lines_persisted, 0);
        assert_eq!(d.flush_calls, 1);
    }

    #[test]
    fn single_byte_flush_touches_one_line() {
        let p = small();
        p.write_u8(POffset::new(100), 1).unwrap();
        let before = p.stats().snapshot();
        p.flush(POffset::new(100), 1).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.lines_persisted, 1);
    }

    #[test]
    fn write_spanning_lines_is_reassembled_on_read() {
        let p = small();
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        p.write(POffset::new(30), &data).unwrap();
        assert_eq!(p.read_vec(POffset::new(30), 200).unwrap(), data);
    }

    #[test]
    fn fill_and_read_vec() {
        let p = small();
        p.fill(POffset::new(10), 0xAB, 50).unwrap();
        assert_eq!(p.read_vec(POffset::new(10), 50).unwrap(), vec![0xAB; 50]);
    }

    #[test]
    fn file_backend_survives_real_reopen_from_path() {
        let mut path = std::env::temp_dir();
        path.push(format!("pstack-pmem-file-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let p = PMemBuilder::new().len(4096).build_file(&path).unwrap();
            p.write_u64(POffset::new(128), 4242).unwrap();
            p.flush(POffset::new(128), 8).unwrap();
            p.write_u64(POffset::new(256), 1111).unwrap(); // never flushed
        }
        // A brand new handle (as a restarted process would create) sees
        // only the flushed data.
        let p = PMemBuilder::new().len(4096).build_file(&path).unwrap();
        assert_eq!(p.read_u64(POffset::new(128)).unwrap(), 4242);
        assert_eq!(p.read_u64(POffset::new(256)).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_backend_reopen_after_crash_reloads_from_file() {
        let mut path = std::env::temp_dir();
        path.push(format!("pstack-pmem-crash-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let p = PMemBuilder::new().len(4096).build_file(&path).unwrap();
        p.write_u64(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 8).unwrap();
        p.write_u64(POffset::new(64), 2).unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 1);
        assert_eq!(p.read_u64(POffset::new(64)).unwrap(), 0);
        assert!(matches!(p.backend_kind(), BackendKind::File(_)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_counter_advances() {
        let p = small();
        let e0 = p.events();
        p.write_u8(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 1).unwrap();
        assert_eq!(p.events(), e0 + 2);
    }

    #[test]
    fn builder_validates() {
        assert!(PMemBuilder::new().len(0).build_file("/tmp/x").is_err());
        assert!(PMemBuilder::new()
            .line_size(3)
            .build_file("/tmp/x")
            .is_err());
    }

    #[test]
    fn persist_delay_slows_line_persists() {
        let fast = small();
        let slow = PMemBuilder::new()
            .len(1024)
            .line_size(64)
            .persist_delay(std::time::Duration::from_millis(4))
            .build_in_memory();
        for p in [&fast, &slow] {
            p.write(POffset::new(0), &[1u8; 256]).unwrap();
        }
        let t = std::time::Instant::now();
        fast.flush(POffset::new(0), 256).unwrap();
        let fast_elapsed = t.elapsed();
        let t = std::time::Instant::now();
        slow.flush(POffset::new(0), 256).unwrap();
        let slow_elapsed = t.elapsed();
        // 4 lines × 4 ms ≥ 16 ms; the fast path is microseconds.
        assert!(slow_elapsed >= std::time::Duration::from_millis(16));
        assert!(slow_elapsed > fast_elapsed);
        // The delay survives a reopen.
        slow.crash_now(0, 0.0);
        let slow = slow.reopen().unwrap();
        slow.write_u8(POffset::new(0), 1).unwrap();
        let t = std::time::Instant::now();
        slow.flush(POffset::new(0), 1).unwrap();
        assert!(t.elapsed() >= std::time::Duration::from_millis(4));
    }

    #[test]
    fn flush_latency_charges_per_round_trip() {
        let latent = PMemBuilder::new()
            .len(1024)
            .line_size(64)
            .flush_latency(std::time::Duration::from_millis(4))
            .build_in_memory();
        // One multi-line flush = one round-trip = one latency charge.
        // The best of three attempts filters scheduler noise out of
        // the upper-bound check (4 per-line charges would be ≥ 16 ms
        // of pure sleep, unreachable by a single 4 ms one).
        let one_round_trip = (0..3)
            .map(|_| {
                latent.write(POffset::new(0), &[1u8; 256]).unwrap();
                let t = std::time::Instant::now();
                latent.flush(POffset::new(0), 256).unwrap();
                t.elapsed()
            })
            .min()
            .expect("three attempts");
        assert!(one_round_trip >= std::time::Duration::from_millis(4));
        assert!(
            one_round_trip < std::time::Duration::from_millis(16),
            "latency is per round-trip, not per line: {one_round_trip:?}"
        );
        // A clean flush persists nothing and pays nothing.
        let t = std::time::Instant::now();
        latent.flush(POffset::new(0), 256).unwrap();
        assert!(t.elapsed() < std::time::Duration::from_millis(4));
        // The knob survives a reopen; zero disables it.
        latent.crash_now(0, 0.0);
        let latent = latent.reopen().unwrap();
        latent.write_u8(POffset::new(0), 1).unwrap();
        let t = std::time::Instant::now();
        latent.flush(POffset::new(0), 1).unwrap();
        assert!(t.elapsed() >= std::time::Duration::from_millis(4));
        let free = PMemBuilder::new()
            .len(1024)
            .flush_latency(std::time::Duration::ZERO)
            .build_in_memory();
        free.write_u8(POffset::new(0), 1).unwrap();
        free.flush(POffset::new(0), 1).unwrap();
    }

    #[test]
    fn zero_persist_delay_is_ignored() {
        let p = PMemBuilder::new()
            .len(1024)
            .persist_delay(std::time::Duration::ZERO)
            .build_in_memory();
        p.write_u8(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 1).unwrap();
        assert_eq!(p.read_u8(POffset::new(0)).unwrap(), 1);
    }

    #[test]
    fn redundant_flushes_are_counted() {
        let p = small();
        p.write_u8(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 1).unwrap();
        let before = p.stats().snapshot();
        p.flush(POffset::new(0), 1).unwrap(); // clean line: redundant
        p.flush(POffset::new(0), 0).unwrap(); // empty range: not counted
        let d = p.stats().snapshot() - before;
        assert_eq!(d.redundant_persists, 1);
        // Eager regions: the write persists itself, explicit flushes
        // on top are pure redundancy.
        let e = PMemBuilder::new()
            .len(1024)
            .eager_flush(true)
            .build_in_memory();
        e.write_u8(POffset::new(0), 1).unwrap();
        e.flush(POffset::new(0), 1).unwrap();
        assert_eq!(e.stats().snapshot().redundant_persists, 1);
    }

    fn psan_region() -> PMem {
        PMemBuilder::new()
            .len(1024)
            .line_size(64)
            .psan(true)
            .build_in_memory()
    }

    #[test]
    fn psan_shadow_tracks_write_flush_fence_at_the_pmem_level() {
        use crate::psan::ShadowState;
        let p = psan_region();
        assert!(p.psan_enabled());
        let off = POffset::new(64);
        assert_eq!(p.psan_line_state(off), Some(ShadowState::Clean));
        p.write_u64(off, 7).unwrap();
        assert_eq!(p.psan_line_state(off), Some(ShadowState::Dirty));
        p.flush(off, 8).unwrap();
        // The synchronous flush completes the round-trip in one call:
        // Dirty → Flushed → Durable.
        assert_eq!(p.psan_line_state(off), Some(ShadowState::Durable));
        // Off by default.
        let plain = small();
        assert!(!plain.psan_enabled());
        assert_eq!(plain.psan_line_state(off), None);
        assert_eq!(plain.psan_label(), None);
    }

    #[test]
    fn psan_eager_writes_reach_durable_immediately() {
        use crate::psan::ShadowState;
        let p = PMemBuilder::new()
            .len(1024)
            .eager_flush(true)
            .psan(true)
            .build_in_memory();
        p.write_u64(POffset::new(0), 7).unwrap();
        assert_eq!(
            p.psan_line_state(POffset::new(0)),
            Some(ShadowState::Durable)
        );
        p.compare_exchange(POffset::new(0), &7u64.to_le_bytes(), &8u64.to_le_bytes())
            .unwrap();
        assert_eq!(
            p.psan_line_state(POffset::new(0)),
            Some(ShadowState::Durable)
        );
    }

    #[test]
    fn psan_crash_reverts_non_durable_lines() {
        use crate::psan::ShadowState;
        let p = psan_region();
        p.write_u64(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 8).unwrap();
        p.write_u64(POffset::new(64), 2).unwrap(); // never flushed
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        // The dropped line reverted: recovery reads durable content,
        // no ghosts, no violations.
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 1);
        assert_eq!(p.read_u64(POffset::new(64)).unwrap(), 0);
        assert_eq!(
            p.psan_line_state(POffset::new(64)),
            Some(ShadowState::Clean)
        );
        assert!(p.psan_violations().is_empty());
    }

    #[test]
    fn psan_flags_post_crash_ghost_reads_end_to_end() {
        let p = psan_region();
        p.psan_set_label("ghost-demo");
        p.write_u64(POffset::new(128), 42).unwrap();
        // Survival probability 1.0: the dirty line survives "by luck"
        // without ever having been persisted — a ghost.
        p.crash_now(0, 1.0);
        let p = p.reopen().unwrap();
        // The emulator happily serves the value...
        assert_eq!(p.read_u64(POffset::new(128)).unwrap(), 42);
        // ...and PSan flags the read.
        let v = p.psan_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, crate::psan::PsanViolationKind::GhostRead);
        assert_eq!(v[0].region, "ghost-demo");
        assert_eq!(v[0].offset, 128);
        // A waived range is not flagged again (fresh region).
        let p = psan_region();
        p.write_u64(POffset::new(128), 42).unwrap();
        p.crash_now(0, 1.0);
        let p = p.reopen().unwrap();
        p.psan_waive(POffset::new(128), 8, "test: optimistic field");
        assert_eq!(p.read_u64(POffset::new(128)).unwrap(), 42);
        assert!(p.psan_violations().is_empty());
    }

    #[test]
    fn psan_violations_survive_reopen_and_drain() {
        let p = psan_region();
        p.write_u64(POffset::new(0), 1).unwrap();
        p.psan_check_durable(POffset::new(0), 8);
        assert_eq!(p.psan_violation_count(), 1);
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.psan_violation_count(), 1, "shadow outlives the crash");
        assert_eq!(p.psan_take_violations().len(), 1);
        assert_eq!(p.psan_violation_count(), 0);
    }

    #[test]
    fn psan_early_publish_detected_through_compare_exchange() {
        let p = psan_region();
        p.psan_register_publish_range(POffset::new(0), 64, 64);
        // A record staged at 256, not yet durable; publish its offset
        // into the registered head array via CAS.
        p.write(POffset::new(256), &[9u8; 48]).unwrap();
        let _g = crate::psan::op_label("test.publish");
        assert!(p
            .compare_exchange(POffset::new(8), &0u64.to_le_bytes(), &256u64.to_le_bytes())
            .unwrap());
        let v = p.psan_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind,
            crate::psan::PsanViolationKind::EarlyPublish { published: 256 }
        ));
        assert_eq!(v[0].op_label, "test.publish");
        // Same protocol with the record flushed first: clean.
        let p = psan_region();
        p.psan_register_publish_range(POffset::new(0), 64, 64);
        p.write(POffset::new(256), &[9u8; 48]).unwrap();
        p.flush(POffset::new(256), 48).unwrap();
        assert!(p
            .compare_exchange(POffset::new(8), &0u64.to_le_bytes(), &256u64.to_le_bytes())
            .unwrap());
        assert!(p.psan_violations().is_empty());
    }

    #[test]
    fn flush_async_then_await_is_durable() {
        let p = small();
        p.write_u64(POffset::new(8), 77).unwrap();
        let t = p.flush_async(POffset::new(8), 8).unwrap();
        assert_eq!(p.inflight_tickets(), 1);
        p.await_ticket(&t).unwrap();
        assert_eq!(p.inflight_tickets(), 0);
        // Re-awaiting a completed ticket is a cheap no-op.
        p.await_ticket(&t).unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(8)).unwrap(), 77);
    }

    #[test]
    fn unawaited_ticket_lines_take_the_lottery() {
        let p = small();
        p.write_u64(POffset::new(8), 77).unwrap();
        let t = p.flush_async(POffset::new(8), 8).unwrap();
        p.crash_now(0, 0.0);
        assert!(matches!(p.await_ticket(&t), Err(MemError::Crashed)));
        let p = p.reopen().unwrap();
        // The flight never completed: only the completed-ticket prefix
        // (here: nothing) is durable.
        assert_eq!(p.read_u64(POffset::new(8)).unwrap(), 0);
    }

    #[test]
    fn completed_prefix_survives_with_later_ticket_in_flight() {
        let p = small();
        p.write_u64(POffset::new(0), 1).unwrap();
        let t1 = p.flush_async(POffset::new(0), 8).unwrap();
        p.await_ticket(&t1).unwrap();
        p.write_u64(POffset::new(64), 2).unwrap();
        let _t2 = p.flush_async(POffset::new(64), 8).unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 1);
        assert_eq!(p.read_u64(POffset::new(64)).unwrap(), 0);
    }

    #[test]
    fn async_flush_overlaps_round_trip_with_work() {
        let p = PMemBuilder::new()
            .len(1024)
            .line_size(64)
            .flush_latency(std::time::Duration::from_millis(10))
            .build_in_memory();
        p.write_u64(POffset::new(0), 7).unwrap();
        let issued = std::time::Instant::now();
        let t = p.flush_async(POffset::new(0), 8).unwrap();
        // "Record building" overlapping the round-trip.
        std::thread::sleep(std::time::Duration::from_millis(14));
        let awaiting = std::time::Instant::now();
        p.await_ticket(&t).unwrap();
        assert!(
            awaiting.elapsed() < std::time::Duration::from_millis(8),
            "deadline passed during the overlapped work: {:?}",
            awaiting.elapsed()
        );
        // Without overlapped work the await pays the remaining latency.
        p.write_u64(POffset::new(64), 8).unwrap();
        let t = p.flush_async(POffset::new(64), 8).unwrap();
        p.await_ticket(&t).unwrap();
        assert!(issued.elapsed() >= std::time::Duration::from_millis(24));
        let snap = p.stats().snapshot();
        assert_eq!(snap.async_flushes, 2);
        assert!(snap.async_latency_charged_ns >= 20_000_000);
        assert!(snap.async_latency_waited_ns < snap.async_latency_charged_ns);
    }

    #[test]
    fn sync_flush_elides_staged_lines_and_awaits_their_flight() {
        let p = small();
        p.write_u64(POffset::new(0), 1).unwrap();
        p.write_u64(POffset::new(64), 2).unwrap();
        let _t = p.flush_async(POffset::new(0), 8).unwrap();
        let before = p.stats().snapshot();
        // Sync flush covering the staged line and a fresh one: the
        // staged line is elided, the flight is awaited, and on return
        // everything is durable.
        p.flush(POffset::new(0), 128).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.elided_lines, 1);
        assert_eq!(d.lines_persisted, 2, "fresh line + applied flight");
        assert_eq!(p.inflight_tickets(), 0);
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 1);
        assert_eq!(p.read_u64(POffset::new(64)).unwrap(), 2);
    }

    #[test]
    fn redirtied_staged_line_is_not_rolled_back_by_its_flight() {
        let p = small();
        p.write_u64(POffset::new(0), 1).unwrap();
        let t = p.flush_async(POffset::new(0), 8).unwrap();
        // Re-dirty after staging: the marker clears, the sync flush
        // persists the new content and purges the stale snapshot.
        p.write_u64(POffset::new(0), 2).unwrap();
        p.flush(POffset::new(0), 8).unwrap();
        p.await_ticket(&t).unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 2);
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 2);
    }

    #[test]
    fn fully_elided_async_flush_is_redundant_and_instant() {
        let p = small();
        p.write_u64(POffset::new(0), 1).unwrap();
        p.flush(POffset::new(0), 8).unwrap();
        let before = p.stats().snapshot();
        let t = p.flush_async(POffset::new(0), 8).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.redundant_persists, 1);
        assert_eq!(d.async_flushes, 0);
        p.await_ticket(&t).unwrap();
        // Riding an earlier flight: a second async flush of a staged
        // line elides per-line instead of staging twice.
        p.write_u64(POffset::new(64), 2).unwrap();
        let t1 = p.flush_async(POffset::new(64), 8).unwrap();
        let before = p.stats().snapshot();
        let t2 = p.flush_async(POffset::new(64), 8).unwrap();
        let d = p.stats().snapshot() - before;
        assert_eq!(d.elided_lines, 1);
        assert_eq!(d.redundant_persists, 1);
        assert_eq!(t2, t1, "the elided ticket rides the earlier flight");
        p.await_ticket(&t2).unwrap();
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(64)).unwrap(), 2);
    }

    #[test]
    fn fence_drains_inflight_tickets() {
        let p = small();
        p.write_u64(POffset::new(0), 5).unwrap();
        let _t = p.flush_async(POffset::new(0), 8).unwrap();
        assert_eq!(p.inflight_tickets(), 1);
        p.fence();
        assert_eq!(p.inflight_tickets(), 0);
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 5);
    }

    #[test]
    fn flush_async_consumes_events_like_sync_flush() {
        let p = small();
        let e0 = p.events();
        p.write_u8(POffset::new(0), 1).unwrap();
        let t = p.flush_async(POffset::new(0), 1).unwrap();
        assert_eq!(p.events(), e0 + 2, "write + one covered line");
        p.await_ticket(&t).unwrap();
        assert_eq!(p.events(), e0 + 2, "applying a flight is event-free");
    }

    #[test]
    fn failpoint_fires_during_async_issue() {
        let p = small();
        p.write(POffset::new(0), &[1u8; 64]).unwrap();
        p.write(POffset::new(64), &[2u8; 64]).unwrap();
        p.arm_failpoint(FailPlan::after_events(0));
        let err = p.flush_async(POffset::new(0), 128).unwrap_err();
        assert!(matches!(err, MemError::Crashed));
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u8(POffset::new(0)).unwrap(), 0);
        assert_eq!(p.read_u8(POffset::new(64)).unwrap(), 0);
    }

    #[test]
    fn ticket_from_another_region_is_rejected() {
        let a = small();
        let b = small();
        a.write_u8(POffset::new(0), 1).unwrap();
        let t = a.flush_async(POffset::new(0), 1).unwrap();
        assert!(matches!(
            b.await_ticket(&t),
            Err(MemError::InvalidConfig(_))
        ));
        a.await_ticket(&t).unwrap();
    }

    #[test]
    fn psan_tracks_ticket_lifecycle() {
        use crate::psan::ShadowState;
        let p = psan_region();
        let off = POffset::new(64);
        p.write_u64(off, 7).unwrap();
        let t = p.flush_async(off, 8).unwrap();
        assert_eq!(p.psan_line_state(off), Some(ShadowState::Flushed));
        // A sync round-trip elsewhere must NOT promote the staged line.
        p.write_u64(POffset::new(256), 1).unwrap();
        p.flush(POffset::new(256), 8).unwrap();
        assert_eq!(p.psan_line_state(off), Some(ShadowState::Flushed));
        p.await_ticket(&t).unwrap();
        assert_eq!(p.psan_line_state(off), Some(ShadowState::Durable));
        assert!(p.psan_violations().is_empty());
    }

    #[test]
    fn psan_flags_publish_against_unawaited_ticket() {
        let p = psan_region();
        p.psan_register_publish_range(POffset::new(0), 64, 64);
        p.write(POffset::new(256), &[9u8; 48]).unwrap();
        let t = p.flush_async(POffset::new(256), 48).unwrap();
        // Publishing before awaiting: the record rides an un-completed
        // flight — early publish.
        let _g = crate::psan::op_label("test.early-ticket-publish");
        assert!(p
            .compare_exchange(POffset::new(8), &0u64.to_le_bytes(), &256u64.to_le_bytes())
            .unwrap());
        let v = p.psan_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(matches!(
            v[0].kind,
            crate::psan::PsanViolationKind::EarlyPublish { published: 256 }
        ));
        assert_eq!(v[0].op_label, "test.early-ticket-publish");

        // Awaiting first keeps the same protocol clean.
        let p = psan_region();
        p.psan_register_publish_range(POffset::new(0), 64, 64);
        p.write(POffset::new(256), &[9u8; 48]).unwrap();
        let t2 = p.flush_async(POffset::new(256), 48).unwrap();
        p.await_ticket(&t2).unwrap();
        assert!(p
            .compare_exchange(POffset::new(8), &0u64.to_le_bytes(), &256u64.to_le_bytes())
            .unwrap());
        assert!(p.psan_violations().is_empty());
        let _ = t;
    }

    #[test]
    fn psan_staged_survivor_is_a_ghost() {
        let p = psan_region();
        p.write_u64(POffset::new(128), 42).unwrap();
        let _t = p.flush_async(POffset::new(128), 8).unwrap();
        // The line survives the lottery without its flight completing:
        // the bytes were never durable.
        p.crash_now(0, 1.0);
        let p = p.reopen().unwrap();
        assert_eq!(p.read_u64(POffset::new(128)).unwrap(), 42);
        let v = p.psan_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].kind, crate::psan::PsanViolationKind::GhostRead);
    }

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PMem>();
    }

    #[test]
    fn concurrent_writers_do_not_lose_lines() {
        let p = PMemBuilder::new().len(64 * 64).build_in_memory();
        std::thread::scope(|s| {
            for t in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for i in 0..16usize {
                        let off = POffset::new(((t * 16 + i) * 64) as u64);
                        p.write_u64(off, (t * 16 + i) as u64 + 1).unwrap();
                        p.flush(off, 8).unwrap();
                    }
                });
            }
        });
        p.crash_now(0, 0.0);
        let p = p.reopen().unwrap();
        for i in 0..64usize {
            assert_eq!(
                p.read_u64(POffset::new((i * 64) as u64)).unwrap(),
                i as u64 + 1
            );
        }
    }

    #[test]
    fn fetch_update_installs_and_declines() {
        let p = small();
        p.write_u64(POffset::new(0), 5).unwrap();
        // Install: bump by one, observing the previous value.
        assert_eq!(
            p.fetch_update(POffset::new(0), |v| Some(v + 1)).unwrap(),
            Ok(5)
        );
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 6);
        // Decline: `None` aborts and reports what was seen.
        assert_eq!(
            p.fetch_update(POffset::new(0), |v| if v >= 6 { None } else { Some(v) })
                .unwrap(),
            Err(6)
        );
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 6);
    }

    #[test]
    fn fetch_update_is_atomic_under_contention() {
        let p = small();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = p.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let _ = p.fetch_update(POffset::new(0), |v| Some(v + 1)).unwrap();
                    }
                });
            }
        });
        assert_eq!(p.read_u64(POffset::new(0)).unwrap(), 400);
    }

    #[test]
    fn quiesce_waits_out_active_mutators() {
        let p = small();
        let entered = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let release = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let p = p.clone();
                let entered = entered.clone();
                let release = release.clone();
                s.spawn(move || {
                    let _m = p.mutator_enter();
                    entered.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                });
            }
            while !entered.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            assert_eq!(p.active_mutators(), 1);
            // Quiesce must not return while the mutator is inside; let
            // it out from a third thread after a short delay.
            {
                let release = release.clone();
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    release.store(true, Ordering::SeqCst);
                });
            }
            let g = p.quiesce();
            assert_eq!(p.active_mutators(), 0);
            assert!(release.load(Ordering::SeqCst), "quiesce returned early");
            drop(g);
        });
        // Epoch advanced once per mutator entry.
        assert_eq!(p.mutator_epoch(), 1);
    }

    #[test]
    fn mutators_block_while_quiesced() {
        let p = small();
        let g = p.quiesce();
        let progressed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let p = p.clone();
                let progressed = progressed.clone();
                s.spawn(move || {
                    let _m = p.mutator_enter();
                    progressed.store(true, Ordering::SeqCst);
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(
                !progressed.load(Ordering::SeqCst),
                "mutator entered during quiesce"
            );
            drop(g);
        });
        assert!(progressed.load(Ordering::SeqCst));
    }

    #[test]
    fn crash_stamps_order_observations_globally() {
        let a = small();
        let b = small();
        assert_eq!(a.crash_stamp(), None);
        b.crash_now(0, 0.0);
        a.crash_now(0, 0.0);
        let (sa, sb) = (a.crash_stamp().unwrap(), b.crash_stamp().unwrap());
        assert!(sb < sa, "b crashed first, must carry the earlier stamp");
        // Reopen clears the stamp with the crashed flag.
        assert_eq!(a.reopen().unwrap().crash_stamp(), None);
    }
}
