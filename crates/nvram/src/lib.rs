//! Emulated NVRAM for executing and testing persistent-memory programs.
//!
//! This crate is the hardware substrate of the persistent-stack runtime
//! described in *"Execution of NVRAM Programs with Persistent Stack"*
//! (Aksenov et al., PACT 2021). It models the two properties of real
//! NVRAM systems that the paper's protocols defend against:
//!
//! 1. **A volatile cache in front of persistence.** Writes land in a
//!    volatile buffer of cache lines. Data only becomes durable when its
//!    line is explicitly flushed — or, nondeterministically, when a line
//!    is "evicted" before a crash. A crash discards every dirty line that
//!    was not (explicitly or nondeterministically) persisted.
//! 2. **Per-line atomic flush.** Flushing one cache line is atomic: after
//!    a crash the line is either entirely persistent or entirely lost. A
//!    flush spanning several lines can be cut in the middle by a crash.
//!
//! All persistent references are [`POffset`] values — offsets from the
//! start of the region — never raw addresses, because the mapping address
//! may change across restarts (§4.1 of the paper). The API makes this
//! discipline impossible to violate: no raw pointers are ever exposed.
//!
//! Two backends are provided: a fast in-memory image for tests and
//! benchmarks, and a file-backed image that emulates the paper's
//! HDD-based `mmap` deployment and survives real process restarts.
//!
//! # Example
//!
//! ```
//! use pstack_nvram::{PMem, PMemBuilder, POffset};
//!
//! # fn main() -> Result<(), pstack_nvram::MemError> {
//! let pmem = PMemBuilder::new().len(4096).build_in_memory();
//! let off = POffset::new(128);
//! pmem.write_u64(off, 0xDEAD_BEEF)?;
//! pmem.flush(off, 8)?;
//! assert_eq!(pmem.read_u64(off)?, 0xDEAD_BEEF);
//!
//! // A crash with survival probability 0 wipes everything unflushed,
//! // but the flushed word survives.
//! pmem.crash_now(42, 0.0);
//! let pmem = pmem.reopen()?;
//! assert_eq!(pmem.read_u64(off)?, 0xDEAD_BEEF);
//! # Ok(())
//! # }
//! ```

mod backend;
mod error;
mod failpoint;
mod offset;
mod pmem;
pub mod psan;
mod rootswap;
mod stats;
mod stripe;

pub use backend::BackendKind;
pub use error::MemError;
pub use failpoint::FailPlan;
pub use offset::POffset;
pub use pmem::{
    FlushTicket, MutatorGuard, PMem, PMemBuilder, QuiesceGuard, DEFAULT_CACHE_LINE,
    DEFAULT_REGION_LEN,
};
pub use psan::{op_label, OpLabelGuard, PsanViolation, PsanViolationKind, ShadowState};
pub use rootswap::{RootCell, ROOT_CELL_LEN};
pub use stats::{MemStats, StatsSnapshot};
pub use stripe::PMemStripe;
