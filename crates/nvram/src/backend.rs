//! Durable storage behind the emulated NVRAM.
//!
//! The persistent *image* of the region lives in DRAM for speed, but a
//! backend mirrors every persisted line to its durable home:
//!
//! * [`MemBackend`] keeps nothing extra — the in-DRAM image *is* the
//!   durable truth. Crashes are simulated in-process, so this is exact
//!   for every test and benchmark that does not kill the real process.
//! * [`FileBackend`] writes every persisted line through to a file,
//!   emulating the paper's HDD-backed `mmap` deployment (§5.2). A real
//!   process restart can then reopen the file and recover.
//!
//! On unix the file backend writes lines with the positional
//! `FileExt::write_all_at` (no seek, safe under concurrent clones of
//! the handle); elsewhere it falls back to portable seek-then-write,
//! which is equivalent here because every write happens inside the
//! region's critical section.

use std::fs::{File, OpenOptions};
use std::io::Read;
#[cfg(unix)]
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

use crate::MemError;

/// Identifies which durable backend a region uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendKind {
    /// In-process memory image only.
    Memory,
    /// Write-through file at the given path.
    File(PathBuf),
}

pub(crate) trait Backend: Send {
    /// Mirrors one persisted line to durable storage.
    fn persist_line(&mut self, offset: usize, data: &[u8]) -> Result<(), MemError>;

    /// Mirrors a batch of persisted lines in one call — the completion
    /// of an asynchronous flush command applying a whole flight. The
    /// default loops [`Backend::persist_line`]; backends with a
    /// cheaper batched path (vectored writes, one `msync`) override.
    fn persist_lines(&mut self, lines: &[(usize, &[u8])]) -> Result<(), MemError> {
        for (offset, data) in lines {
            self.persist_line(*offset, data)?;
        }
        Ok(())
    }

    /// Loads the durable image into `buf` when the region is (re)opened.
    fn load(&mut self, buf: &mut [u8]) -> Result<(), MemError>;

    fn kind(&self) -> BackendKind;
}

/// Backend with no durable home beyond the in-process image.
#[derive(Debug, Default)]
pub(crate) struct MemBackend;

impl Backend for MemBackend {
    fn persist_line(&mut self, _offset: usize, _data: &[u8]) -> Result<(), MemError> {
        Ok(())
    }

    fn load(&mut self, _buf: &mut [u8]) -> Result<(), MemError> {
        Ok(())
    }

    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }
}

/// Write-through file backend emulating an HDD/SSD-backed mapping.
#[derive(Debug)]
pub(crate) struct FileBackend {
    file: File,
    path: PathBuf,
}

impl FileBackend {
    /// Opens (creating and zero-extending if needed) the backing file.
    pub(crate) fn open(path: &Path, len: usize) -> Result<Self, MemError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let current = file.metadata()?.len();
        if current < len as u64 {
            file.set_len(len as u64)?;
        }
        Ok(FileBackend {
            file,
            path: path.to_path_buf(),
        })
    }
}

impl Backend for FileBackend {
    #[cfg(unix)]
    fn persist_line(&mut self, offset: usize, data: &[u8]) -> Result<(), MemError> {
        self.file.write_all_at(data, offset as u64)?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn persist_line(&mut self, offset: usize, data: &[u8]) -> Result<(), MemError> {
        use std::io::{Seek, SeekFrom, Write};
        self.file.seek(SeekFrom::Start(offset as u64))?;
        self.file.write_all(data)?;
        Ok(())
    }

    fn load(&mut self, buf: &mut [u8]) -> Result<(), MemError> {
        let mut whole = Vec::new();
        let mut f = self.file.try_clone()?;
        use std::io::Seek;
        f.seek(std::io::SeekFrom::Start(0))?;
        f.read_to_end(&mut whole)?;
        let n = whole.len().min(buf.len());
        buf[..n].copy_from_slice(&whole[..n]);
        Ok(())
    }

    fn kind(&self) -> BackendKind {
        BackendKind::File(self.path.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pstack-backend-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn mem_backend_is_inert() {
        let mut b = MemBackend;
        b.persist_line(0, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 4];
        b.load(&mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
        assert_eq!(b.kind(), BackendKind::Memory);
    }

    #[test]
    fn file_backend_round_trips_lines() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut b = FileBackend::open(&path, 256).unwrap();
            b.persist_line(64, &[7u8; 64]).unwrap();
        }
        {
            let mut b = FileBackend::open(&path, 256).unwrap();
            let mut buf = vec![0u8; 256];
            b.load(&mut buf).unwrap();
            assert_eq!(&buf[64..128], &[7u8; 64]);
            assert_eq!(&buf[0..64], &[0u8; 64]);
            assert!(matches!(b.kind(), BackendKind::File(_)));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_backend_zero_extends() {
        let path = tmp_path("extend");
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, [9u8; 16]).unwrap();
        let mut b = FileBackend::open(&path, 128).unwrap();
        let mut buf = vec![0xFFu8; 128];
        b.load(&mut buf).unwrap();
        assert_eq!(&buf[..16], &[9u8; 16]);
        assert_eq!(&buf[16..], &vec![0u8; 112][..]);
        let _ = std::fs::remove_file(&path);
    }
}
