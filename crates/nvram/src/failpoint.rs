//! Deterministic crash injection.
//!
//! The paper's experiments (§5.2) kill the process "at random moments".
//! For reproducibility we model a kill as a *fail plan*: a countdown of
//! persistence events (writes, per-line flushes, compare-exchanges)
//! after which the region enters the crashed state and every further
//! access fails with [`MemError::Crashed`](crate::MemError::Crashed).
//!
//! Counting *events* rather than wall-clock time makes exhaustive
//! crash-point enumeration possible: run an operation once to count its
//! events, then replay it `E` times, crashing after event `1..=E`, and
//! check that recovery succeeds from every intermediate state. The
//! `pstack-chaos` crate builds that harness on top of this module.

/// A crash-injection plan for a [`PMem`](crate::PMem) region.
///
/// The plan fires when `countdown` persistence events have happened;
/// the crash then persists each dirty cache line independently with
/// probability `survival_prob` (seeded by `survivor_seed`), modelling
/// arbitrary evictions that may have happened before the crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailPlan {
    /// Number of further persistence events to allow before crashing.
    pub countdown: u64,
    /// Seed for the per-line survival decision.
    pub survivor_seed: u64,
    /// Probability in `[0, 1]` that a dirty line is persisted by the crash.
    pub survival_prob: f64,
}

impl FailPlan {
    /// Plan that crashes after `events` further persistence events,
    /// dropping every dirty line (the harshest survivors model).
    #[must_use]
    pub fn after_events(events: u64) -> Self {
        FailPlan {
            countdown: events,
            survivor_seed: 0,
            survival_prob: 0.0,
        }
    }

    /// Sets the survivors model: each dirty line independently persists
    /// with probability `prob`, decided deterministically from `seed`.
    #[must_use]
    pub fn with_survivors(mut self, seed: u64, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "survival probability must be within [0, 1]"
        );
        self.survivor_seed = seed;
        self.survival_prob = prob;
        self
    }
}

/// Internal countdown state; lives inside the region lock.
#[derive(Debug, Default)]
pub(crate) struct FailState {
    plan: Option<FailPlan>,
    /// Total persistence events observed since the region was opened.
    pub(crate) events: u64,
}

impl FailState {
    /// Registers one persistence event. Returns the plan if it just fired.
    pub(crate) fn on_event(&mut self) -> Option<FailPlan> {
        self.events += 1;
        if let Some(plan) = self.plan.as_mut() {
            if plan.countdown == 0 {
                let fired = *plan;
                self.plan = None;
                return Some(fired);
            }
            plan.countdown -= 1;
        }
        None
    }

    pub(crate) fn arm(&mut self, plan: FailPlan) {
        self.plan = Some(plan);
    }

    pub(crate) fn disarm(&mut self) {
        self.plan = None;
    }

    pub(crate) fn armed(&self) -> bool {
        self.plan.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn countdown_fires_exactly_once() {
        let mut st = FailState::default();
        st.arm(FailPlan::after_events(2));
        assert!(st.on_event().is_none());
        assert!(st.on_event().is_none());
        assert!(st.on_event().is_some());
        assert!(st.on_event().is_none());
        assert_eq!(st.events, 4);
    }

    #[test]
    fn zero_countdown_fires_on_first_event() {
        let mut st = FailState::default();
        st.arm(FailPlan::after_events(0));
        assert!(st.on_event().is_some());
    }

    #[test]
    fn disarm_prevents_firing() {
        let mut st = FailState::default();
        st.arm(FailPlan::after_events(0));
        st.disarm();
        assert!(!st.armed());
        assert!(st.on_event().is_none());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn survivors_probability_validated() {
        let _ = FailPlan::after_events(1).with_survivors(1, 1.5);
    }

    #[test]
    fn with_survivors_sets_fields() {
        let p = FailPlan::after_events(3).with_survivors(9, 0.5);
        assert_eq!(p.survivor_seed, 9);
        assert!((p.survival_prob - 0.5).abs() < f64::EPSILON);
        assert_eq!(p.countdown, 3);
    }
}
