//! PSan: a persist-order sanitizer over the emulated NVRAM.
//!
//! Every durability argument in this workspace — evidence-scan
//! recovery, group-commit all-or-nothing batches, the single-line
//! [`RootCell`](crate::RootCell) commit point — reduces to an ordering
//! obligation of the form *"X must be durable before Y is published"*.
//! Crash campaigns only catch a violated obligation when a kill lands
//! inside the vulnerable window; PSan checks the obligation on **every**
//! execution by shadowing each cache line with a tiny state machine:
//!
//! ```text
//!            write                persist (line)        round-trip / fence
//!   Clean ─────────▶ Dirty ──────────────────▶ Flushed ─────────────▶ Durable
//!     ▲                │ crash (line dropped)     │ crash (mid-flush)
//!     └────────────────┘                          └──▶ Durable
//! ```
//!
//! On a crash, Dirty lines either revert to Clean (content lost — the
//! shadow forgets them) or, when the crash model lets them survive "by
//! luck", their never-persisted bytes are remembered as **ghosts**.
//!
//! Violation classes:
//!
//! - **early publish** — a CAS inside a registered publish range
//!   installs a pointer whose target lines are not yet durable;
//! - **unordered commit** — a root swap (or flush-epoch bump) happens
//!   while lines in a declared commit extent are still dirty;
//! - **ghost read** — a post-crash boot reads bytes that were never
//!   durable before the crash (data that only exists because the
//!   emulator's survivor model was generous);
//! - **redundant persist** — diagnostic only: a flush call that
//!   persisted zero lines (counted in
//!   [`StatsSnapshot::redundant_persists`](crate::StatsSnapshot), not
//!   reported as a violation).
//!
//! The sanitizer is enabled per region via
//! [`PMemBuilder::psan`](crate::PMemBuilder::psan); when disabled every
//! hook is a single `Option` check. Violations accumulate across
//! crash/reopen cycles (the shadow survives
//! [`PMem::reopen`](crate::PMem::reopen)) and are collected with
//! [`PMem::psan_violations`](crate::PMem::psan_violations).

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;

use parking_lot::Mutex;

/// Longest shadow history kept per line (oldest entries are dropped).
const HISTORY_CAP: usize = 8;

thread_local! {
    static OP_LABELS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Pushes an operation label for the current thread; the label is
/// attached to every PSan violation raised while the guard lives, so a
/// report reads "early publish … during `kv.apply_batch`" instead of
/// a bare offset. Guards nest; the innermost (most specific) label
/// wins. Cheap enough to call unconditionally — a thread-local `Vec`
/// push/pop, no locking, no allocation.
///
/// When the flight recorder is compiled in and recording, the guard
/// doubles as a telemetry span: enter/exit events land in the calling
/// thread's ring, and the collector turns them into per-op latency
/// histograms and persist attribution.
#[must_use = "the label is popped when the guard drops"]
pub fn op_label(label: &'static str) -> OpLabelGuard {
    OP_LABELS.with(|l| l.borrow_mut().push(label));
    OpLabelGuard {
        label,
        span: pstack_telemetry::span_enter(label),
    }
}

/// The label of the innermost live [`op_label`] guard on this thread,
/// or `"unlabeled"`.
#[must_use]
pub fn current_op_label() -> &'static str {
    OP_LABELS.with(|l| l.borrow().last().copied().unwrap_or("unlabeled"))
}

/// RAII guard returned by [`op_label`]; pops the label on drop.
#[derive(Debug)]
pub struct OpLabelGuard {
    label: &'static str,
    /// True when the enter event was recorded — the exit is emitted
    /// only then, so toggling recording mid-span never unbalances a
    /// trace.
    span: bool,
}

impl Drop for OpLabelGuard {
    fn drop(&mut self) {
        if self.span {
            pstack_telemetry::span_exit(self.label);
        }
        OP_LABELS.with(|l| {
            l.borrow_mut().pop();
        });
    }
}

/// The per-line shadow states. See the [module docs](self) for the
/// transition diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowState {
    /// No un-persisted content (also: line never written).
    Clean,
    /// Written, not yet handed to a persist operation.
    Dirty,
    /// A persist has copied the line out, but the round-trip that
    /// orders it (flush return / fence) has not completed.
    Flushed,
    /// Content guaranteed to survive a crash.
    Durable,
}

/// What kind of ordering violation was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsanViolationKind {
    /// A CAS in a registered publish range installed `published` while
    /// the flagged line of its target extent was still dirty.
    EarlyPublish {
        /// The pointer value the CAS made reachable.
        published: u64,
    },
    /// A root swap / commit point ran while the flagged line of a
    /// declared commit extent was still dirty.
    UnorderedCommit,
    /// A read returned bytes that were never durable before the last
    /// crash (survivor-model luck, not a program guarantee).
    GhostRead,
}

impl PsanViolationKind {
    fn discriminant(self) -> u8 {
        match self {
            PsanViolationKind::EarlyPublish { .. } => 0,
            PsanViolationKind::UnorderedCommit => 1,
            PsanViolationKind::GhostRead => 2,
        }
    }

    /// Short kebab-case name, for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PsanViolationKind::EarlyPublish { .. } => "early-publish",
            PsanViolationKind::UnorderedCommit => "unordered-commit",
            PsanViolationKind::GhostRead => "ghost-read",
        }
    }
}

/// One detected persist-order violation, with `CrashSite`-style
/// attribution: which region, which offset range, what the line's
/// recent shadow history was, and which labeled operation was running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsanViolation {
    /// The violation class (and class-specific payload).
    pub kind: PsanViolationKind,
    /// Label of the region that raised it (see
    /// [`PMem::psan_set_label`](crate::PMem::psan_set_label)).
    pub region: String,
    /// Start of the offending byte range.
    pub offset: u64,
    /// Length of the offending byte range.
    pub len: usize,
    /// The innermost [`op_label`] live on the detecting thread.
    pub op_label: &'static str,
    /// Recent shadow transitions of the offending line, oldest first,
    /// rendered as `what@event [label]`.
    pub history: Vec<String>,
    /// The region's persistence-event counter at detection time.
    pub events: u64,
}

impl fmt::Display for PsanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "psan[{}] {} at {:#x}..{:#x} during `{}` (event {})",
            self.region,
            self.kind.name(),
            self.offset,
            self.offset + self.len as u64,
            self.op_label,
            self.events,
        )?;
        if let PsanViolationKind::EarlyPublish { published } = self.kind {
            write!(f, " published={published:#x}")?;
        }
        if !self.history.is_empty() {
            write!(f, " history=[{}]", self.history.join(", "))?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct HistEntry {
    what: &'static str,
    event: u64,
    label: &'static str,
}

impl HistEntry {
    fn render(self) -> String {
        format!("{}@{} [{}]", self.what, self.event, self.label)
    }
}

#[derive(Debug)]
struct ShadowLine {
    state: ShadowState,
    /// Bitmask of bytes written since the line was last durable.
    mask: Vec<u64>,
    hist: Vec<HistEntry>,
}

impl ShadowLine {
    fn new(line_size: usize) -> Self {
        ShadowLine {
            state: ShadowState::Clean,
            mask: vec![0; line_size.div_ceil(64)],
            hist: Vec::new(),
        }
    }

    fn push_hist(&mut self, what: &'static str, event: u64) {
        if self.hist.len() == HISTORY_CAP {
            self.hist.remove(0);
        }
        self.hist.push(HistEntry {
            what,
            event,
            label: current_op_label(),
        });
    }

    fn mark_bytes(&mut self, from: usize, to: usize) {
        for b in from..to {
            self.mask[b / 64] |= 1 << (b % 64);
        }
    }

    fn clear_mask(&mut self) {
        self.mask.iter_mut().for_each(|w| *w = 0);
    }

    fn rendered_hist(&self) -> Vec<String> {
        self.hist.iter().map(|h| h.render()).collect()
    }
}

/// Bytes of a surviving-by-luck line that were never durable, kept
/// across the reopen so post-crash reads of them can be flagged.
#[derive(Debug)]
struct GhostLine {
    mask: Vec<u64>,
    hist: Vec<HistEntry>,
}

#[derive(Debug, Clone, Copy)]
struct PublishRange {
    start: u64,
    len: u64,
    /// How many bytes past a published pointer must be durable.
    extent: u64,
}

#[derive(Debug)]
struct ShadowInner {
    line_size: usize,
    region: String,
    lines: HashMap<usize, ShadowLine>,
    ghosts: HashMap<usize, GhostLine>,
    /// Lines currently `Flushed`, awaiting promotion at the next fence
    /// or completed round-trip. Keeping the worklist explicit makes
    /// fences O(lines flushed since the last fence) instead of O(every
    /// line ever touched) — entries whose line was re-dirtied in the
    /// meantime are skipped on drain.
    pending_flush: Vec<usize>,
    /// Ticket-staged lines per in-flight asynchronous flush, promoted
    /// by [`Self::note_ticket_complete`] when the flight applies. Kept
    /// apart from `pending_flush` so a synchronous round-trip (or
    /// fence) completing on the region cannot promote lines whose own
    /// flight is still queued — publishing against an un-awaited
    /// ticket must stay an attributable early-publish.
    ticket_pending: HashMap<u64, Vec<usize>>,
    publish: Vec<PublishRange>,
    /// Commit extents declared ahead of the next root swap (drained by
    /// the swap that consumes them).
    commits: Vec<(u64, u64)>,
    waivers: Vec<(u64, u64)>,
    violations: Vec<PsanViolation>,
    reported: HashSet<(u8, usize)>,
}

impl ShadowInner {
    fn line_range(&self, start: u64, len: usize) -> std::ops::Range<usize> {
        if len == 0 {
            return 0..0;
        }
        let first = (start as usize) / self.line_size;
        let last = (start as usize + len - 1) / self.line_size;
        first..last + 1
    }

    fn violate(&mut self, kind: PsanViolationKind, li: usize, events: u64) {
        if !self.reported.insert((kind.discriminant(), li)) {
            return;
        }
        let history = match (self.lines.get(&li), self.ghosts.get(&li)) {
            (Some(line), _) => line.rendered_hist(),
            (None, Some(g)) => g.hist.iter().map(|h| h.render()).collect(),
            (None, None) => Vec::new(),
        };
        self.violations.push(PsanViolation {
            kind,
            region: self.region.clone(),
            offset: (li * self.line_size) as u64,
            len: self.line_size,
            op_label: current_op_label(),
            history,
            events,
        });
    }

    fn check_span_durable(&mut self, start: u64, len: u64, kind: PsanViolationKind, events: u64) {
        for li in self.line_range(start, len as usize) {
            // `Flushed` is as bad as `Dirty` at a commit point: the
            // line rides an un-completed async flight (synchronous
            // round-trips promote to `Durable` before their region
            // call returns, so an in-thread observer never sees their
            // transient `Flushed`). Publishing against an un-awaited
            // ticket is the early-publish bug class.
            if self
                .lines
                .get(&li)
                .is_some_and(|l| matches!(l.state, ShadowState::Dirty | ShadowState::Flushed))
            {
                self.violate(kind, li, events);
            }
        }
    }

    fn waived(&self, addr: u64) -> bool {
        self.waivers.iter().any(|&(s, l)| addr >= s && addr < s + l)
    }
}

/// Per-region shadow memory; owned by `Inner` behind an `Arc` so it
/// survives `reopen()` (the whole point: ghosts and violations must
/// outlive a crash).
#[derive(Debug)]
pub(crate) struct PsanCell {
    inner: Mutex<ShadowInner>,
}

impl PsanCell {
    pub(crate) fn new(line_size: usize) -> Self {
        PsanCell {
            inner: Mutex::new(ShadowInner {
                line_size,
                region: "region".to_string(),
                lines: HashMap::new(),
                ghosts: HashMap::new(),
                pending_flush: Vec::new(),
                ticket_pending: HashMap::new(),
                publish: Vec::new(),
                commits: Vec::new(),
                waivers: Vec::new(),
                violations: Vec::new(),
                reported: HashSet::new(),
            }),
        }
    }

    pub(crate) fn set_label(&self, label: &str) {
        self.inner.lock().region = label.to_string();
    }

    pub(crate) fn label(&self) -> String {
        self.inner.lock().region.clone()
    }

    /// A write dirties its lines (byte-granular mask, for ghosts) and
    /// clears any ghost bytes it overwrites — this boot now owns them.
    pub(crate) fn note_write(&self, start: u64, len: usize, events: u64) {
        if len == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let ls = inner.line_size;
        for li in inner.line_range(start, len) {
            let line_start = li * ls;
            let from = (start as usize).max(line_start) - line_start;
            let to = ((start as usize + len).min(line_start + ls)) - line_start;
            let line = inner.lines.entry(li).or_insert_with(|| ShadowLine::new(ls));
            line.state = ShadowState::Dirty;
            line.mark_bytes(from, to);
            line.push_hist("write", events);
            if let Some(g) = inner.ghosts.get_mut(&li) {
                for b in from..to {
                    g.mask[b / 64] &= !(1 << (b % 64));
                }
                if g.mask.iter().all(|&w| w == 0) {
                    inner.ghosts.remove(&li);
                }
            }
        }
    }

    /// A persist has copied line `li` out to the backend: `Dirty →
    /// Flushed`. The bytes are on media, but ordering is only
    /// guaranteed once the round-trip completes.
    pub(crate) fn note_persist_line(&self, li: usize, events: u64) {
        let mut inner = self.inner.lock();
        if let Some(line) = inner.lines.get_mut(&li) {
            if line.state == ShadowState::Dirty {
                line.state = ShadowState::Flushed;
                line.clear_mask();
                line.push_hist("persist", events);
                inner.pending_flush.push(li);
            }
        }
    }

    /// An asynchronous flush snapshotted line `li` into flight
    /// `serial`: `Dirty → Flushed`, but promotion waits for **that
    /// flight's** completion, not any intervening sync round-trip or
    /// fence. The written-bytes mask is kept: if a crash's survivor
    /// lottery keeps the line before the flight completes, its bytes
    /// were never durable — ghosts.
    pub(crate) fn note_persist_line_ticket(&self, li: usize, serial: u64, events: u64) {
        let mut inner = self.inner.lock();
        if let Some(line) = inner.lines.get_mut(&li) {
            if line.state == ShadowState::Dirty {
                line.state = ShadowState::Flushed;
                line.push_hist("persist-async", events);
                inner.ticket_pending.entry(serial).or_default().push(li);
            }
        }
    }

    /// Flight `serial` applied: its staged lines — unless re-dirtied
    /// since issue — are durable.
    pub(crate) fn note_ticket_complete(&self, serial: u64, events: u64) {
        let mut inner = self.inner.lock();
        let Some(pending) = inner.ticket_pending.remove(&serial) else {
            return;
        };
        for li in pending {
            if let Some(line) = inner.lines.get_mut(&li) {
                if line.state == ShadowState::Flushed {
                    line.state = ShadowState::Durable;
                    line.clear_mask();
                    line.push_hist("ticket-durable", events);
                }
            }
        }
    }

    /// The flush round-trip completed: every `Flushed` line is now
    /// `Durable`.
    pub(crate) fn note_flush_complete(&self, events: u64) {
        self.promote_flushed("durable", events);
    }

    /// A fence orders everything previously flushed: same promotion as
    /// a completed round-trip.
    pub(crate) fn note_fence(&self, events: u64) {
        self.promote_flushed("fence", events);
    }

    /// Drains the flushed worklist, promoting every line still in
    /// `Flushed`. A line re-dirtied since its persist is left alone —
    /// its next persist re-enqueues it.
    fn promote_flushed(&self, what: &'static str, events: u64) {
        let mut inner = self.inner.lock();
        let pending = std::mem::take(&mut inner.pending_flush);
        for li in pending {
            if let Some(line) = inner.lines.get_mut(&li) {
                if line.state == ShadowState::Flushed {
                    line.state = ShadowState::Durable;
                    line.push_hist(what, events);
                }
            }
        }
    }

    /// Registers `[start, start+len)` as a publish range: any 8-byte
    /// CAS inside it is treated as publishing a pointer whose target
    /// must be durable for `extent` bytes.
    pub(crate) fn register_publish_range(&self, start: u64, len: u64, extent: u64) {
        let mut inner = self.inner.lock();
        let exists = inner
            .publish
            .iter()
            .any(|r| r.start == start && r.len == len && r.extent == extent);
        if !exists {
            inner.publish.push(PublishRange { start, len, extent });
        }
    }

    /// Early-publish check: a successful CAS at `off` installing `new`.
    pub(crate) fn note_cas_publish(&self, off: u64, new: &[u8], events: u64) {
        if new.len() != 8 {
            return;
        }
        let mut inner = self.inner.lock();
        let Some(range) = inner
            .publish
            .iter()
            .copied()
            .find(|r| off >= r.start && off + 8 <= r.start + r.len)
        else {
            return;
        };
        let published = u64::from_le_bytes(new.try_into().expect("checked 8 bytes"));
        if published == 0 {
            return;
        }
        let kind = PsanViolationKind::EarlyPublish { published };
        inner.check_span_durable(published, range.extent, kind, events);
    }

    /// Declares that `[start, start+len)` must be durable at the next
    /// root swap on this region (consumed by [`Self::note_root_swap`]).
    pub(crate) fn declare_commit(&self, start: u64, len: u64) {
        self.inner.lock().commits.push((start, len));
    }

    /// The commit point of a root swap publishing `ptr`: every declared
    /// commit extent (or, with none declared, the line holding `ptr`)
    /// must hold no dirty lines.
    pub(crate) fn note_root_swap(&self, ptr: u64, region_len: u64, events: u64) {
        let mut inner = self.inner.lock();
        let extents = std::mem::take(&mut inner.commits);
        if extents.is_empty() {
            if ptr < region_len {
                inner.check_span_durable(ptr, 1, PsanViolationKind::UnorderedCommit, events);
            }
            return;
        }
        for (start, len) in extents {
            inner.check_span_durable(start, len, PsanViolationKind::UnorderedCommit, events);
        }
    }

    /// Commit-ordering check outside a root swap (e.g. before a
    /// flush-epoch bump): `[start, start+len)` must hold no dirty
    /// lines.
    pub(crate) fn check_durable(&self, start: u64, len: u64, events: u64) {
        self.inner.lock().check_span_durable(
            start,
            len,
            PsanViolationKind::UnorderedCommit,
            events,
        );
    }

    /// Crash-time shadow update. `outcomes` lists every dirty line the
    /// crash adjudicated: survivors keep their content *without ever
    /// having been persisted* — their un-persisted bytes become ghosts
    /// — while dropped lines revert to `Clean` (the image still holds
    /// their last durable content). Lines caught in `Flushed`
    /// (mid-flush crash) were already on media: they end up `Durable`.
    pub(crate) fn note_crash(&self, outcomes: &[(usize, bool)], events: u64) {
        let mut inner = self.inner.lock();
        for &(li, survived) in outcomes {
            let Some(mut line) = inner.lines.remove(&li) else {
                continue;
            };
            match line.state {
                // A `Flushed` line in the dirty set is ticket-staged:
                // its flight never completed, so surviving the lottery
                // is as ghostly as a plain dirty survivor (the mask is
                // retained at staging time for exactly this).
                ShadowState::Dirty | ShadowState::Flushed if survived => {
                    line.push_hist("crash-survive", events);
                    let prior = inner.ghosts.remove(&li);
                    let mut mask = line.mask;
                    if let Some(g) = prior {
                        for (w, p) in mask.iter_mut().zip(g.mask.iter()) {
                            *w |= p;
                        }
                    }
                    inner.ghosts.insert(
                        li,
                        GhostLine {
                            mask,
                            hist: line.hist,
                        },
                    );
                }
                ShadowState::Dirty | ShadowState::Flushed => {
                    // Reverted: content lost, line reads as its last
                    // durable bytes — shadow forgets it (Clean).
                }
                _ => {
                    // Durable lines are not in the dirty set;
                    // defensive: treat as durable.
                }
            }
        }
        // Un-completed flights died with the cache; their worklists
        // were adjudicated by the lottery above.
        inner.ticket_pending.clear();
        // Any line still tracked was not in the dirty set: a line
        // persisted mid-flush (Flushed) is on media and survives.
        let pending = std::mem::take(&mut inner.pending_flush);
        for li in pending {
            if let Some(line) = inner.lines.get_mut(&li) {
                if line.state == ShadowState::Flushed {
                    line.state = ShadowState::Durable;
                    line.push_hist("crash-durable", events);
                }
            }
        }
    }

    /// Ghost-read check for `[start, start+len)`.
    pub(crate) fn note_read(&self, start: u64, len: usize, events: u64) {
        let mut inner = self.inner.lock();
        if inner.ghosts.is_empty() || len == 0 {
            return;
        }
        let ls = inner.line_size;
        for li in inner.line_range(start, len) {
            let Some(g) = inner.ghosts.get(&li) else {
                continue;
            };
            let line_start = li * ls;
            let from = (start as usize).max(line_start) - line_start;
            let to = ((start as usize + len).min(line_start + ls)) - line_start;
            let bad = (from..to).find(|&b| {
                g.mask[b / 64] & (1 << (b % 64)) != 0 && !inner.waived((line_start + b) as u64)
            });
            if bad.is_some() {
                inner.violate(PsanViolationKind::GhostRead, li, events);
            }
        }
    }

    /// Waives ghost-read reports for `[start, start+len)` — the escape
    /// hatch for fields recovery deliberately reads optimistically.
    pub(crate) fn waive(&self, start: u64, len: u64) {
        self.inner.lock().waivers.push((start, len));
    }

    pub(crate) fn violations(&self) -> Vec<PsanViolation> {
        self.inner.lock().violations.clone()
    }

    pub(crate) fn take_violations(&self) -> Vec<PsanViolation> {
        let mut inner = self.inner.lock();
        inner.reported.clear();
        std::mem::take(&mut inner.violations)
    }

    pub(crate) fn violation_count(&self) -> usize {
        self.inner.lock().violations.len()
    }

    /// Test/debug accessor: the shadow state of the line containing
    /// `addr` (`Clean` when untracked).
    pub(crate) fn state_of(&self, addr: u64) -> ShadowState {
        let inner = self.inner.lock();
        let li = (addr as usize) / inner.line_size;
        inner.lines.get(&li).map_or(ShadowState::Clean, |l| l.state)
    }

    /// Test/debug accessor: whether any ghost bytes are tracked for the
    /// line containing `addr`.
    #[cfg(test)]
    pub(crate) fn has_ghost(&self, addr: u64) -> bool {
        let inner = self.inner.lock();
        let li = (addr as usize) / inner.line_size;
        inner.ghosts.contains_key(&li)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> PsanCell {
        PsanCell::new(64)
    }

    #[test]
    fn write_moves_clean_to_dirty() {
        let c = cell();
        assert_eq!(c.state_of(64), ShadowState::Clean);
        c.note_write(64, 8, 1);
        assert_eq!(c.state_of(64), ShadowState::Dirty);
        // A second write on the same line stays Dirty.
        c.note_write(72, 8, 2);
        assert_eq!(c.state_of(64), ShadowState::Dirty);
    }

    #[test]
    fn persist_then_round_trip_reaches_durable() {
        let c = cell();
        c.note_write(0, 8, 1);
        c.note_persist_line(0, 2);
        assert_eq!(c.state_of(0), ShadowState::Flushed);
        c.note_flush_complete(2);
        assert_eq!(c.state_of(0), ShadowState::Durable);
    }

    #[test]
    fn fence_promotes_flushed_to_durable() {
        let c = cell();
        c.note_write(0, 8, 1);
        c.note_persist_line(0, 2);
        c.note_fence(3);
        assert_eq!(c.state_of(0), ShadowState::Durable);
    }

    #[test]
    fn durable_line_rewritten_goes_dirty_again() {
        let c = cell();
        c.note_write(0, 8, 1);
        c.note_persist_line(0, 2);
        c.note_flush_complete(2);
        c.note_write(0, 8, 3);
        assert_eq!(c.state_of(0), ShadowState::Dirty);
    }

    #[test]
    fn crash_reverts_dropped_dirty_lines_to_clean() {
        let c = cell();
        c.note_write(0, 8, 1);
        c.note_crash(&[(0, false)], 2);
        assert_eq!(c.state_of(0), ShadowState::Clean);
        assert!(!c.has_ghost(0));
        // Reading the reverted line is fine: it holds durable content.
        c.note_read(0, 8, 3);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn crash_mid_flush_leaves_persisted_lines_durable() {
        let c = cell();
        c.note_write(0, 8, 1);
        c.note_write(64, 8, 2);
        c.note_persist_line(0, 3); // flush got through line 0 ...
        c.note_crash(&[(1, false)], 4); // ... then the crash hit line 1
        assert_eq!(c.state_of(0), ShadowState::Durable);
        assert_eq!(c.state_of(64), ShadowState::Clean);
    }

    #[test]
    fn lucky_survivor_bytes_become_ghosts_and_reads_are_flagged() {
        let c = cell();
        c.note_write(64, 8, 1);
        c.note_crash(&[(1, true)], 2);
        assert!(c.has_ghost(64));
        // Reading a different, untouched part of the line is fine.
        c.note_read(80, 8, 3);
        assert!(c.violations().is_empty());
        // Reading the ghost bytes fires, once.
        c.note_read(64, 8, 4);
        c.note_read(64, 8, 5);
        let v = c.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, PsanViolationKind::GhostRead);
        assert_eq!(v[0].offset, 64);
    }

    #[test]
    fn overwriting_ghost_bytes_clears_them() {
        let c = cell();
        c.note_write(64, 8, 1);
        c.note_crash(&[(1, true)], 2);
        c.note_write(64, 8, 3); // this boot rewrites the bytes
        assert!(!c.has_ghost(64));
        c.note_read(64, 8, 4);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn waiver_suppresses_ghost_reads() {
        let c = cell();
        c.note_write(64, 8, 1);
        c.note_crash(&[(1, true)], 2);
        c.waive(64, 8);
        c.note_read(64, 8, 3);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn early_publish_fires_on_dirty_target_and_passes_on_durable() {
        let c = cell();
        c.register_publish_range(0, 64, 64);
        // Target record at 256 written but not persisted.
        c.note_write(256, 48, 1);
        c.note_cas_publish(8, &256u64.to_le_bytes(), 2);
        let v = c.violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0].kind,
            PsanViolationKind::EarlyPublish { published: 256 }
        ));
        assert_eq!(v[0].offset, 256);

        // Once durable, the same publish is clean.
        let c = cell();
        c.register_publish_range(0, 64, 64);
        c.note_write(256, 48, 1);
        c.note_persist_line(4, 2);
        c.note_flush_complete(2);
        c.note_cas_publish(8, &256u64.to_le_bytes(), 3);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn cas_outside_publish_ranges_is_ignored() {
        let c = cell();
        c.register_publish_range(0, 64, 64);
        c.note_write(256, 48, 1);
        // CAS at offset 128 is outside the registered range.
        c.note_cas_publish(128, &256u64.to_le_bytes(), 2);
        assert!(c.violations().is_empty());
        // Null publishes are ignored too.
        c.note_cas_publish(8, &0u64.to_le_bytes(), 3);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn root_swap_checks_declared_commit_extents() {
        let c = cell();
        c.note_write(512, 128, 1);
        c.declare_commit(512, 128);
        c.note_root_swap(512, 4096, 2);
        let v = c.violations();
        assert_eq!(v.len(), 2, "both dirty lines of the extent flagged");
        assert!(v
            .iter()
            .all(|x| x.kind == PsanViolationKind::UnorderedCommit));
        // The declaration is consumed: a later swap re-checks nothing.
        let before = c.violations().len();
        c.note_root_swap(512, 4096, 3);
        // Fallback checks the pointer's line, still dirty -> deduped.
        assert_eq!(c.violations().len(), before);
    }

    #[test]
    fn root_swap_without_declaration_falls_back_to_pointer_line() {
        let c = cell();
        c.note_write(512, 8, 1);
        c.note_root_swap(512, 4096, 2);
        assert_eq!(c.violations().len(), 1);
        // Out-of-range pointers are ignored (not this region's swap).
        let c = cell();
        c.note_root_swap(1 << 40, 4096, 1);
        assert!(c.violations().is_empty());
    }

    #[test]
    fn check_durable_flags_dirty_spans() {
        let c = cell();
        c.note_write(128, 64, 1);
        c.check_durable(128, 64, 2);
        assert_eq!(c.violations().len(), 1);
        assert_eq!(c.violations()[0].kind, PsanViolationKind::UnorderedCommit);
    }

    #[test]
    fn op_labels_nest_and_attach_to_violations() {
        assert_eq!(current_op_label(), "unlabeled");
        let c = cell();
        {
            let _outer = op_label("outer");
            assert_eq!(current_op_label(), "outer");
            {
                let _inner = op_label("inner");
                assert_eq!(current_op_label(), "inner");
                c.note_write(128, 8, 1);
                c.check_durable(128, 8, 2);
            }
            assert_eq!(current_op_label(), "outer");
        }
        assert_eq!(current_op_label(), "unlabeled");
        let v = c.violations();
        assert_eq!(v[0].op_label, "inner");
        assert!(v[0].history.iter().any(|h| h.contains("[inner]")));
    }

    #[test]
    fn take_violations_drains_and_resets_dedup() {
        let c = cell();
        c.note_write(0, 8, 1);
        c.check_durable(0, 8, 2);
        assert_eq!(c.take_violations().len(), 1);
        assert!(c.violations().is_empty());
        c.check_durable(0, 8, 3);
        assert_eq!(c.violation_count(), 1, "dedup reset with the drain");
    }

    #[test]
    fn violation_display_is_readable() {
        let c = cell();
        c.set_label("shard-3");
        assert_eq!(c.label(), "shard-3");
        let _g = op_label("kv.compact");
        c.note_write(256, 8, 7);
        c.check_durable(256, 8, 9);
        let s = c.violations()[0].to_string();
        assert!(s.contains("psan[shard-3]"), "{s}");
        assert!(s.contains("unordered-commit"), "{s}");
        assert!(s.contains("kv.compact"), "{s}");
        assert!(s.contains("0x100"), "{s}");
    }
}
