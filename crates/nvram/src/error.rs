//! Error type for emulated-NVRAM operations.

use std::error::Error;
use std::fmt;

/// Errors returned by [`PMem`](crate::PMem) operations.
///
/// The most important variant is [`MemError::Crashed`]: once a crash has
/// been injected (by a fail-point or by [`PMem::crash_now`](crate::PMem::crash_now)),
/// every subsequent access fails with it. Callers are expected to unwind
/// to their scheduler loop, exactly as a killed process would stop
/// executing — the runtime then reopens the region and runs recovery.
#[derive(Debug)]
pub enum MemError {
    /// The region is in the crashed state; no access is possible until
    /// the region is reopened.
    Crashed,
    /// An access fell outside the mapped region.
    OutOfBounds {
        /// Start offset of the attempted access.
        offset: u64,
        /// Length of the attempted access in bytes.
        len: usize,
        /// Total region length in bytes.
        region_len: usize,
    },
    /// A zero-length region or other invalid construction parameter.
    InvalidConfig(String),
    /// The backing file could not be created, read or written.
    Io(std::io::Error),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Crashed => write!(f, "region is crashed; reopen it to recover"),
            MemError::OutOfBounds {
                offset,
                len,
                region_len,
            } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds region of {region_len} bytes"
            ),
            MemError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MemError::Io(e) => write!(f, "backing file I/O failed: {e}"),
        }
    }
}

impl Error for MemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MemError {
    fn from(e: std::io::Error) -> Self {
        MemError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<MemError> = vec![
            MemError::Crashed,
            MemError::OutOfBounds {
                offset: 10,
                len: 4,
                region_len: 8,
            },
            MemError::InvalidConfig("len must be positive".into()),
            MemError::Io(std::io::Error::other("boom")),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn io_error_has_source() {
        let e = MemError::Io(std::io::Error::other("boom"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&MemError::Crashed).is_none());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", MemError::Crashed).is_empty());
    }
}
