//! The persisted root-swap primitive: a double-buffered pointer cell
//! whose update commits with a single-line selector flip.
//!
//! Reallocating a persistent object (compacting a log into a fresh
//! segment, resharding a region, growing a table) always ends the same
//! way: a new copy of the object exists somewhere else, and *one*
//! persisted store must atomically re-root every future boot onto it.
//! A multi-word root (sequence number + pointer) cannot be updated
//! atomically by a single write, so [`RootCell`] uses the classic A/B
//! scheme: two slots, each holding a `(seq, ptr)` pair, plus a one-word
//! selector naming the live slot. [`RootCell::swap`] writes the whole
//! next root into the *inactive* slot, persists it, and only then flips
//! (and persists) the selector:
//!
//! ```text
//!  base+0   magic
//!  base+8   selector           (0 or 1 — the single-line commit point)
//!  base+16  slot 0: seq, ptr
//!  base+32  slot 1: seq, ptr
//! ```
//!
//! Because the selector is one 8-byte word inside one cache line, it
//! persists atomically under this crate's crash model: a crash at *any*
//! moment of a swap leaves the cell naming either the complete old root
//! or the complete new root — never a mix. That is the whole crash
//! contract a generational store needs: everything reachable from the
//! new root must be durable before `swap` is called, and recovery reads
//! whichever root won.

use crate::{MemError, PMem, POffset};

const ROOTSWAP_MAGIC: u64 = 0x5053_524F_4F54_5357; // "PSROOTSW"

const OFF_MAGIC: u64 = 0;
const OFF_SELECTOR: u64 = 8;
const OFF_SLOTS: u64 = 16;
const SLOT_STRIDE: u64 = 16;

/// Bytes of NVRAM a [`RootCell`] occupies (keep it line-aligned so the
/// selector flip is single-line).
pub const ROOT_CELL_LEN: u64 = 64;

/// A crash-atomic `(seq, ptr)` root: double-buffered slots committed by
/// a single persisted selector flip. Cheap to clone; clones share the
/// cell. See the [module docs](self) for the layout and crash contract.
///
/// # Example
///
/// ```
/// use pstack_nvram::{PMemBuilder, POffset, RootCell};
///
/// # fn main() -> Result<(), pstack_nvram::MemError> {
/// let pmem = PMemBuilder::new().len(4096).build_in_memory();
/// let cell = RootCell::format(pmem.clone(), POffset::new(128), 0, 0x1000)?;
/// assert_eq!(cell.current()?, (0, 0x1000));
/// cell.swap(1, 0x2000)?;
/// assert_eq!(cell.current()?, (1, 0x2000));
/// // The committed root survives a crash.
/// pmem.crash_now(7, 0.0);
/// let cell = RootCell::open(pmem.reopen()?, POffset::new(128))?;
/// assert_eq!(cell.current()?, (1, 0x2000));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RootCell {
    pmem: PMem,
    base: POffset,
}

impl RootCell {
    /// Formats a cell at `base` holding the initial root `(seq, ptr)`
    /// in slot 0, and persists it.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn format(pmem: PMem, base: POffset, seq: u64, ptr: u64) -> Result<Self, MemError> {
        pmem.write_u64(base + OFF_SELECTOR, 0)?;
        pmem.write_u64(base + OFF_SLOTS, seq)?;
        pmem.write_u64(base + (OFF_SLOTS + 8), ptr)?;
        pmem.write_u64(base + OFF_MAGIC, ROOTSWAP_MAGIC)?;
        if !pmem.is_eager_flush() {
            // On an eager region every write above is already durable;
            // flushing again would only burn a redundant round-trip
            // (PSan's redundant-persist diagnostic flagged this).
            pmem.flush(base, ROOT_CELL_LEN as usize)?;
        }
        Ok(RootCell { pmem, base })
    }

    /// Re-attaches to a cell previously formatted at `base`.
    ///
    /// # Errors
    ///
    /// [`MemError::InvalidConfig`] on a bad magic word or an
    /// out-of-range selector.
    pub fn open(pmem: PMem, base: POffset) -> Result<Self, MemError> {
        let magic = pmem.read_u64(base + OFF_MAGIC)?;
        if magic != ROOTSWAP_MAGIC {
            return Err(MemError::InvalidConfig(format!(
                "bad root-cell magic {magic:#x} at {base}"
            )));
        }
        let cell = RootCell { pmem, base };
        cell.selector()?;
        Ok(cell)
    }

    /// The cell's base offset.
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    fn selector(&self) -> Result<u64, MemError> {
        let sel = self.pmem.read_u64(self.base + OFF_SELECTOR)?;
        if sel > 1 {
            return Err(MemError::InvalidConfig(format!(
                "root cell at {} has selector {sel} (corrupt)",
                self.base
            )));
        }
        Ok(sel)
    }

    fn slot_off(&self, slot: u64) -> POffset {
        self.base + (OFF_SLOTS + slot * SLOT_STRIDE)
    }

    /// The committed root `(seq, ptr)`.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors, or [`MemError::InvalidConfig`] on a
    /// corrupt selector.
    pub fn current(&self) -> Result<(u64, u64), MemError> {
        let slot = self.slot_off(self.selector()?);
        Ok((self.pmem.read_u64(slot)?, self.pmem.read_u64(slot + 8u64)?))
    }

    /// Commits a new root: writes `(seq, ptr)` into the inactive slot,
    /// persists it, then flips and persists the selector. The flip is
    /// the commit point — a crash anywhere in this method leaves the
    /// cell naming either the old root or the new one, complete.
    ///
    /// The caller must have made everything reachable from `ptr`
    /// durable *before* calling; the cell orders only its own writes.
    ///
    /// # Errors
    ///
    /// A propagated crash (re-read [`RootCell::current`] after restart
    /// to learn which root won), or other NVRAM errors.
    pub fn swap(&self, seq: u64, ptr: u64) -> Result<(), MemError> {
        let next = 1 - self.selector()?;
        let slot = self.slot_off(next);
        self.pmem.write_u64(slot, seq)?;
        self.pmem.write_u64(slot + 8u64, ptr)?;
        let eager = self.pmem.is_eager_flush();
        if !eager {
            self.pmem.flush(slot, SLOT_STRIDE as usize)?;
        }
        // The selector flip below is the commit point: under PSan,
        // everything the caller declared reachable from the new root
        // (or, undeclared, the line at `ptr`) must be durable *now*.
        self.pmem.psan_note_root_swap(ptr);
        self.pmem.write_u64(self.base + OFF_SELECTOR, next)?;
        if !eager {
            self.pmem.flush(self.base + OFF_SELECTOR, 8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailPlan, PMemBuilder};

    fn buffered() -> PMem {
        // PSan shadows every rootswap test: the cell's own protocol
        // must never trip the sanitizer.
        PMemBuilder::new()
            .len(4096)
            .line_size(64)
            .psan(true)
            .build_in_memory()
    }

    #[test]
    fn format_open_swap_round_trip() {
        let p = buffered();
        let cell = RootCell::format(p.clone(), POffset::new(64), 3, 300).unwrap();
        assert_eq!(cell.current().unwrap(), (3, 300));
        cell.swap(4, 400).unwrap();
        cell.swap(5, 500).unwrap();
        assert_eq!(cell.current().unwrap(), (5, 500));
        let cell2 = RootCell::open(p, POffset::new(64)).unwrap();
        assert_eq!(cell2.current().unwrap(), (5, 500));
        assert_eq!(cell2.base(), POffset::new(64));
    }

    #[test]
    fn open_rejects_garbage() {
        let p = buffered();
        assert!(matches!(
            RootCell::open(p, POffset::new(0)),
            Err(MemError::InvalidConfig(_))
        ));
    }

    #[test]
    fn swap_crash_points_leave_old_or_new_root_never_a_mix() {
        // Enumerate every persistence event inside swap(): after any
        // crash the reopened cell must read a *complete* root — the old
        // pair or the new pair, never old seq with new ptr.
        let probe = || {
            let p = buffered();
            let cell = RootCell::format(p.clone(), POffset::new(64), 7, 700).unwrap();
            (p, cell)
        };
        let (p, cell) = probe();
        let e0 = p.events();
        cell.swap(8, 800).unwrap();
        let total = p.events() - e0;
        assert!(total >= 3, "slot writes + slot persist + selector persist");

        for k in 0..total {
            let (p, cell) = probe();
            p.arm_failpoint(FailPlan::after_events(k));
            let err = cell.swap(8, 800).unwrap_err();
            assert!(matches!(err, MemError::Crashed), "crash at event {k}");
            let p2 = p.reopen().unwrap();
            let cell2 = RootCell::open(p2.clone(), POffset::new(64)).unwrap();
            let got = cell2.current().unwrap();
            assert!(
                got == (7, 700) || got == (8, 800),
                "crash at event {k}: torn root {got:?}"
            );
            assert!(
                p2.psan_violations().is_empty(),
                "crash at event {k}: PSan flagged the correct protocol"
            );
        }
    }

    #[test]
    fn psan_catches_a_swap_over_a_dirty_commit_extent() {
        let p = buffered();
        let cell = RootCell::format(p.clone(), POffset::new(64), 0, 0).unwrap();
        // New-generation block written but never flushed...
        p.write(POffset::new(1024), &[7u8; 128]).unwrap();
        p.psan_declare_commit(POffset::new(1024), 128);
        // ...and committed anyway: the sanitizer must object.
        cell.swap(1, 1024).unwrap();
        let v = p.psan_violations();
        assert!(
            v.iter().any(
                |x| matches!(x.kind, crate::psan::PsanViolationKind::UnorderedCommit)
                    && x.offset == 1024
            ),
            "expected an unordered-commit violation at 1024: {v:?}"
        );
        // The same swap with the extent flushed first is clean.
        let p = buffered();
        let cell = RootCell::format(p.clone(), POffset::new(64), 0, 0).unwrap();
        p.write(POffset::new(1024), &[7u8; 128]).unwrap();
        p.flush(POffset::new(1024), 128).unwrap();
        p.psan_declare_commit(POffset::new(1024), 128);
        cell.swap(1, 1024).unwrap();
        assert!(p.psan_violations().is_empty());
    }

    #[test]
    fn swap_works_on_eager_regions_too() {
        let p = PMemBuilder::new()
            .len(4096)
            .eager_flush(true)
            .build_in_memory();
        let cell = RootCell::format(p.clone(), POffset::new(0), 0, 64).unwrap();
        cell.swap(1, 128).unwrap();
        p.crash_now(0, 0.0);
        let cell = RootCell::open(p.reopen().unwrap(), POffset::new(0)).unwrap();
        assert_eq!(cell.current().unwrap(), (1, 128));
    }

    #[test]
    fn stripe_exposes_per_shard_cells() {
        let stripe = PMemBuilder::new().len(4096).build_striped(3);
        for s in 0..3u64 {
            RootCell::format(
                stripe.region(s as usize).clone(),
                POffset::new(64),
                s,
                100 * s,
            )
            .unwrap();
        }
        for s in 0..3u64 {
            let cell = stripe.root_cell(s as usize, POffset::new(64)).unwrap();
            assert_eq!(cell.current().unwrap(), (s, 100 * s));
            cell.swap(s + 1, 100 * s + 1).unwrap();
        }
        assert_eq!(
            stripe
                .root_cell(1, POffset::new(64))
                .unwrap()
                .current()
                .unwrap(),
            (2, 101)
        );
    }
}
