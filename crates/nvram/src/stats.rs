//! Access statistics for the emulated NVRAM.
//!
//! The paper's design arguments are in part *flush-count* arguments:
//! a stack push costs one frame flush plus exactly one single-byte
//! marker flush; a pop costs one single-byte flush (§3.4). The counters
//! here let tests and benchmarks check those claims directly
//! (experiment E13 in DESIGN.md).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters attached to a [`PMem`](crate::PMem) region.
#[derive(Debug, Default)]
pub struct MemStats {
    pub(crate) reads: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) flush_calls: AtomicU64,
    pub(crate) lines_persisted: AtomicU64,
    pub(crate) persists: AtomicU64,
    pub(crate) coalesced_lines: AtomicU64,
    pub(crate) redundant_persists: AtomicU64,
    pub(crate) async_flushes: AtomicU64,
    pub(crate) elided_lines: AtomicU64,
    pub(crate) async_latency_charged_ns: AtomicU64,
    pub(crate) async_latency_waited_ns: AtomicU64,
    pub(crate) fences: AtomicU64,
    pub(crate) cas_ops: AtomicU64,
    pub(crate) crashes: AtomicU64,
}

impl MemStats {
    /// Captures a point-in-time copy of all counters.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            flush_calls: self.flush_calls.load(Ordering::Relaxed),
            lines_persisted: self.lines_persisted.load(Ordering::Relaxed),
            persists: self.persists.load(Ordering::Relaxed),
            coalesced_lines: self.coalesced_lines.load(Ordering::Relaxed),
            redundant_persists: self.redundant_persists.load(Ordering::Relaxed),
            async_flushes: self.async_flushes.load(Ordering::Relaxed),
            elided_lines: self.elided_lines.load(Ordering::Relaxed),
            async_latency_charged_ns: self.async_latency_charged_ns.load(Ordering::Relaxed),
            async_latency_waited_ns: self.async_latency_waited_ns.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            cas_ops: self.cas_ops.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`MemStats`] counters.
///
/// Supports subtraction, so a test can measure the cost of a single
/// operation:
///
/// ```
/// use pstack_nvram::PMemBuilder;
///
/// # fn main() -> Result<(), pstack_nvram::MemError> {
/// let pmem = PMemBuilder::new().len(1024).build_in_memory();
/// let before = pmem.stats().snapshot();
/// pmem.write_u8(64.into(), 1)?;
/// pmem.flush(64.into(), 1)?;
/// let delta = pmem.stats().snapshot() - before;
/// assert_eq!(delta.writes, 1);
/// assert_eq!(delta.lines_persisted, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations (including compare-exchange attempts).
    pub writes: u64,
    /// Total bytes passed to write operations.
    pub bytes_written: u64,
    /// Number of `flush` calls.
    pub flush_calls: u64,
    /// Number of individual cache lines made durable.
    pub lines_persisted: u64,
    /// Number of persist round-trips: flush/write operations that made
    /// at least one line durable. This is the group-commit headline
    /// metric — batching many record persists into one `flush` call
    /// leaves `lines_persisted` unchanged but collapses `persists`.
    pub persists: u64,
    /// Lines made durable *beyond the first* within a single persist
    /// round-trip — durability work amortized by coalescing
    /// (`lines_persisted - persists` when every persist lands ≥ 1
    /// line). Multiply by the line size for coalesced bytes.
    pub coalesced_lines: u64,
    /// Flush calls over a non-empty range that persisted **zero**
    /// lines: every covered line was already durable. PSan's
    /// *redundant persist* diagnostic class — wasted round-trips a
    /// protocol could elide (e.g. unconditional flushes on an
    /// eager-flush region).
    pub redundant_persists: u64,
    /// Asynchronous flush commands issued (flights queued by
    /// [`PMem::flush_async`](crate::PMem::flush_async)); fully-elided
    /// issues count as `redundant_persists` instead.
    pub async_flushes: u64,
    /// Individual line persists elided because the line was already
    /// staged in an in-flight async flush (FliT-style per-line durable
    /// tracking) — durability work the pipeline saved outright.
    pub elided_lines: u64,
    /// Nanoseconds of device round-trip latency charged to issued
    /// flights. With `async_latency_waited_ns` this yields the overlap
    /// fraction: `1 - waited / charged` is the share of flush latency
    /// hidden behind useful work.
    pub async_latency_charged_ns: u64,
    /// Nanoseconds callers actually slept in awaits — the part of the
    /// charged latency the pipeline failed to hide.
    pub async_latency_waited_ns: u64,
    /// Number of persistence fences.
    pub fences: u64,
    /// Number of compare-exchange operations.
    pub cas_ops: u64,
    /// Number of injected crashes.
    pub crashes: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;

    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
            bytes_written: self.bytes_written - rhs.bytes_written,
            flush_calls: self.flush_calls - rhs.flush_calls,
            lines_persisted: self.lines_persisted - rhs.lines_persisted,
            persists: self.persists - rhs.persists,
            coalesced_lines: self.coalesced_lines - rhs.coalesced_lines,
            redundant_persists: self.redundant_persists - rhs.redundant_persists,
            async_flushes: self.async_flushes - rhs.async_flushes,
            elided_lines: self.elided_lines - rhs.elided_lines,
            async_latency_charged_ns: self.async_latency_charged_ns - rhs.async_latency_charged_ns,
            async_latency_waited_ns: self.async_latency_waited_ns - rhs.async_latency_waited_ns,
            fences: self.fences - rhs.fences,
            cas_ops: self.cas_ops - rhs.cas_ops,
            crashes: self.crashes - rhs.crashes,
        }
    }
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;

    /// Aggregates counters across regions — the per-stripe total a
    /// sharded system reports (see [`PMemStripe`](crate::PMemStripe)).
    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            bytes_written: self.bytes_written + rhs.bytes_written,
            flush_calls: self.flush_calls + rhs.flush_calls,
            lines_persisted: self.lines_persisted + rhs.lines_persisted,
            persists: self.persists + rhs.persists,
            coalesced_lines: self.coalesced_lines + rhs.coalesced_lines,
            redundant_persists: self.redundant_persists + rhs.redundant_persists,
            async_flushes: self.async_flushes + rhs.async_flushes,
            elided_lines: self.elided_lines + rhs.elided_lines,
            async_latency_charged_ns: self.async_latency_charged_ns + rhs.async_latency_charged_ns,
            async_latency_waited_ns: self.async_latency_waited_ns + rhs.async_latency_waited_ns,
            fences: self.fences + rhs.fences,
            cas_ops: self.cas_ops + rhs.cas_ops,
            crashes: self.crashes + rhs.crashes,
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads={} writes={} bytes_written={} flush_calls={} lines_persisted={} \
             persists={} coalesced_lines={} redundant_persists={} async_flushes={} \
             elided_lines={} async_latency_charged_ns={} async_latency_waited_ns={} \
             fences={} cas_ops={} crashes={}",
            self.reads,
            self.writes,
            self.bytes_written,
            self.flush_calls,
            self.lines_persisted,
            self.persists,
            self.coalesced_lines,
            self.redundant_persists,
            self.async_flushes,
            self.elided_lines,
            self.async_latency_charged_ns,
            self.async_latency_waited_ns,
            self.fences,
            self.cas_ops,
            self.crashes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_subtraction() {
        let stats = MemStats::default();
        MemStats::bump(&stats.writes);
        let a = stats.snapshot();
        MemStats::bump(&stats.writes);
        MemStats::add(&stats.bytes_written, 16);
        let b = stats.snapshot();
        let d = b - a;
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 16);
        assert_eq!(d.reads, 0);
    }

    #[test]
    fn display_lists_every_counter() {
        let s = StatsSnapshot::default().to_string();
        for key in [
            "reads=",
            "writes=",
            "bytes_written=",
            "flush_calls=",
            "lines_persisted=",
            "persists=",
            "coalesced_lines=",
            "redundant_persists=",
            "async_flushes=",
            "elided_lines=",
            "async_latency_charged_ns=",
            "async_latency_waited_ns=",
            "fences=",
            "cas_ops=",
            "crashes=",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
