//! E16: persistent-heap allocator costs — the substrate every unbounded
//! stack block, big return value and recoverable object sits on.
//!
//! * `heap/alloc_free_pair` — steady-state cost of one allocation
//!   immediately freed, by size class.
//! * `heap/open_rebuild` — the recovery-boot cost of rebuilding the
//!   volatile free list by walking block headers, as a function of how
//!   fragmented the heap is (the design trades this walk for having no
//!   persistent free-list pointers to corrupt).
//! * `heap/alloc_aligned` — cache-line-aligned allocations (the path
//!   all §5 objects use so their cells never straddle lines).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstack_heap::PHeap;
use pstack_nvram::{PMemBuilder, POffset};

fn region(len: usize) -> pstack_nvram::PMem {
    PMemBuilder::new().len(len).build_in_memory()
}

fn bench_alloc_free_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap/alloc_free_pair");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for size in [32usize, 256, 4096, 65536] {
        let pmem = region(1 << 24);
        let heap = PHeap::format(pmem, POffset::new(0), 1 << 24).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let p = heap.alloc(size).unwrap();
                heap.free(p).unwrap();
            });
        });
    }
    g.finish();
}

fn bench_open_rebuild(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap/open_rebuild");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for live_blocks in [16usize, 256, 2048] {
        let pmem = region(1 << 24);
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 24).unwrap();
        // Fragment the heap: allocate 2N blocks, free every other one.
        let blocks: Vec<_> = (0..live_blocks * 2)
            .map(|_| heap.alloc(128).unwrap())
            .collect();
        for chunk in blocks.chunks(2) {
            heap.free(chunk[0]).unwrap();
        }
        g.bench_with_input(
            BenchmarkId::from_parameter(live_blocks),
            &live_blocks,
            |b, _| {
                b.iter(|| {
                    let reopened = PHeap::open(pmem.clone(), POffset::new(0)).unwrap();
                    std::hint::black_box(reopened.stats());
                });
            },
        );
    }
    g.finish();
}

fn bench_alloc_aligned(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap/alloc_aligned");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let pmem = region(1 << 24);
    let heap = PHeap::format(pmem, POffset::new(0), 1 << 24).unwrap();
    g.bench_function("64B_align", |b| {
        b.iter(|| {
            let p = heap.alloc_aligned(256, 64).unwrap();
            assert!(p.is_aligned(64));
            heap.free(p).unwrap();
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_alloc_free_pair,
    bench_open_rebuild,
    bench_alloc_aligned
);
criterion_main!(benches);
