//! E18: compaction pause and persist economy of the generational log.
//!
//! Compaction rewrites the **live** heads into a fresh generation and
//! commits with one root swap, so its persist bill must be O(live
//! keys) — one coalesced block flush, two root-cell round-trips, one
//! retirement mark — and never O(history). Two views:
//!
//! * `kv_compaction/pause` — wall-clock compaction pause on a buffered
//!   region with an emulated 50 µs per-round-trip persist latency
//!   (persist costs dominate, as on real PM). The sweep crosses live
//!   sets with history depths; the shim's new σ/±(95%) fields say
//!   whether two pauses actually differ, and the `Comparison` lines at
//!   the end show history depth moving the pause far less than live
//!   size.
//! * the **counters** section — persist round-trips, lines persisted
//!   and their per-live-key ratios for each configuration, read
//!   straight from the `PMem` stats (persists/live-key collapses as
//!   the live set grows: the round-trip count is constant and only
//!   lines scale).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Comparison, Criterion, Throughput};
use pstack_heap::PHeap;
use pstack_kv::{KvBatchOp, KvVariant, PKvStore};
use pstack_nvram::{PMem, PMemBuilder, POffset};

/// Emulated per-round-trip persist latency (same knob as the sharded
/// sweep): makes the persist economy visible in wall-clock.
const LATENCY: Duration = Duration::from_micros(50);

/// (live keys, history mutations) grid.
const GRID: [(u64, u64); 3] = [(64, 512), (64, 4096), (512, 4096)];

/// Builds a buffered store holding `hist` published mutations over
/// `live` distinct keys (live set = exactly the `live` keys), ready to
/// compact.
fn build_filled(live: u64, hist: u64, latency: Duration) -> (PMem, PHeap, PKvStore) {
    let log_cap = hist + 16;
    let region_len = (PKvStore::required_len(64, log_cap) * 4 + (1 << 16)).next_power_of_two();
    let pmem = PMemBuilder::new()
        .len(region_len)
        .flush_latency(latency)
        .build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(0), region_len as u64).unwrap();
    let kv = PKvStore::format(pmem.clone(), &heap, 64, log_cap, KvVariant::Nsrl).unwrap();
    let ops: Vec<KvBatchOp> = (0..hist)
        .map(|i| KvBatchOp::Put {
            pid: 0,
            seq: i + 1,
            key: i % live,
            value: i as i64,
        })
        .collect();
    for chunk in ops.chunks(64) {
        assert!(kv
            .apply_batch(chunk)
            .unwrap()
            .iter()
            .all(|o| o.took_effect()));
    }
    (pmem, heap, kv)
}

fn bench_pause(c: &mut Criterion) {
    let mut measurements = Vec::new();
    {
        let mut g = c.benchmark_group("kv_compaction");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(50))
            .measurement_time(Duration::from_millis(400));
        for &(live, hist) in &GRID {
            g.throughput(Throughput::Elements(live));
            let m = g.bench_measured(
                BenchmarkId::new("pause", format!("live={live},hist={hist}")),
                |b| {
                    b.iter_with_setup(
                        || build_filled(live, hist, LATENCY),
                        |(_pmem, heap, kv)| kv.compact(&heap).unwrap(),
                    );
                },
            );
            measurements.push((live, hist, m));
        }
        g.finish();
    }

    // History depth must barely move the pause; live size may.
    let find = |live: u64, hist: u64| {
        measurements
            .iter()
            .find(|&&(l, h, _)| l == live && h == hist)
            .map(|&(_, _, m)| m)
            .expect("grid point measured")
    };
    let base = find(64, 512);
    let cmp = Comparison::new("kv_compaction/pause", "live=64,hist=512", base);
    cmp.versus("live=64,hist=4096 (8× history)", find(64, 4096));
    cmp.versus("live=512,hist=4096 (8× live)", find(512, 4096));

    // The counters: the persist bill itself, per live key. No latency
    // here — this is pure accounting.
    println!("\nkv_compaction persist economy (per compaction):");
    for &(live, hist) in &GRID {
        let (pmem, heap, kv) = build_filled(live, hist, Duration::ZERO);
        let before = pmem.stats().snapshot();
        let stats = kv.compact(&heap).unwrap();
        let delta = pmem.stats().snapshot() - before;
        assert_eq!(stats.carried, live);
        println!(
            "  live={live:<4} hist={hist:<5} persists={:<3} lines={:<5} \
             persists/live-key={:.3} lines/live-key={:.2}",
            delta.persists,
            delta.lines_persisted,
            delta.persists as f64 / live as f64,
            delta.lines_persisted as f64 / live as f64,
        );
    }
}

criterion_group!(benches, bench_pause);
criterion_main!(benches);
