//! E12: fixed vs resizable-array vs linked-list stacks (Appendix A):
//! steady-state ops, deep growth (amortizing relocations / chaining),
//! and the shrink ablation for the resizable variant.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstack_bench::{make_stack, region_with_heap};
use pstack_core::{PersistentStack, StackKind, VecStack};
use pstack_nvram::POffset;

const KINDS: [StackKind; 3] = [StackKind::Fixed, StackKind::Vec, StackKind::List];

fn bench_steady_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_variants/steady_push_pop");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // Warm stacks at a fixed depth where no variant needs to grow.
    for kind in KINDS {
        let (pmem, heap) = region_with_heap(1 << 21);
        let mut stack = make_stack(kind, &pmem, &heap, 16 * 1024);
        for i in 0..8u64 {
            stack.push(i, &[0u8; 24]).unwrap();
        }
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, _| {
            b.iter(|| {
                stack.push(99, &[5u8; 24]).unwrap();
                stack.pop().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_deep_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_variants/grow_then_drain");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    // N pushes followed by N pops from tiny initial capacity: the
    // unbounded variants pay their growth machinery (array copies vs
    // block chaining), the fixed variant is the no-growth baseline.
    for depth in [64usize, 512] {
        for kind in KINDS {
            let id = BenchmarkId::new(format!("{kind}"), depth);
            g.bench_with_input(id, &(kind, depth), |b, &(kind, depth)| {
                b.iter_with_setup(
                    || {
                        let (pmem, heap) = region_with_heap(1 << 22);
                        // Fixed gets full capacity; unbounded start tiny.
                        let cap = match kind {
                            StackKind::Fixed => 1 << 20,
                            _ => 128,
                        };
                        make_stack(kind, &pmem, &heap, cap)
                    },
                    |mut stack| {
                        for i in 0..depth {
                            stack.push(i as u64, &[0u8; 24]).unwrap();
                        }
                        for _ in 0..depth {
                            stack.pop().unwrap();
                        }
                    },
                );
            });
        }
    }
    g.finish();
}

fn bench_vec_shrink_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_variants/vec_shrink_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    // Appendix A.2 shrinks when capacity > 4 × size; measure the cost
    // of that policy against never shrinking.
    for (name, shrink) in [("shrink_on", true), ("shrink_off", false)] {
        g.bench_function(name, |b| {
            b.iter_with_setup(
                || {
                    let (pmem, heap) = region_with_heap(1 << 22);
                    let mut s = VecStack::format(pmem, heap, POffset::new(0), 128).unwrap();
                    s.set_shrink(shrink);
                    s
                },
                |mut stack| {
                    for i in 0..256u64 {
                        stack.push(i, &[0u8; 24]).unwrap();
                    }
                    for _ in 0..256 {
                        stack.pop().unwrap();
                    }
                },
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_deep_growth,
    bench_vec_shrink_ablation
);
criterion_main!(benches);
