//! E15: recoverable-queue operation and recovery-scan costs.
//!
//! * `queue/enqueue_dequeue_pair` — steady-state cost of one enqueue
//!   immediately consumed by one dequeue (slot CAS + counter help +
//!   eager persists).
//! * `queue/recover_scan` — the price of the NSRL evidence scan as a
//!   function of how many slots are already occupied: recovery is
//!   linear in the touched prefix, which is the design trade-off for
//!   needing no helping matrix.
//! * `queue/contended_throughput` — items moved per second with 4
//!   producers and 2 consumers racing on one queue.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pstack_heap::PHeap;
use pstack_nvram::{PMemBuilder, POffset};
use pstack_recoverable::{QueueVariant, RecoverableQueue};

fn eager_region(len: usize) -> (pstack_nvram::PMem, PHeap) {
    let pmem = PMemBuilder::new()
        .len(len)
        .eager_flush(true)
        .build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(0), len as u64).unwrap();
    (pmem, heap)
}

fn bench_enqueue_dequeue_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue/enqueue_dequeue_pair");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // The queue is a bounded log, so give the benchmark a large slot
    // budget and reformat when it runs out.
    let (_, heap) = eager_region(1 << 26);
    let capacity = 400_000u64;
    let queue =
        RecoverableQueue::format(heap.pmem().clone(), &heap, capacity, QueueVariant::Nsrl).unwrap();
    let mut seq = 0u64;
    g.bench_function("nsrl", |b| {
        b.iter(|| {
            seq += 1;
            if seq * 2 >= capacity {
                // Out of slots: this bench measures steady state, not
                // capacity exhaustion; stop enqueueing past the end.
                seq = capacity / 2;
            }
            let _ = queue.enqueue(0, seq, seq as i64).unwrap();
            let _ = queue.dequeue(1, seq).unwrap();
        });
    });
    g.finish();
}

fn bench_recover_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue/recover_scan");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for occupied in [16u64, 256, 4096] {
        let (_, heap) = eager_region(1 << 24);
        let queue =
            RecoverableQueue::format(heap.pmem().clone(), &heap, occupied + 8, QueueVariant::Nsrl)
                .unwrap();
        for i in 0..occupied {
            queue.enqueue(0, i + 1, i as i64).unwrap();
        }
        g.bench_with_input(BenchmarkId::from_parameter(occupied), &occupied, |b, _| {
            b.iter(|| {
                // Recover an operation that *did* linearize (tag found
                // at the end of the scan — the worst case).
                let done = queue.recover_enqueue(0, occupied, 0).unwrap();
                assert!(done);
            });
        });
    }
    g.finish();
}

fn bench_contended_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue/contended_throughput");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let items_per_producer = 128u64;
    let producers = 4u64;
    g.throughput(Throughput::Elements(items_per_producer * producers));
    g.bench_function("4p2c", |b| {
        b.iter(|| {
            let (_, heap) = eager_region(1 << 22);
            let queue = RecoverableQueue::format(
                heap.pmem().clone(),
                &heap,
                items_per_producer * producers,
                QueueVariant::Nsrl,
            )
            .unwrap();
            std::thread::scope(|s| {
                for p in 0..producers {
                    let queue = queue.clone();
                    s.spawn(move || {
                        for i in 0..items_per_producer {
                            queue.enqueue(p, i + 1, (p * 1000 + i) as i64).unwrap();
                        }
                    });
                }
                for cid in 0..2u64 {
                    let queue = queue.clone();
                    s.spawn(move || {
                        let mut got = 0u64;
                        let mut seq = 0u64;
                        while got < items_per_producer * producers / 2 {
                            seq += 1;
                            if queue.dequeue(100 + cid, seq).unwrap().is_some() {
                                got += 1;
                            }
                        }
                    });
                }
            });
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_enqueue_dequeue_pair,
    bench_recover_scan,
    bench_contended_throughput
);
criterion_main!(benches);
