//! E17: durable-backend ablation — what the paper's HDD deployment
//! costs relative to pure in-memory emulation.
//!
//! * `backend/persist_line` — cost of one write+flush (a single 64-byte
//!   line) on the in-memory backend, the write-through file backend,
//!   and the file backend with the kill-harness's modelled HDD latency.
//! * `backend/marker_flip` — the protocol's single-byte linearization
//!   event (§3.4) end to end on both backends: the absolute numbers
//!   differ by orders of magnitude, the *protocol cost in flushes* does
//!   not (E13 counts those).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pstack_core::{FixedStack, PersistentStack};
use pstack_nvram::{PMem, PMemBuilder, POffset};

fn file_region(tag: &str, delay_us: u64) -> (PMem, std::path::PathBuf) {
    let mut path = std::env::temp_dir();
    path.push(format!("pstack-bench-{tag}-{}.img", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let pmem = PMemBuilder::new()
        .len(1 << 20)
        .persist_delay(Duration::from_micros(delay_us))
        .build_file(&path)
        .unwrap();
    (pmem, path)
}

fn bench_persist_line(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend/persist_line");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let mem = PMemBuilder::new().len(1 << 20).build_in_memory();
    g.bench_function("memory", |b| {
        b.iter(|| {
            mem.write_u64(POffset::new(128), 7).unwrap();
            mem.flush(POffset::new(128), 8).unwrap();
        });
    });

    let (file, path) = file_region("line", 0);
    g.bench_function("file", |b| {
        b.iter(|| {
            file.write_u64(POffset::new(128), 7).unwrap();
            file.flush(POffset::new(128), 8).unwrap();
        });
    });
    drop(file);
    let _ = std::fs::remove_file(&path);

    // The kill harness's modelled HDD: 150 µs per persisted line.
    let (slow, path) = file_region("slow", 150);
    g.bench_function("file_hdd_model", |b| {
        b.iter(|| {
            slow.write_u64(POffset::new(128), 7).unwrap();
            slow.flush(POffset::new(128), 8).unwrap();
        });
    });
    drop(slow);
    let _ = std::fs::remove_file(&path);

    g.finish();
}

fn bench_marker_flip(c: &mut Criterion) {
    let mut g = c.benchmark_group("backend/marker_flip");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let mem = PMemBuilder::new().len(1 << 20).build_in_memory();
    let mut stack = FixedStack::format(mem, POffset::new(0), 1 << 19).unwrap();
    g.bench_function("memory", |b| {
        b.iter(|| {
            stack.push(1, &[7u8; 16]).unwrap();
            stack.pop().unwrap();
        });
    });

    let (file, path) = file_region("flip", 0);
    let mut stack = FixedStack::format(file, POffset::new(0), 1 << 19).unwrap();
    g.bench_function("file", |b| {
        b.iter(|| {
            stack.push(1, &[7u8; 16]).unwrap();
            stack.pop().unwrap();
        });
    });
    let _ = std::fs::remove_file(&path);

    g.finish();
}

criterion_group!(benches, bench_persist_line, bench_marker_flip);
criterion_main!(benches);
