//! E10: the serializability verifier runs in polynomial (near-linear)
//! time in the number of operations — the property that makes §5.1's
//! checking practical for large executions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pstack_verify::{check_serializability, CasHistory, CasOp};

/// A scrambled chain history of `n` successful ops plus `n / 4` failed
/// ones — worst-case connected input.
fn chain_history(n: usize, seed: u64) -> CasHistory {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops: Vec<CasOp> = (0..n as i64)
        .map(|i| CasOp {
            pid: 0,
            old: i,
            new: i + 1,
            success: true,
        })
        .collect();
    for _ in 0..n / 4 {
        ops.push(CasOp {
            pid: 1,
            old: -rng.random_range(1i64..1000),
            new: 0,
            success: false,
        });
    }
    // Fisher-Yates scramble.
    for i in (1..ops.len()).rev() {
        let j = rng.random_range(0..=i);
        ops.swap(i, j);
    }
    CasHistory::new(0, n as i64, ops)
}

/// A simulated random execution over a narrow domain (multigraph-heavy).
fn narrow_history(n: usize, seed: u64) -> CasHistory {
    let mut rng = SmallRng::seed_from_u64(seed);
    let init = rng.random_range(-10..=10);
    let mut register = init;
    let ops = (0..n)
        .map(|_| {
            let old = rng.random_range(-10..=10);
            let new = rng.random_range(-10..=10);
            let success = register == old;
            if success {
                register = new;
            }
            CasOp {
                pid: 0,
                old,
                new,
                success,
            }
        })
        .collect();
    CasHistory::new(init, register, ops)
}

fn bench_chain_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("verifier/chain_scaling");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [100usize, 1_000, 10_000, 50_000] {
        let h = chain_history(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                assert!(check_serializability(&h).is_serializable());
            });
        });
    }
    g.finish();
}

fn bench_narrow_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("verifier/narrow_scaling");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [100usize, 1_000, 10_000, 50_000] {
        let h = narrow_history(n, 11);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                assert!(check_serializability(&h).is_serializable());
            });
        });
    }
    g.finish();
}

fn bench_rejection_is_fast(c: &mut Criterion) {
    let mut g = c.benchmark_group("verifier/rejection");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // Degree violations are caught without building the path.
    let mut h = chain_history(10_000, 13);
    h.ops.push(CasOp {
        pid: 0,
        old: 0,
        new: 1,
        success: true,
    });
    g.bench_function("degree_violation_10k", |b| {
        b.iter(|| {
            assert!(!check_serializability(&h).is_serializable());
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_chain_scaling,
    bench_narrow_scaling,
    bench_rejection_is_fast
);
criterion_main!(benches);
