//! Recoverable-CAS costs: the NSRL algorithm vs the no-matrix variant
//! (what the evidence writes cost), the raw hardware CAS baseline, and
//! the recovery procedure itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pstack_heap::PHeap;
use pstack_nvram::{PMemBuilder, POffset};
use pstack_recoverable::{CasVariant, RecoverableCas};

fn eager_fixture(variant: CasVariant) -> RecoverableCas {
    let pmem = PMemBuilder::new()
        .len(1 << 18)
        .eager_flush(true)
        .build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 18).unwrap();
    RecoverableCas::format(pmem, &heap, 4, 0, variant).unwrap()
}

fn bench_successful_cas(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas/successful_op");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // A successful CAS followed by its inverse keeps the register
    // oscillating, so every iteration succeeds.
    for (name, variant) in [
        ("nsrl", CasVariant::Nsrl),
        ("no_matrix", CasVariant::NoMatrix),
    ] {
        let cas = eager_fixture(variant);
        let mut seq = 1u64;
        g.bench_function(name, |b| {
            b.iter(|| {
                assert!(cas.cas(0, 0, 1, seq).unwrap());
                assert!(cas.cas(1, 1, 0, seq + 1).unwrap());
                seq += 2;
            });
        });
    }
    g.finish();
}

fn bench_failed_cas(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas/failed_op");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    // Failed CAS never writes evidence or the register: both variants
    // should cost the same (one read).
    for (name, variant) in [
        ("nsrl", CasVariant::Nsrl),
        ("no_matrix", CasVariant::NoMatrix),
    ] {
        let cas = eager_fixture(variant);
        g.bench_function(name, |b| {
            b.iter(|| {
                assert!(!cas.cas(0, 555, 777, 1).unwrap());
            });
        });
    }
    g.finish();
}

fn bench_recover_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas/recover");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    // Path 1: value still in the register (cheapest confirmation).
    let cas = eager_fixture(CasVariant::Nsrl);
    cas.cas(0, 0, 5, 1).unwrap();
    g.bench_function("value_in_register", |b| {
        b.iter(|| assert!(cas.recover(0, 0, 5, 1).unwrap()));
    });
    // Path 2: value overwritten, evidence found in the matrix row scan.
    let cas = eager_fixture(CasVariant::Nsrl);
    cas.cas(0, 0, 5, 1).unwrap();
    cas.cas(1, 5, 9, 2).unwrap();
    g.bench_function("evidence_in_matrix", |b| {
        b.iter(|| assert!(cas.recover(0, 0, 5, 1).unwrap()));
    });
    // Path 3: never linearized and cannot re-apply (full scan + retry).
    let cas = eager_fixture(CasVariant::Nsrl);
    cas.cas(1, 0, 9, 1).unwrap();
    g.bench_function("reexecute_fails", |b| {
        b.iter(|| assert!(!cas.recover(0, 0, 5, 2).unwrap()));
    });
    g.finish();
}

fn bench_contended_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("cas/contended_chain");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    // 4 threads advancing a chain 0→1→…→N together: total throughput of
    // the whole contended workload.
    for (name, variant) in [
        ("nsrl", CasVariant::Nsrl),
        ("no_matrix", CasVariant::NoMatrix),
    ] {
        g.bench_function(name, |b| {
            b.iter_with_setup(
                || eager_fixture(variant),
                |cas| {
                    let steps = 64i64;
                    std::thread::scope(|s| {
                        for pid in 0..4usize {
                            let cas = cas.clone();
                            s.spawn(move || {
                                for step in 0..steps {
                                    loop {
                                        let cur = cas.read().unwrap();
                                        if cur > step {
                                            break;
                                        }
                                        if cur == step {
                                            let _ = cas.cas(
                                                pid,
                                                step,
                                                step + 1,
                                                (step * 4 + pid as i64) as u64 + 1,
                                            );
                                        }
                                        std::hint::spin_loop();
                                    }
                                }
                            });
                        }
                    });
                    assert_eq!(cas.read().unwrap(), 64);
                },
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_successful_cas,
    bench_failed_cas,
    bench_recover_paths,
    bench_contended_chain
);
criterion_main!(benches);
