//! E5: parallel vs serial recovery (§4.3 claims parallel recovery beats
//! an ordinary single-threaded recovery), swept over worker count and
//! per-stack frame depth.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstack_bench::crashed_system;
use pstack_core::RecoveryMode;

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery/parallel_vs_serial");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    // work = iterations of CPU work per recover dual: 0 measures the
    // bare stack walk (lock-bound in the simulator), 20_000 models
    // recover duals that actually complete interrupted operations.
    for work in [0u64, 20_000] {
        for depth in [16usize, 128] {
            for mode in [RecoveryMode::Serial, RecoveryMode::Parallel] {
                let label = match mode {
                    RecoveryMode::Serial => format!("serial_work{work}"),
                    RecoveryMode::Parallel => format!("parallel_work{work}"),
                };
                let id = BenchmarkId::new(label, depth);
                g.bench_with_input(id, &(mode, depth), |b, &(mode, depth)| {
                    b.iter_with_setup(
                        || crashed_system(4, depth, work),
                        |(_, rt, _)| {
                            let report = rt.recover(mode).unwrap();
                            assert_eq!(report.total_frames(), 4 * depth);
                        },
                    );
                });
            }
        }
    }
    g.finish();
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery/worker_scaling_parallel");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    // Fixed total work (workers × depth = 256 frames), spread across
    // more recovery threads.
    for workers in [1usize, 2, 4, 8] {
        let depth = 256 / workers;
        g.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter_with_setup(
                    || crashed_system(workers, depth, 20_000),
                    |(_, rt, _)| {
                        let report = rt.recover(RecoveryMode::Parallel).unwrap();
                        assert_eq!(report.total_frames(), workers * depth);
                    },
                );
            },
        );
    }
    g.finish();
}

fn bench_clean_recovery_is_cheap(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery/clean_noop");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    // Recovery of an un-crashed system only walks dummy frames.
    g.bench_function("4_workers_0_frames", |b| {
        b.iter_with_setup(
            || crashed_system(4, 0, 0),
            |(_, rt, _)| {
                let report = rt.recover(RecoveryMode::Parallel).unwrap();
                assert_eq!(report.total_frames(), 0);
            },
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parallel_vs_serial,
    bench_worker_scaling,
    bench_clean_recovery_is_cheap
);
criterion_main!(benches);
