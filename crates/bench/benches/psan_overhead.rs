//! What the persist-order sanitizer costs when it rides along.
//!
//! PSan shadows every `PMem` access with a per-line state machine, so
//! its overhead lands exactly on the hot paths the other benches
//! measure: writes, flushes, fences and KV puts. This bench runs the
//! same workloads with shadow tracking off and on — the off rows are
//! the baseline every other bench reports (campaign configs leave
//! `psan: false` here), the on rows are the price of running the
//! sanitizer always-on in tests and campaigns.
//!
//! The workloads are violation-free by construction, so the cost shown
//! is pure bookkeeping: shadow-line transitions plus the durable-set
//! updates at fence time. A final stats line per configuration reports
//! the persist economy (identical across off/on — PSan observes, it
//! never adds persists).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pstack_bench::report_persist_economy;
use pstack_heap::PHeap;
use pstack_kv::{KvVariant, PKvStore};
use pstack_nvram::{PMem, PMemBuilder, POffset};

fn region(len: usize, eager: bool, psan: bool) -> PMem {
    PMemBuilder::new()
        .len(len)
        .eager_flush(eager)
        .psan(psan)
        .build_in_memory()
}

/// write → flush → fence over a 64-line window: the minimal persist
/// cycle, every step of which PSan shadows.
fn bench_raw_persist(c: &mut Criterion) {
    let mut g = c.benchmark_group("psan_overhead/raw_persist");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.throughput(Throughput::Elements(1));
    for (mode, eager) in [("eager", true), ("buffered", false)] {
        for (tracking, psan) in [("psan_off", false), ("psan_on", true)] {
            let pmem = region(1 << 20, eager, psan);
            let window = 64 * pmem.line_size() as u64;
            let mut off = 0u64;
            g.bench_function(format!("{mode}/{tracking}"), |b| {
                b.iter(|| {
                    let at = POffset::new(off);
                    pmem.write_u64(at, off).unwrap();
                    pmem.flush(at, 8).unwrap();
                    pmem.fence();
                    off = (off + pmem.line_size() as u64) % window;
                });
            });
            assert_eq!(pmem.psan_violation_count(), 0, "workload is clean");
        }
    }
    g.finish();
}

/// The KV put path: log append + bucket publish, the workload the
/// campaign gates run under PSan.
fn bench_kv_put(c: &mut Criterion) {
    // The log is sized so warm-up plus measurement never exhaust it: a
    // mid-measurement generation rebuild would bill one sample for the
    // whole re-format and swamp the per-put signal.
    const LOG_CAP: u64 = 3_000_000;
    const KEYS: u64 = 1024;
    let mut g = c.benchmark_group("psan_overhead/kv_put");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.throughput(Throughput::Elements(1));
    for (tracking, psan) in [("psan_off", false), ("psan_on", true)] {
        let len = 1usize << 28;
        let pmem = region(len, true, psan);
        let heap = PHeap::format(pmem.clone(), POffset::new(0), len as u64).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, 256, LOG_CAP, KvVariant::Nsrl).unwrap();
        let mut seq = 0u64;
        let before = pmem.stats().snapshot();
        g.bench_function(tracking, |b| {
            b.iter(|| {
                seq += 1;
                assert!(
                    kv.put(1, seq, seq % KEYS, seq as i64).unwrap(),
                    "log sized too small"
                );
            });
        });
        let delta = pmem.stats().snapshot() - before;
        assert_eq!(pmem.psan_violation_count(), 0, "workload is clean");
        report_persist_economy(
            &format!("psan_overhead/kv_put/{tracking}"),
            pmem.line_size(),
            delta,
            seq as f64,
        );
    }
    g.finish();
}

criterion_group!(benches, bench_raw_persist, bench_kv_put);
criterion_main!(benches);
