//! E17: sharded-KV thread-scaling sweep and group-commit ablation.
//!
//! Writes to a persistent store are **persist-latency-bound**: the
//! device charges a round-trip per persist (the paper's evaluation
//! emulates NVRAM with an HDD-backed mmap for exactly this reason).
//! The sweeps therefore run the in-memory backend with an emulated
//! per-round-trip `flush_latency`, which makes the scaling levers
//! measurable in wall-clock regardless of host core count:
//!
//! * **Sharding** multiplies persist channels — each shard's region is
//!   its own device, so `N` shards overlap `N` round-trips;
//! * **group commit** divides round-trips — a batch persists all its
//!   records (and the log tail, heads, epoch) in a handful of
//!   round-trips instead of ≥ 3 per mutation;
//! * **lock-free publication** overlaps round-trips *within* one
//!   shard — per-op puts reserve a slot by tail CAS and pay their
//!   record/tail/head persists outside any region lock, so `t`
//!   publishers on a single hot shard overlap `t` round-trips.
//!
//! Benchmarks:
//!
//! * `kv_sharded/scale_puts` — aggregate write throughput at 1/2/4/8
//!   threads × 1/4/8 shards, eager per-op commits (the lock-free
//!   publish path). Ends with `Comparison` ratio lines (shim format in
//!   README); the acceptance bar is the hot-shard line: ≥ 2× for
//!   4 threads over 1 thread on a single shard. (Since lock-free
//!   publication, the single-shard rows scale with threads too, so
//!   under this latency model shards-vs-threads comparisons flatten —
//!   both levers overlap round-trips.)
//! * `kv_sharded/scale_puts_batched` — the same sweep over buffered
//!   regions with group commits of 16: the two levers compound.
//! * `kv_sharded/group_commit` — single-shard batch-size ablation:
//!   wall-clock next to persist round-trips, lines and coalesced
//!   bytes per mutation, read straight from the `PMem` stats
//!   counters (visible even on DRAM, where wall-clock barely moves).

//! * `kv_sharded/runtime_driven` — the same batched write workload
//!   driven directly versus as `StripedRuntime` batch-window tasks
//!   (one persistent frame + one coalesced answer persist per window
//!   on top of each group commit): the price of putting the stack on
//!   the sharded hot path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Comparison, Criterion, Measurement, Throughput};
use pstack_core::{FunctionRegistry, RuntimeConfig, StripedRuntime};
use pstack_heap::PHeap;
use pstack_kv::{
    KvBatchOp, KvOpTable, KvTaskOp, KvVariant, PKvStore, ShardedKvStore, ShardedKvTaskFunction,
    KV_SHARDED_FUNC_ID,
};
use pstack_nvram::{PMemBuilder, POffset};

/// Emulated per-round-trip persist latency for the scaling sweeps.
const LATENCY: Duration = Duration::from_micros(50);

/// Puts per writer thread in the latency-bound sweeps.
const OPS_PER_THREAD: u64 = 48;

fn fresh_store(shards: usize, threads: u64, eager: bool) -> ShardedKvStore {
    let total = threads * OPS_PER_THREAD;
    // Keys spread ~uniformly; 3× headroom absorbs shard skew.
    let log_cap = (total / shards as u64) * 3 + 64;
    let region_len = (PKvStore::required_len(1024, log_cap) + (1 << 16)).next_power_of_two();
    let mut builder = PMemBuilder::new().len(region_len).flush_latency(LATENCY);
    if eager {
        builder = builder.eager_flush(true);
    }
    let stripe = builder.build_striped(shards);
    ShardedKvStore::format(stripe.regions(), 1024, log_cap, KvVariant::Nsrl).unwrap()
}

/// `threads` writers, each putting `OPS_PER_THREAD` distinct keys of
/// its own shard (`thread % shards` — the shard-affine partitioning a
/// fronting router gives a sharded store, and what the crash campaign
/// workers do). `batch = 1` issues per-op puts, larger batches
/// group-commit through `KvBatch`.
fn run_writers(kv: &ShardedKvStore, threads: u64, batch: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let kv = kv.clone();
            s.spawn(move || {
                let own = (t as usize) % kv.nshards();
                let keys: Vec<u64> = (0u64..)
                    .filter(|&k| kv.shard_of(k) == own)
                    .skip((t as usize / kv.nshards()) * OPS_PER_THREAD as usize)
                    .take(OPS_PER_THREAD as usize)
                    .collect();
                if batch <= 1 {
                    for (i, &key) in keys.iter().enumerate() {
                        assert!(kv.put(t, i as u64 + 1, key, key as i64).unwrap());
                    }
                } else {
                    let mut seq = 0u64;
                    for chunk in keys.chunks(batch) {
                        let mut b = kv.batch();
                        for &key in chunk {
                            seq += 1;
                            b.put(t, seq, key, key as i64);
                        }
                        assert!(b.commit().unwrap().iter().all(|o| o.took_effect()));
                    }
                }
            });
        }
    });
}

fn sweep(
    c: &mut Criterion,
    name: &str,
    eager: bool,
    batch: usize,
) -> Vec<(usize, u64, Measurement)> {
    let mut g = c.benchmark_group(format!("kv_sharded/{name}"));
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let mut out = Vec::new();
    for shards in [1usize, 4, 8] {
        for threads in [1u64, 2, 4, 8] {
            g.throughput(Throughput::Elements(threads * OPS_PER_THREAD));
            let m = g.bench_measured(format!("s{shards}_t{threads}"), |b| {
                b.iter_with_setup(
                    || fresh_store(shards, threads, eager),
                    |kv| run_writers(&kv, threads, batch),
                );
            });
            out.push((shards, threads, m));
        }
    }
    g.finish();
    out
}

fn find(ms: &[(usize, u64, Measurement)], shards: usize, threads: u64) -> Measurement {
    ms.iter()
        .find(|&&(s, t, _)| s == shards && t == threads)
        .map(|&(_, _, m)| m)
        .expect("measured configuration")
}

fn bench_scaling(c: &mut Criterion) {
    let eager = sweep(c, "scale_puts", true, 1);
    let cmp = Comparison::new(
        "kv_sharded/scale_puts",
        "1 shard x 4 threads",
        find(&eager, 1, 4),
    );
    cmp.versus("4 shards x 4 threads", find(&eager, 4, 4));
    cmp.versus("8 shards x 8 threads", find(&eager, 8, 8));

    // Hot shard: every thread hammers the same single shard. The
    // lock-free publish path pays its persist round-trips outside the
    // region lock, so concurrent publishers overlap them even on one
    // device; the acceptance bar is ≥ 2× for 4 threads over 1.
    let hot = Comparison::new(
        "kv_sharded/scale_puts",
        "hot shard (s1) x 1 thread",
        find(&eager, 1, 1),
    );
    hot.versus("hot shard (s1) x 4 threads", find(&eager, 1, 4));
}

fn bench_scaling_batched(c: &mut Criterion) {
    let batched = sweep(c, "scale_puts_batched", false, 16);
    let cmp = Comparison::new(
        "kv_sharded/scale_puts_batched",
        "1 shard x 4 threads",
        find(&batched, 1, 4),
    );
    cmp.versus("4 shards x 4 threads", find(&batched, 4, 4));
}

fn bench_group_commit(c: &mut Criterion) {
    const N: u64 = 512;
    let mut g = c.benchmark_group("kv_sharded/group_commit");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    g.throughput(Throughput::Elements(N));

    let build = |eager: bool, pipelined: bool| {
        let mut builder = PMemBuilder::new().len(1 << 20).flush_latency(LATENCY);
        if eager {
            builder = builder.eager_flush(true);
        }
        let pmem = builder.build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 20).unwrap();
        let mut kv = PKvStore::format(pmem.clone(), &heap, 256, N + 64, KvVariant::Nsrl).unwrap();
        kv.set_pipeline(pipelined);
        (pmem, kv)
    };
    let workload = |kv: &PKvStore, batch: usize| {
        let ops: Vec<KvBatchOp> = (0..N)
            .map(|key| KvBatchOp::Put {
                pid: 0,
                seq: key + 1,
                key,
                value: key as i64,
            })
            .collect();
        for chunk in ops.chunks(batch) {
            assert!(kv
                .apply_batch(chunk)
                .unwrap()
                .iter()
                .all(|o| o.took_effect()));
        }
    };

    // (name, eager, batch, pipelined). The pipelined rows route the
    // same group commits through the async flush engine: the records
    // and log-tail flights of each batch overlap, saving one device
    // round-trip per window.
    let mut configs: Vec<(String, bool, usize, bool)> =
        vec![("eager_per_op".into(), true, 1, false)];
    for batch in [1usize, 8, 16, 64] {
        configs.push((format!("buffered_batch{batch}"), false, batch, false));
    }
    for batch in [16usize, 64] {
        configs.push((format!("pipelined_batch{batch}"), false, batch, true));
    }
    let mut measured: Vec<(String, Measurement)> = Vec::new();
    for (name, eager, batch, pipelined) in configs {
        let m = g.bench_measured(name.clone(), |b| {
            b.iter_with_setup(|| build(eager, pipelined), |(_, kv)| workload(&kv, batch));
        });
        // Instrumented pass: the persist economy of this config, from
        // the region's own counters.
        let (pmem, kv) = build(eager, pipelined);
        let before = pmem.stats().snapshot();
        workload(&kv, batch);
        let d = pmem.stats().snapshot() - before;
        pstack_bench::report_persist_economy(
            &format!("kv_sharded/group_commit/{name}"),
            pmem.line_size(),
            d,
            N as f64,
        );
        measured.push((name, m));
    }
    g.finish();

    // The headline claim: at batch 16 on one shard, the pipelined
    // group commit beats the synchronous one, and the gap is wider
    // than both 95% confidence intervals.
    let of = |want: &str| -> Measurement {
        measured
            .iter()
            .find(|(name, _)| name == want)
            .map(|&(_, m)| m)
            .expect("measured configuration")
    };
    let sync16 = of("buffered_batch16");
    let pipe16 = of("pipelined_batch16");
    let cmp = Comparison::new("kv_sharded/group_commit", "synchronous batch16", sync16);
    cmp.versus("pipelined batch16", pipe16);
    println!(
        "kv_sharded/group_commit  pipelined batch16 distinguishable from synchronous (95% CIs \
         disjoint): {}",
        pipe16.distinguishable_from(&sync16)
    );
}

/// E18: the persistent stack on the sharded hot path. Direct-drive
/// group commits versus the identical workload running as
/// `StripedRuntime` batch-window tasks — each window pays a frame
/// push/pop on the worker's persistent stack and one coalesced
/// answer-table persist on top of its group commit.
fn bench_runtime_driven(c: &mut Criterion) {
    const SHARDS: usize = 4;
    const THREADS: u64 = 4;
    const BATCH: usize = 16;
    let total = THREADS * OPS_PER_THREAD;
    let mut g = c.benchmark_group("kv_sharded/runtime_driven");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    g.throughput(Throughput::Elements(total));

    let direct = g.bench_measured("direct_batched", |b| {
        b.iter_with_setup(
            || fresh_store(SHARDS, THREADS, false),
            |kv| run_writers(&kv, THREADS, BATCH),
        );
    });

    let build_runtime = || {
        let log_cap = total / SHARDS as u64 * 3 + 64;
        let region_len = (PKvStore::required_len(1024, log_cap) + (1 << 17)).next_power_of_two();
        let stripe = PMemBuilder::new()
            .len(region_len)
            .flush_latency(LATENCY)
            .build_striped(SHARDS);
        let store = ShardedKvStore::format(stripe.regions(), 1024, log_cap, KvVariant::Nsrl)
            .expect("store formats");
        let ops: Vec<KvTaskOp> = (0..total)
            .map(|key| KvTaskOp::Put {
                key,
                value: key as i64,
            })
            .collect();
        let per_shard = ShardedKvTaskFunction::partition_ops_padded(&ops, SHARDS);
        let tables: Vec<KvOpTable> = per_shard
            .iter()
            .enumerate()
            .map(|(s, shard_ops)| {
                KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops)
                    .expect("table formats")
            })
            .collect();
        let func = ShardedKvTaskFunction::new(store, tables);
        let tasks = func
            .pending_tasks(KV_SHARDED_FUNC_ID, BATCH)
            .expect("pending tasks");
        let mut registry = FunctionRegistry::new();
        registry
            .register(KV_SHARDED_FUNC_ID, func.into_arc())
            .expect("function registers");
        // The control region is not latency-emulated: the comparison
        // isolates the stack's persist traffic, not a slower device.
        let control = PMemBuilder::new().len(1 << 20).build_in_memory();
        let rt = StripedRuntime::format(
            control,
            stripe,
            RuntimeConfig::new(THREADS as usize).stack_capacity(8 * 1024),
            &registry,
        )
        .expect("runtime formats");
        (rt, tasks)
    };
    let runtime = g.bench_measured("runtime_batched", |b| {
        b.iter_with_setup(build_runtime, |(rt, tasks)| {
            let report = rt.run_tasks(tasks);
            assert!(!report.crashed && report.task_errors == 0);
        });
    });
    g.finish();

    let cmp = Comparison::new("kv_sharded/runtime_driven", "direct group commits", direct);
    cmp.versus("StripedRuntime batch windows", runtime);
}

criterion_group!(
    benches,
    bench_scaling,
    bench_scaling_batched,
    bench_group_commit,
    bench_runtime_driven
);
criterion_main!(benches);
