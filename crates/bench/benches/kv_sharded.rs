//! E17: sharded-KV thread-scaling sweep and group-commit ablation.
//!
//! Writes to a persistent store are **persist-latency-bound**: the
//! device charges a round-trip per persist, paid inside the region's
//! critical section (the paper's evaluation emulates NVRAM with an
//! HDD-backed mmap for exactly this reason). The sweeps therefore run
//! the in-memory backend with an emulated per-round-trip
//! `flush_latency`, which makes both scaling levers measurable in
//! wall-clock regardless of host core count:
//!
//! * **Sharding** multiplies persist channels — each shard's region is
//!   its own device, so `N` shards overlap `N` round-trips;
//! * **group commit** divides round-trips — a batch persists all its
//!   records (and the log tail, heads, epoch) in a handful of
//!   round-trips instead of ≥ 3 per mutation.
//!
//! Benchmarks:
//!
//! * `kv_sharded/scale_puts` — aggregate write throughput at 1/2/4/8
//!   threads × 1/4/8 shards, eager per-op commits. Ends with
//!   `Comparison` ratio lines (shim format in README); the acceptance
//!   bar is ≥ 2× for 4 shards / 4 threads over 1 shard / 4 threads.
//! * `kv_sharded/scale_puts_batched` — the same sweep over buffered
//!   regions with group commits of 16: the two levers compound.
//! * `kv_sharded/group_commit` — single-shard batch-size ablation:
//!   wall-clock next to persist round-trips, lines and coalesced
//!   bytes per mutation, read straight from the `PMem` stats
//!   counters (visible even on DRAM, where wall-clock barely moves).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Comparison, Criterion, Measurement, Throughput};
use pstack_heap::PHeap;
use pstack_kv::{KvBatchOp, KvVariant, PKvStore, ShardedKvStore};
use pstack_nvram::{PMemBuilder, POffset};

/// Emulated per-round-trip persist latency for the scaling sweeps.
const LATENCY: Duration = Duration::from_micros(50);

/// Puts per writer thread in the latency-bound sweeps.
const OPS_PER_THREAD: u64 = 48;

fn fresh_store(shards: usize, threads: u64, eager: bool) -> ShardedKvStore {
    let total = threads * OPS_PER_THREAD;
    // Keys spread ~uniformly; 3× headroom absorbs shard skew.
    let log_cap = (total / shards as u64) * 3 + 64;
    let region_len = (PKvStore::required_len(1024, log_cap) + (1 << 16)).next_power_of_two();
    let mut builder = PMemBuilder::new().len(region_len).flush_latency(LATENCY);
    if eager {
        builder = builder.eager_flush(true);
    }
    let stripe = builder.build_striped(shards);
    ShardedKvStore::format(stripe.regions(), 1024, log_cap, KvVariant::Nsrl).unwrap()
}

/// `threads` writers, each putting `OPS_PER_THREAD` distinct keys of
/// its own shard (`thread % shards` — the shard-affine partitioning a
/// fronting router gives a sharded store, and what the crash campaign
/// workers do). `batch = 1` issues per-op puts, larger batches
/// group-commit through `KvBatch`.
fn run_writers(kv: &ShardedKvStore, threads: u64, batch: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let kv = kv.clone();
            s.spawn(move || {
                let own = (t as usize) % kv.nshards();
                let keys: Vec<u64> = (0u64..)
                    .filter(|&k| kv.shard_of(k) == own)
                    .skip((t as usize / kv.nshards()) * OPS_PER_THREAD as usize)
                    .take(OPS_PER_THREAD as usize)
                    .collect();
                if batch <= 1 {
                    for (i, &key) in keys.iter().enumerate() {
                        assert!(kv.put(t, i as u64 + 1, key, key as i64).unwrap());
                    }
                } else {
                    let mut seq = 0u64;
                    for chunk in keys.chunks(batch) {
                        let mut b = kv.batch();
                        for &key in chunk {
                            seq += 1;
                            b.put(t, seq, key, key as i64);
                        }
                        assert!(b.commit().unwrap().iter().all(|o| o.took_effect()));
                    }
                }
            });
        }
    });
}

fn sweep(
    c: &mut Criterion,
    name: &str,
    eager: bool,
    batch: usize,
) -> Vec<(usize, u64, Measurement)> {
    let mut g = c.benchmark_group(format!("kv_sharded/{name}"));
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let mut out = Vec::new();
    for shards in [1usize, 4, 8] {
        for threads in [1u64, 2, 4, 8] {
            g.throughput(Throughput::Elements(threads * OPS_PER_THREAD));
            let m = g.bench_measured(format!("s{shards}_t{threads}"), |b| {
                b.iter_with_setup(
                    || fresh_store(shards, threads, eager),
                    |kv| run_writers(&kv, threads, batch),
                );
            });
            out.push((shards, threads, m));
        }
    }
    g.finish();
    out
}

fn find(ms: &[(usize, u64, Measurement)], shards: usize, threads: u64) -> Measurement {
    ms.iter()
        .find(|&&(s, t, _)| s == shards && t == threads)
        .map(|&(_, _, m)| m)
        .expect("measured configuration")
}

fn bench_scaling(c: &mut Criterion) {
    let eager = sweep(c, "scale_puts", true, 1);
    let cmp = Comparison::new(
        "kv_sharded/scale_puts",
        "1 shard x 4 threads",
        find(&eager, 1, 4),
    );
    cmp.versus("4 shards x 4 threads", find(&eager, 4, 4));
    cmp.versus("8 shards x 8 threads", find(&eager, 8, 8));
}

fn bench_scaling_batched(c: &mut Criterion) {
    let batched = sweep(c, "scale_puts_batched", false, 16);
    let cmp = Comparison::new(
        "kv_sharded/scale_puts_batched",
        "1 shard x 4 threads",
        find(&batched, 1, 4),
    );
    cmp.versus("4 shards x 4 threads", find(&batched, 4, 4));
}

fn bench_group_commit(c: &mut Criterion) {
    const N: u64 = 512;
    let mut g = c.benchmark_group("kv_sharded/group_commit");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    g.throughput(Throughput::Elements(N));

    let build = |eager: bool| {
        let mut builder = PMemBuilder::new().len(1 << 20).flush_latency(LATENCY);
        if eager {
            builder = builder.eager_flush(true);
        }
        let pmem = builder.build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 20).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, 256, N + 64, KvVariant::Nsrl).unwrap();
        (pmem, kv)
    };
    let workload = |kv: &PKvStore, batch: usize| {
        let ops: Vec<KvBatchOp> = (0..N)
            .map(|key| KvBatchOp::Put {
                pid: 0,
                seq: key + 1,
                key,
                value: key as i64,
            })
            .collect();
        for chunk in ops.chunks(batch) {
            assert!(kv
                .apply_batch(chunk)
                .unwrap()
                .iter()
                .all(|o| o.took_effect()));
        }
    };

    let mut configs: Vec<(String, bool, usize)> = vec![("eager_per_op".into(), true, 1)];
    for batch in [1usize, 8, 64] {
        configs.push((format!("buffered_batch{batch}"), false, batch));
    }
    for (name, eager, batch) in configs {
        g.bench_function(name.clone(), |b| {
            b.iter_with_setup(|| build(eager), |(_, kv)| workload(&kv, batch));
        });
        // Instrumented pass: the persist economy of this config, from
        // the region's own counters.
        let (pmem, kv) = build(eager);
        let before = pmem.stats().snapshot();
        workload(&kv, batch);
        let d = pmem.stats().snapshot() - before;
        pstack_bench::report_persist_economy(
            &format!("kv_sharded/group_commit/{name}"),
            pmem.line_size(),
            d,
            N as f64,
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_scaling_batched,
    bench_group_commit
);
criterion_main!(benches);
