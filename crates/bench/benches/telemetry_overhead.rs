//! What the flight recorder costs when it rides along.
//!
//! The recorder has three cost regimes, and this bench pins each one:
//!
//! * **compiled out** (`--no-default-features`): every hook is a
//!   `const false` branch the optimizer deletes. Building this bench
//!   in that mode *is* the proof — the hooks are in the measured hot
//!   paths, so if anything survived compilation it would show against
//!   the `psan_overhead` baselines. The header line prints
//!   `compiled = false` and the "recording" rows collect nothing.
//! * **idle** (compiled in, no [`TraceSession`] active): each hook is
//!   one relaxed atomic load and a branch. This is the tax every
//!   default build pays on writes, flushes, fences and KV puts.
//! * **recording** (a session active): timestamp read + a seqlock ring
//!   push per event. This is what campaigns pay for a timeline.
//!
//! Workloads mirror `psan_overhead` so the columns line up: the raw
//! write→flush→fence persist cycle, and the KV put path (which also
//! crosses the `op_label` span hooks).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pstack_heap::PHeap;
use pstack_kv::{KvVariant, PKvStore};
use pstack_nvram::{PMemBuilder, POffset};
use pstack_telemetry::TraceSession;

/// Runs `body` once with the recorder idle and once inside an active
/// trace session (a no-op pair when the recorder is compiled out).
fn with_modes(mut body: impl FnMut(&str)) {
    body("idle");
    let session = TraceSession::start();
    body("recording");
    let snap = session.finish();
    let events: usize = snap.threads.iter().map(|t| t.events.len()).sum();
    println!("  recording mode captured {events} events");
}

/// write → flush → fence over a 64-line window: the minimal persist
/// cycle; the flush and fence paths carry recorder hooks.
fn bench_raw_persist(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead/raw_persist");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.throughput(Throughput::Elements(1));
    with_modes(|mode| {
        let pmem = PMemBuilder::new()
            .len(1 << 20)
            .eager_flush(true)
            .build_in_memory();
        let window = 64 * pmem.line_size() as u64;
        let mut off = 0u64;
        g.bench_function(mode, |b| {
            b.iter(|| {
                let at = POffset::new(off);
                pmem.write_u64(at, off).unwrap();
                pmem.flush(at, 8).unwrap();
                pmem.fence();
                off = (off + pmem.line_size() as u64) % window;
            });
        });
    });
    g.finish();
}

/// The KV put path: spans (via the op label), persist probes, and the
/// log append — the recorder's densest hot path.
fn bench_kv_put(c: &mut Criterion) {
    // Sized like psan_overhead's kv_put: the log must absorb warm-up
    // plus every sample without a mid-measurement rebuild.
    const LOG_CAP: u64 = 3_000_000;
    const KEYS: u64 = 1024;
    let mut g = c.benchmark_group("telemetry_overhead/kv_put");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.throughput(Throughput::Elements(1));
    with_modes(|mode| {
        let len = 1usize << 28;
        let pmem = PMemBuilder::new()
            .len(len)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), len as u64).unwrap();
        let kv = PKvStore::format(pmem.clone(), &heap, 256, LOG_CAP, KvVariant::Nsrl).unwrap();
        let mut seq = 0u64;
        g.bench_function(mode, |b| {
            b.iter(|| {
                seq += 1;
                assert!(
                    kv.put(0, seq, seq % KEYS, seq as i64).unwrap(),
                    "log sized too small"
                );
            });
        });
    });
    g.finish();
}

/// The bare hooks, isolated: a span enter/exit pair per iteration.
/// Idle mode is the per-call tax every instrumented function pays in a
/// default build; compiled-out builds optimize the closure to nothing.
fn bench_span_hook(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead/span_hook");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(1));
    with_modes(|mode| {
        g.bench_function(mode, |b| {
            b.iter(|| {
                let _span = pstack_telemetry::span("bench.span_hook");
            });
        });
    });
    g.finish();
}

fn bench_header(_c: &mut Criterion) {
    println!(
        "telemetry_overhead: recorder compiled = {}",
        pstack_telemetry::compiled()
    );
}

criterion_group!(
    benches,
    bench_header,
    bench_raw_persist,
    bench_kv_put,
    bench_span_hook
);
criterion_main!(benches);
