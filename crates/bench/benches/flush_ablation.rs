//! E4/E13 ablation: what the paper's two flushing invariants (§3.4)
//! cost. Production code must keep both; these benches quantify the
//! price of correctness by comparing against the (unsafe) variants
//! with either flush skipped.
//!
//! Next to wall-clock, every configuration reports its persist economy
//! straight from the `PMem` stats counters (`persists` = durability
//! round-trips, `lines_persisted`, `coalesced_lines × line size` =
//! bytes amortized by multi-line flushes). Wall-clock on DRAM barely
//! distinguishes flushing from not flushing — the counters are what
//! shows the flush cost a real NVRAM device would charge, and what
//! makes the group-commit win visible even here.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use pstack_bench::{region, report_persist_economy};
use pstack_core::{FixedStack, FlushPolicy, PersistentStack};
use pstack_nvram::{PMem, POffset};

fn stack_with(policy: FlushPolicy) -> (PMem, FixedStack) {
    let pmem = region(1 << 20);
    let mut s = FixedStack::format(pmem.clone(), POffset::new(0), 512 * 1024).unwrap();
    s.set_flush_policy(policy);
    (pmem, s)
}

/// Replays `n` push/pop pairs on a fresh stack and prints the persist
/// counters per operation pair.
fn report_persist_stats(label: &str, policy: FlushPolicy, arg_len: usize, n: u64) {
    let (pmem, mut stack) = stack_with(policy);
    let args = vec![3u8; arg_len];
    let before = pmem.stats().snapshot();
    for _ in 0..n {
        stack.push(1, &args).unwrap();
        stack.pop().unwrap();
    }
    let d = pmem.stats().snapshot() - before;
    report_persist_economy(label, pmem.line_size(), d, n as f64);
}

fn bench_flush_invariants(c: &mut Criterion) {
    let mut g = c.benchmark_group("flush_ablation/invariants");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let configs = [
        (
            "both_flushes (correct)",
            FlushPolicy {
                flush_frame_before_advance: true,
                flush_markers: true,
            },
        ),
        (
            "no_frame_flush (unsafe, fig 6a)",
            FlushPolicy {
                flush_frame_before_advance: false,
                flush_markers: true,
            },
        ),
        (
            "no_marker_flush (unsafe, fig 6b)",
            FlushPolicy {
                flush_frame_before_advance: true,
                flush_markers: false,
            },
        ),
        (
            "no_flushes (volatile stack)",
            FlushPolicy {
                flush_frame_before_advance: false,
                flush_markers: false,
            },
        ),
    ];
    for (name, policy) in configs {
        let (_, mut stack) = stack_with(policy);
        g.bench_function(name, |b| {
            b.iter(|| {
                stack.push(1, &[3u8; 128]).unwrap();
                stack.pop().unwrap();
            });
        });
    }
    g.finish();
    for (name, policy) in configs {
        report_persist_stats(
            &format!("flush_ablation/invariants/{name}"),
            policy,
            128,
            512,
        );
    }
}

fn bench_frame_size_vs_flush_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("flush_ablation/lines_per_frame");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // Doubling the argument size doubles the flushed lines of the frame
    // write but leaves the marker-flip cost constant: push cost should
    // grow sub-linearly at small sizes, linearly once flushes dominate.
    for arg_len in [16usize, 128, 512, 2048] {
        let (_, mut stack) = stack_with(FlushPolicy::default());
        let args = vec![1u8; arg_len];
        g.bench_function(format!("args_{arg_len}"), |b| {
            b.iter(|| {
                stack.push(1, &args).unwrap();
                stack.pop().unwrap();
            });
        });
    }
    g.finish();
    for arg_len in [16usize, 128, 512, 2048] {
        report_persist_stats(
            &format!("flush_ablation/lines_per_frame/args_{arg_len}"),
            FlushPolicy::default(),
            arg_len,
            512,
        );
    }
}

criterion_group!(
    benches,
    bench_flush_invariants,
    bench_frame_size_vs_flush_cost
);
criterion_main!(benches);
