//! E16: YCSB-style workload mixes on the recoverable KV store.
//!
//! Keys are drawn zipfian (`s = 0.99`, the YCSB default) over a
//! preloaded key space, so a hot minority of keys absorbs most
//! traffic — the worst case for the store's per-bucket version chains,
//! whose lookup cost grows with a key's update count.
//!
//! * `kv/read_heavy` — YCSB-B: 95% get / 5% put.
//! * `kv/write_heavy` — YCSB-A: 50% get / 50% put.
//! * `kv/scan_mix` — YCSB-E-flavoured: short 16-key scans (sequential
//!   gets; the hash index has no range order) with 5% puts.
//! * `kv/recover_scan` — the price of the NSRL evidence scan as a
//!   function of a key's version-chain length, the trade the store
//!   makes for needing no helping matrix.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pstack_heap::PHeap;
use pstack_kv::{KvVariant, PKvStore};
use pstack_nvram::{PMemBuilder, POffset};
use rand::distr::{Distribution, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const KEY_SPACE: u64 = 4096;

fn preloaded_store(region_len: usize, log_cap: u64) -> PKvStore {
    let pmem = PMemBuilder::new()
        .len(region_len)
        .eager_flush(true)
        .build_in_memory();
    let heap = PHeap::format(pmem.clone(), POffset::new(0), region_len as u64).unwrap();
    let kv = PKvStore::format(pmem, &heap, 1024, log_cap, KvVariant::Nsrl).unwrap();
    for key in 0..KEY_SPACE {
        assert!(kv.put(0, key + 1, key, key as i64).unwrap());
    }
    kv
}

/// One benchmark over a get/put mix: `put_percent`% of operations are
/// puts to a zipfian-chosen key, the rest gets.
///
/// The version log is lifetime-bounded, so the bench plays the role a
/// compactor would in a production deployment: when the put budget is
/// spent it swaps in a fresh preloaded store. The swap costs a few
/// milliseconds once per ~250k puts — amortized noise, visible at most
/// in the max sample.
fn bench_mix(c: &mut Criterion, name: &str, put_percent: u64) {
    const LOG_CAP: u64 = 300_000;
    let mut g = c.benchmark_group(format!("kv/{name}"));
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.throughput(Throughput::Elements(1));
    let mut kv = preloaded_store(1 << 26, LOG_CAP);
    let mut puts_left = LOG_CAP - KEY_SPACE - 8;
    let zipf = Zipf::new(KEY_SPACE, 0.99).unwrap();
    let mut rng = SmallRng::seed_from_u64(42);
    let mut seq = KEY_SPACE + 1;
    g.bench_function(format!("zipf_{put_percent}pct_put"), |b| {
        b.iter(|| {
            let key = zipf.sample(&mut rng) - 1;
            if rng.random_range(0u64..100) < put_percent {
                if puts_left == 0 {
                    kv = preloaded_store(1 << 26, LOG_CAP);
                    puts_left = LOG_CAP - KEY_SPACE - 8;
                }
                puts_left -= 1;
                seq += 1;
                assert!(kv.put(1, seq, key, seq as i64).unwrap(), "log exhausted");
            } else {
                criterion::black_box(kv.get(key).unwrap());
            }
        });
    });
    g.finish();
}

fn bench_read_heavy(c: &mut Criterion) {
    bench_mix(c, "read_heavy", 5);
}

fn bench_write_heavy(c: &mut Criterion) {
    bench_mix(c, "write_heavy", 50);
}

fn bench_scan_mix(c: &mut Criterion) {
    const SCAN_LEN: u64 = 16;
    let mut g = c.benchmark_group("kv/scan_mix");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    g.throughput(Throughput::Elements(SCAN_LEN));
    const LOG_CAP: u64 = 300_000;
    let mut kv = preloaded_store(1 << 26, LOG_CAP);
    let mut puts_left = LOG_CAP - KEY_SPACE - 8;
    let zipf = Zipf::new(KEY_SPACE - SCAN_LEN, 0.99).unwrap();
    let mut rng = SmallRng::seed_from_u64(43);
    let mut seq = KEY_SPACE + 1;
    g.bench_function("scan16_5pct_put", |b| {
        b.iter(|| {
            let start = zipf.sample(&mut rng) - 1;
            if rng.random_range(0u64..100) < 5 {
                if puts_left == 0 {
                    kv = preloaded_store(1 << 26, LOG_CAP);
                    puts_left = LOG_CAP - KEY_SPACE - 8;
                }
                puts_left -= 1;
                seq += 1;
                assert!(kv.put(1, seq, start, seq as i64).unwrap(), "log exhausted");
            }
            let mut acc = 0i64;
            for key in start..start + SCAN_LEN {
                if let Some(v) = kv.get(key).unwrap() {
                    acc = acc.wrapping_add(v);
                }
            }
            criterion::black_box(acc)
        });
    });
    g.finish();
}

fn bench_recover_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv/recover_scan");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for versions in [4u64, 64, 1024] {
        let pmem = PMemBuilder::new()
            .len(1 << 22)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 22).unwrap();
        // One bucket: the whole history lands on one chain — the worst
        // case for the evidence scan.
        let kv = PKvStore::format(pmem, &heap, 1, versions + 8, KvVariant::Nsrl).unwrap();
        for i in 0..versions {
            assert!(kv.put(0, i + 1, 7, i as i64).unwrap());
        }
        g.bench_with_input(BenchmarkId::from_parameter(versions), &versions, |b, _| {
            b.iter(|| {
                // Recover an operation that *did* linearize with the
                // oldest record — the full-chain scan.
                let done = kv.recover_put(0, 1, 7, 0).unwrap();
                assert!(done);
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_read_heavy,
    bench_write_heavy,
    bench_scan_mix,
    bench_recover_scan
);
criterion_main!(benches);
