//! E19: the serving front end on the sharded hot path.
//!
//! What does exactly-once serving cost? The served path pays, on top
//! of each batch window's group commit, a durable request descriptor
//! per op (the dedup evidence), one coalesced answer persist per
//! window, and the admission/response machinery. The bench runs the
//! identical put workload two ways on latency-emulated regions:
//!
//! * `server/served_vs_direct/direct_windows` — the `StripedRuntime`
//!   batch-window drive (E18's runtime side): op tables pre-staged,
//!   no wire, no descriptors, no acks.
//! * `server/served_vs_direct/served_path` — closed-loop clients over
//!   the channel hub: request frames, per-shard admission, durable
//!   request descriptors, runtime batch windows, durable answers,
//!   acks, slot recycling.
//!
//! It ends with a `Comparison` ratio line (the exactly-once premium)
//! and an instrumented mixed-workload pass that prints the served
//! path's SLO percentiles (p50/p99/p999 per op class, wall-clock, the
//! same shape the crash campaign reports in virtual time).

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Comparison, Criterion, Throughput};
use pstack_core::{FunctionRegistry, RuntimeConfig, StripedRuntime};
use pstack_kv::{
    KvOpTable, KvRequestTable, KvTaskOp, KvVariant, PKvStore, ShardedKvStore,
    ShardedKvTaskFunction, KV_SHARDED_FUNC_ID,
};
use pstack_nvram::PMemBuilder;
use pstack_server::proto::{RequestBody, Response};
use pstack_server::{
    ChannelConn, ChannelHub, ClientConfig, ClientSim, Clock, KvServeFunction, OpClass, ServerCore,
    Submission, SystemClock, KV_SERVE_FUNC_ID,
};

/// Emulated per-round-trip persist latency (E17's device model).
const LATENCY: Duration = Duration::from_micros(50);

const SHARDS: usize = 4;
const WORKERS: usize = 4;
const CLIENTS: usize = 4;
const OPS_PER_CLIENT: usize = 48;
const BATCH: usize = 16;
const TOTAL: u64 = (CLIENTS * OPS_PER_CLIENT) as u64;

fn build_stripe(log_cap: u64) -> pstack_nvram::PMemStripe {
    let region_len = (PKvStore::required_len(256, log_cap) + (1 << 17)).next_power_of_two();
    PMemBuilder::new()
        .len(region_len)
        .flush_latency(LATENCY)
        .build_striped(SHARDS)
}

/// The direct drive: E18's runtime batch windows over pre-staged op
/// tables — the same mutation count with none of the serving layers.
fn build_direct() -> (StripedRuntime, Vec<pstack_core::Task>) {
    let log_cap = TOTAL / SHARDS as u64 * 3 + 64;
    let stripe = build_stripe(log_cap);
    let store = ShardedKvStore::format(stripe.regions(), 256, log_cap, KvVariant::Nsrl)
        .expect("store formats");
    let ops: Vec<KvTaskOp> = (0..TOTAL)
        .map(|key| KvTaskOp::Put {
            key,
            value: key as i64,
        })
        .collect();
    let per_shard = ShardedKvTaskFunction::partition_ops_padded(&ops, SHARDS);
    let tables: Vec<KvOpTable> = per_shard
        .iter()
        .enumerate()
        .map(|(s, shard_ops)| {
            KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops)
                .expect("table formats")
        })
        .collect();
    let func = ShardedKvTaskFunction::new(store, tables);
    let tasks = func
        .pending_tasks(KV_SHARDED_FUNC_ID, BATCH)
        .expect("pending tasks");
    let mut registry = FunctionRegistry::new();
    registry
        .register(KV_SHARDED_FUNC_ID, func.into_arc())
        .expect("function registers");
    let control = PMemBuilder::new().len(1 << 20).build_in_memory();
    let rt = StripedRuntime::format(
        control,
        stripe,
        RuntimeConfig::new(WORKERS).stack_capacity(8 * 1024),
        &registry,
    )
    .expect("runtime formats");
    (rt, tasks)
}

struct Served {
    rt: StripedRuntime,
    core: ServerCore,
    hub: ChannelHub,
    conns: Vec<ChannelConn>,
    clients: Vec<ClientSim>,
}

/// The served fixture: store + per-shard request tables behind the
/// runtime-registered serve function, plus the closed-loop client
/// population on the channel hub.
fn build_served(mix: [u32; 4]) -> Served {
    let log_cap = TOTAL * 3 + 64;
    let stripe = build_stripe(log_cap);
    let store = ShardedKvStore::format(stripe.regions(), 256, log_cap, KvVariant::Nsrl)
        .expect("store formats");
    let tables: Vec<KvRequestTable> = (0..SHARDS)
        .map(|s| {
            KvRequestTable::format(stripe.region(s).clone(), store.heap(s), 64)
                .expect("table formats")
        })
        .collect();
    let exec = KvServeFunction::new(store, tables);
    let mut registry = FunctionRegistry::new();
    registry
        .register(KV_SERVE_FUNC_ID, exec.clone().into_arc())
        .expect("function registers");
    let control = PMemBuilder::new().len(1 << 20).build_in_memory();
    let rt = StripedRuntime::format(
        control,
        stripe,
        RuntimeConfig::new(WORKERS).stack_capacity(8 * 1024),
        &registry,
    )
    .expect("runtime formats");
    let core = ServerCore::new(exec, 128, BATCH);
    let hub = ChannelHub::new();
    let clients: Vec<ClientSim> = (0..CLIENTS)
        .map(|i| {
            ClientSim::new(ClientConfig {
                client_id: i as u32 + 1,
                n_ops: OPS_PER_CLIENT,
                key_space: 256,
                mix,
                // Generous timeout: there are no crashes here, so the
                // retry machinery must stay idle.
                timeout_ns: 1_000_000_000,
                seed: 0xE19 + i as u64,
                ..ClientConfig::default()
            })
        })
        .collect();
    let conns: Vec<ChannelConn> = (1..=CLIENTS as u32).map(|id| hub.connect(id)).collect();
    Served {
        rt,
        core,
        hub,
        conns,
        clients,
    }
}

/// Drives the client population to completion on the wall clock:
/// transmit, admit, run batch windows, deliver — the crash campaign's
/// loop without the crashes.
fn serve_to_completion(s: &mut Served) {
    let clock = SystemClock::new();
    let mut kinds: HashMap<u64, u8> = HashMap::new();
    while s.clients.iter().any(|c| !c.is_finished()) {
        let now = clock.now_ns();
        for (c, conn) in s.clients.iter_mut().zip(&s.conns) {
            if let Some(req) = c.poll(now) {
                if let RequestBody::Op(op) = req.body {
                    kinds.insert(req.req_id, pstack_server::proto::kind_of(op));
                }
                conn.send(&req);
            }
        }
        while let Some(req) = s.hub.poll_request().expect("frames decode") {
            let resp = match req.body {
                RequestBody::Ack => {
                    s.core.ack(req.req_id).expect("ack persists");
                    Some(Response::AckOk { req_id: req.req_id })
                }
                RequestBody::Op(op) => match s.core.submit(req.req_id, op).expect("admission") {
                    Submission::Answered(answer) => Some(Response::Done {
                        req_id: req.req_id,
                        kind: pstack_server::proto::kind_of(op),
                        answer,
                    }),
                    Submission::Overloaded => Some(Response::Overloaded { req_id: req.req_id }),
                    Submission::Stale => Some(Response::Stale { req_id: req.req_id }),
                    Submission::Queued => None,
                },
            };
            if let Some(resp) = resp {
                s.hub.respond(&resp);
            }
        }
        let (tasks, ids) = s.core.drain_tasks();
        if !tasks.is_empty() {
            let report = s.rt.run_tasks(tasks);
            assert!(!report.crashed && report.task_errors == 0);
            for (req_id, answer) in s.core.answers_for(&ids).expect("answers read") {
                let resp = match answer {
                    Some(answer) => Response::Done {
                        req_id,
                        kind: kinds.get(&req_id).copied().unwrap_or(0),
                        answer,
                    },
                    None => Response::Retry { req_id },
                };
                s.hub.respond(&resp);
            }
        }
        let now = clock.now_ns();
        for (c, conn) in s.clients.iter_mut().zip(&s.conns) {
            while let Some(resp) = conn.try_recv().expect("frames decode") {
                c.deliver(now, &resp);
            }
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn bench_served_vs_direct(c: &mut Criterion) {
    let mut g = c.benchmark_group("server/served_vs_direct");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    g.throughput(Throughput::Elements(TOTAL));

    let direct = g.bench_measured("direct_windows", |b| {
        b.iter_with_setup(build_direct, |(rt, tasks)| {
            let report = rt.run_tasks(tasks);
            assert!(!report.crashed && report.task_errors == 0);
        });
    });
    // All-put mix: the same mutation workload the direct drive stages.
    let served = g.bench_measured("served_path", |b| {
        b.iter_with_setup(
            || build_served([1, 0, 0, 0]),
            |mut s| serve_to_completion(&mut s),
        );
    });
    g.finish();

    let cmp = Comparison::new(
        "server/served_vs_direct",
        "StripedRuntime batch windows",
        direct,
    );
    cmp.versus("served path (descriptors + acks)", served);

    // Instrumented pass on the standard mixed workload: the served
    // path's wall-clock SLO, first send → Done, per op class.
    let mut s = build_served([4, 3, 2, 1]);
    serve_to_completion(&mut s);
    let mut by_class: HashMap<OpClass, Vec<u64>> = HashMap::new();
    for c in &s.clients {
        for &(class, ns) in c.latencies() {
            by_class.entry(class).or_default().push(ns);
        }
    }
    for class in OpClass::ALL {
        let Some(lat) = by_class.get_mut(&class) else {
            continue;
        };
        lat.sort_unstable();
        println!(
            "server/served_path/slo/{:<6}  n={:<4} p50={:>8.2}us p99={:>8.2}us p999={:>8.2}us",
            class.label(),
            lat.len(),
            percentile(lat, 0.5) as f64 / 1e3,
            percentile(lat, 0.99) as f64 / 1e3,
            percentile(lat, 0.999) as f64 / 1e3,
        );
    }
}

criterion_group!(benches, bench_served_vs_direct);
criterion_main!(benches);
