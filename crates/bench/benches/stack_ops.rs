//! E1/E2/E3: persistent-stack push and pop latency on the fixed layout,
//! including the long-frame (multi-cache-line) regime and the cost of
//! buffered vs eager flushing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstack_bench::region;
use pstack_core::{FixedStack, PersistentStack};
use pstack_nvram::{PMemBuilder, POffset};

fn bench_push_pop_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_ops/push_pop_pair");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // E1+E2: one push immediately undone by one pop, per argument size.
    // Sizes below and above one 64-byte cache line (E3's long frames).
    for arg_len in [0usize, 8, 32, 64, 256, 1024] {
        let pmem = region(1 << 20);
        let mut stack = FixedStack::format(pmem, POffset::new(0), 512 * 1024).unwrap();
        let args = vec![0xA5u8; arg_len];
        g.bench_with_input(BenchmarkId::from_parameter(arg_len), &arg_len, |b, _| {
            b.iter(|| {
                stack.push(1, &args).unwrap();
                stack.pop().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_push_at_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_ops/push_at_depth");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // Push cost is O(1) in stack depth — the protocol touches only the
    // frame being written and one marker byte.
    for depth in [0usize, 16, 128, 512] {
        let pmem = region(1 << 21);
        let mut stack = FixedStack::format(pmem, POffset::new(0), 1 << 20).unwrap();
        for i in 0..depth {
            stack.push(1, &(i as u64).to_le_bytes()).unwrap();
        }
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                stack.push(2, &[1u8; 16]).unwrap();
                stack.pop().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_eager_vs_buffered(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_ops/eager_vs_buffered");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for (name, eager) in [("buffered", false), ("eager", true)] {
        let pmem = PMemBuilder::new()
            .len(1 << 20)
            .eager_flush(eager)
            .build_in_memory();
        let mut stack = FixedStack::format(pmem, POffset::new(0), 512 * 1024).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                stack.push(1, &[7u8; 64]).unwrap();
                stack.pop().unwrap();
            });
        });
    }
    g.finish();
}

fn bench_line_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_ops/line_size_sweep");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // Smaller lines mean more per-line persists for the same frame: the
    // long-frame effect (E3) amplified.
    for line in [16usize, 64, 256] {
        let pmem = PMemBuilder::new()
            .len(1 << 20)
            .line_size(line)
            .build_in_memory();
        let mut stack = FixedStack::format(pmem, POffset::new(0), 512 * 1024).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(line), &line, |b, _| {
            b.iter(|| {
                stack.push(1, &[9u8; 256]).unwrap();
                stack.pop().unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_push_pop_pair,
    bench_push_at_depth,
    bench_eager_vs_buffered,
    bench_line_size_sweep
);
criterion_main!(benches);
