//! E14: return-value paths (§4.2) — small results through the frame's
//! return slot vs big results through a preallocated NVRAM heap cell.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstack_core::{FunctionRegistry, PContext, Runtime, RuntimeConfig};
use pstack_heap::PHeap;
use pstack_nvram::{PMemBuilder, POffset};

const SMALL_RET: u64 = 1;
const BIG_RET: u64 = 2;

fn registry(big_len: usize) -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    // Small: 8 bytes through the caller-frame slot.
    reg.register_pair(
        SMALL_RET,
        |_c, _a| Ok(Some(0xABCD_u64.to_le_bytes())),
        |_c, _a| Ok(Some(0xABCD_u64.to_le_bytes())),
    )
    .unwrap();
    // Big: callee persists `big_len` bytes into the heap cell whose
    // offset arrives in the arguments.
    let body = move |c: &mut PContext<'_>, args: &[u8]| {
        let cell = POffset::new(u64::from_le_bytes(args[..8].try_into().unwrap()));
        let payload = vec![0x77u8; big_len];
        c.pmem.write(cell, &payload)?;
        c.pmem.flush(cell, payload.len())?;
        Ok(None)
    };
    reg.register_pair(BIG_RET, body, body).unwrap();
    reg
}

fn bench_return_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("returns/path");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Small value: one nested call returning through the slot.
    {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry(64);
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &reg).unwrap();
        let mut stack = rt.open_stack(0).unwrap();
        let heap = rt.heap().clone();
        let user_root = rt.user_root().unwrap();
        g.bench_function("small_on_stack", |b| {
            let mut ctx = PContext::new(
                pmem.clone(),
                heap.clone(),
                rt.registry(),
                stack.as_mut(),
                0,
                user_root,
            );
            b.iter(|| {
                let r = ctx.call(SMALL_RET, &[]).unwrap();
                assert_eq!(r, Some(0xABCD_u64.to_le_bytes()));
            });
        });
    }

    // Big values: the caller allocates the cell once and reuses it, so
    // the measurement isolates the write/flush of the result itself.
    for big_len in [64usize, 256, 1024] {
        let pmem = PMemBuilder::new().len(1 << 20).build_in_memory();
        let reg = registry(big_len);
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &reg).unwrap();
        let cell = rt.heap().alloc(big_len).unwrap();
        let mut stack = rt.open_stack(0).unwrap();
        let heap = rt.heap().clone();
        let user_root = rt.user_root().unwrap();
        let id = BenchmarkId::new("big_in_heap", big_len);
        g.bench_with_input(id, &big_len, |b, _| {
            let mut ctx = PContext::new(
                pmem.clone(),
                heap.clone(),
                rt.registry(),
                stack.as_mut(),
                0,
                user_root,
            );
            let args = cell.get().to_le_bytes().to_vec();
            b.iter(|| {
                ctx.call(BIG_RET, &args).unwrap();
            });
        });
    }
    g.finish();
}

fn bench_nested_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("returns/nested_call_depth");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    // A recursive function returning values back up D persistent frames.
    const RECURSE: u64 = 3;
    for depth in [4u64, 16, 64] {
        let pmem = PMemBuilder::new().len(1 << 21).build_in_memory();
        let mut reg = FunctionRegistry::new();
        let body = |c: &mut PContext<'_>, args: &[u8]| {
            let d = u64::from_le_bytes(args[..8].try_into().unwrap());
            if d == 0 {
                return Ok(Some(1u64.to_le_bytes()));
            }
            let r = c.call(RECURSE, &(d - 1).to_le_bytes())?.unwrap();
            let v = u64::from_le_bytes(r) + 1;
            Ok(Some(v.to_le_bytes()))
        };
        reg.register_pair(RECURSE, body, body).unwrap();
        let rt = Runtime::format(
            pmem.clone(),
            RuntimeConfig::new(1).stack_capacity(64 * 1024),
            &reg,
        )
        .unwrap();
        let heap: PHeap = rt.heap().clone();
        let user_root = rt.user_root().unwrap();
        let mut stack = rt.open_stack(0).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut ctx = PContext::new(
                pmem.clone(),
                heap.clone(),
                rt.registry(),
                stack.as_mut(),
                0,
                user_root,
            );
            b.iter(|| {
                let r = ctx.call(RECURSE, &depth.to_le_bytes()).unwrap().unwrap();
                assert_eq!(u64::from_le_bytes(r), depth + 1);
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_return_paths, bench_nested_depth);
criterion_main!(benches);
