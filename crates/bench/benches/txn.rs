//! E11: the Appendix-A transactional for-loop — commit and rollback
//! cost versus transaction size, across stack layouts.
//!
//! * `txn/commit` — items per second for a clean (committing)
//!   transaction: one persistent frame per item plus apply/undo
//!   persists. The unbounded layouts pay their block/resize overheads
//!   here, which is the Appendix-A trade-off (A.2 copies on resize,
//!   A.3 chains blocks).
//! * `txn/rollback` — recovery cost of a transaction cut at the last
//!   item: walk the whole chain top-down, restoring every cell.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pstack_core::{
    FunctionRegistry, RecoveryMode, Runtime, RuntimeConfig, StackKind, TxnLoop, U64CellStep,
};
use pstack_nvram::{FailPlan, PMemBuilder};

const TXN_FN: u64 = 0xBE7C;

fn setup(kind: StackKind, count: u64) -> (pstack_nvram::PMem, Runtime, U64CellStep, TxnLoop) {
    let pmem = PMemBuilder::new().len(1 << 22).build_in_memory();
    let stub = FunctionRegistry::new();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(1).stack_kind(kind).stack_capacity(1024),
        &stub,
    )
    .unwrap();
    let step = U64CellStep::format(&rt, count, Arc::new(|v| v + 1)).unwrap();
    let mut registry = FunctionRegistry::new();
    let txn = TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone())).unwrap();
    let rt = Runtime::open(pmem.clone(), &registry).unwrap();
    (pmem, rt, step, txn)
}

fn bench_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn/commit");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
        for count in [16u64, 64, 256] {
            // A fixed stack of 1 KiB cannot hold 256 deep frames;
            // commit benches on Fixed stay within its capacity.
            if kind == StackKind::Fixed && count > 16 {
                continue;
            }
            g.throughput(Throughput::Elements(count));
            g.bench_with_input(
                BenchmarkId::new(format!("{kind}"), count),
                &count,
                |b, &count| {
                    b.iter(|| {
                        let (_, rt, step, txn) = setup(kind, count);
                        step.begin().unwrap();
                        let report = rt.run_tasks(vec![txn.task(count)]);
                        assert_eq!(report.completed, 1);
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_rollback(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn/rollback");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for count in [16u64, 64, 256] {
        g.throughput(Throughput::Elements(count));
        g.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, &count| {
            b.iter(|| {
                let (pmem, rt, step, txn) = setup(StackKind::List, count);
                step.begin().unwrap();
                // Cut the transaction deep into the chain: a generous
                // event budget that still lands before the commit.
                pmem.arm_failpoint(FailPlan::after_events(count * 10));
                let report = rt.run_tasks(vec![txn.task(count)]);
                assert!(report.crashed);
                let pmem2 = pmem.reopen().unwrap();
                let stub = FunctionRegistry::new();
                let probe = Runtime::open(pmem2.clone(), &stub).unwrap();
                let step2 = U64CellStep::open(&probe, step.base(), Arc::new(|v| v + 1)).unwrap();
                let mut registry = FunctionRegistry::new();
                TxnLoop::register(&mut registry, TXN_FN, Arc::new(step2)).unwrap();
                let rt2 = Runtime::open(pmem2, &registry).unwrap();
                rt2.recover(RecoveryMode::Parallel).unwrap();
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_commit, bench_rollback);
criterion_main!(benches);
