//! Shared workload builders for the benchmark harness.
//!
//! Every table and figure reproduction in EXPERIMENTS.md is regenerated
//! either by a criterion bench in `benches/` or by the `tables` binary
//! (`cargo run -p pstack-bench --bin tables --release`); both build
//! their systems through the helpers here so the configurations stay
//! comparable.

use pstack_core::{
    FixedStack, FunctionRegistry, ListStack, PContext, PersistentStack, Runtime, RuntimeConfig,
    StackKind, VecStack,
};
use pstack_heap::PHeap;
use pstack_nvram::{PMem, PMemBuilder, POffset, StatsSnapshot};

/// Function id of the no-op workload function used by recovery benches.
pub const NOOP_FUNC: u64 = 900;

/// Function id of the slot-writer workload function.
pub const SLOT_FUNC: u64 = 901;

/// Builds an in-memory region of `len` bytes.
#[must_use]
pub fn region(len: usize) -> PMem {
    PMemBuilder::new().len(len).build_in_memory()
}

/// Prints a measured run's persist economy — persist round-trips,
/// durable lines and coalesced bytes per operation, derived from a
/// `PMem` stats delta over `ops` operations. One format for every
/// bench that reports the counters (flush ablation, group-commit
/// sweep), so the lines stay comparable.
pub fn report_persist_economy(label: &str, line_size: usize, delta: StatsSnapshot, ops: f64) {
    println!(
        "{label:<55} stats: persists/op={:.3} lines/op={:.3} coalesced_bytes/op={:.1} \
         redundant_persists/op={:.3}",
        delta.persists as f64 / ops,
        delta.lines_persisted as f64 / ops,
        delta.coalesced_lines as f64 * line_size as f64 / ops,
        delta.redundant_persists as f64 / ops,
    );
    // Pipeline economy: of the device latency charged to async
    // flights, how much was hidden behind record building rather than
    // waited out at the ticket. 1.0 = fully overlapped, 0.0 = the
    // awaits absorbed every charged nanosecond (a synchronous pipeline
    // in disguise). Only printed when flights were actually issued.
    if delta.async_flushes > 0 {
        let charged = delta.async_latency_charged_ns as f64;
        let waited = delta.async_latency_waited_ns as f64;
        let overlap = if charged > 0.0 {
            (1.0 - waited / charged).max(0.0)
        } else {
            0.0
        };
        println!(
            "{label:<55} pipeline: async_flushes/op={:.3} elided_lines/op={:.3} \
             overlap_fraction={overlap:.3}",
            delta.async_flushes as f64 / ops,
            delta.elided_lines as f64 / ops,
        );
    }
}

/// Builds a region plus a heap occupying its upper half.
#[must_use]
pub fn region_with_heap(len: usize) -> (PMem, PHeap) {
    let pmem = region(len);
    let heap_base = (len / 2) as u64;
    let heap = PHeap::format(
        pmem.clone(),
        POffset::new(heap_base),
        len as u64 - heap_base,
    )
    .expect("heap formats");
    (pmem, heap)
}

/// Builds a stack of the given layout at offset 0 (fixed capacity or
/// initial/default block of `capacity` bytes).
#[must_use]
pub fn make_stack(
    kind: StackKind,
    pmem: &PMem,
    heap: &PHeap,
    capacity: u64,
) -> Box<dyn PersistentStack> {
    match kind {
        StackKind::Fixed => {
            Box::new(FixedStack::format(pmem.clone(), POffset::new(0), capacity).unwrap())
        }
        StackKind::Vec => Box::new(
            VecStack::format(pmem.clone(), heap.clone(), POffset::new(0), capacity).unwrap(),
        ),
        StackKind::List => Box::new(
            ListStack::format(pmem.clone(), heap.clone(), POffset::new(0), capacity).unwrap(),
        ),
    }
}

/// Registry with the two standard workload functions: [`NOOP_FUNC`]
/// (its recover dual spins for the number of iterations encoded in its
/// 8-byte argument — zero means a pure no-op) and [`SLOT_FUNC`]
/// (persists `args[8..16]` into user slot `args[0..8]`, idempotent).
#[must_use]
pub fn workload_registry() -> FunctionRegistry {
    let mut reg = FunctionRegistry::new();
    let spin = |_c: &mut PContext<'_>, args: &[u8]| {
        let iters = args
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        // CPU-bound application work, as real recover duals perform
        // when completing or rolling back an interrupted operation.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        Ok(None)
    };
    reg.register_pair(NOOP_FUNC, spin, spin).unwrap();
    let body = |c: &mut PContext<'_>, args: &[u8]| {
        let slot = u64::from_le_bytes(args[..8].try_into().unwrap());
        let val = u64::from_le_bytes(args[8..16].try_into().unwrap());
        let off = c.user_root() + slot * 8;
        c.pmem.write_u64(off, val)?;
        c.pmem.flush(off, 8)?;
        Ok(None)
    };
    reg.register_pair(SLOT_FUNC, body, body).unwrap();
    reg
}

/// Builds a crashed system with `workers` stacks each holding `depth`
/// in-flight [`NOOP_FUNC`] frames whose recover duals each perform
/// `work_iters` iterations of CPU work, reopened and ready for
/// `Runtime::recover` — the recovery-benchmark fixture (E5).
/// `work_iters == 0` measures the bare stack-walk machinery.
#[must_use]
pub fn crashed_system(
    workers: usize,
    depth: usize,
    work_iters: u64,
) -> (PMem, Runtime, FunctionRegistry) {
    let pmem = region(1 << 22);
    let reg = workload_registry();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(workers).stack_capacity(64 * 1024),
        &reg,
    )
    .unwrap();
    for pid in 0..workers {
        let mut stack = rt.open_stack(pid).unwrap();
        for _ in 0..depth {
            stack.push(NOOP_FUNC, &work_iters.to_le_bytes()).unwrap();
        }
    }
    pmem.crash_now(0, 1.0);
    let pmem = pmem.reopen().unwrap();
    let rt = Runtime::open(pmem.clone(), &reg).unwrap();
    (pmem, rt, reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_core::RecoveryMode;

    #[test]
    fn crashed_system_recovers_expected_frames() {
        let (_, rt, _) = crashed_system(3, 7, 100);
        let report = rt.recover(RecoveryMode::Parallel).unwrap();
        assert_eq!(report.frames_recovered, vec![7, 7, 7]);
    }

    #[test]
    fn make_stack_builds_all_kinds() {
        for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            let (pmem, heap) = region_with_heap(1 << 18);
            let mut s = make_stack(kind, &pmem, &heap, 4096);
            s.push(1, b"x").unwrap();
            assert_eq!(s.depth(), 1);
        }
    }
}
