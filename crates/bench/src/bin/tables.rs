//! Regenerates every table in EXPERIMENTS.md:
//!
//! ```sh
//! cargo run -p pstack-bench --bin tables --release
//! ```
//!
//! T1/T2/T3 — the §5.2 verification campaigns (E7/E8/E9);
//! T4 — flush accounting for the stack protocol (E13);
//! T5 — parallel vs serial recovery (E5);
//! T6 — unbounded-stack growth machinery counters (E12);
//! T7 — serializability-verifier scaling (E10);
//! T8 — queue crash campaigns, correct and no-scan (E15);
//! T9 — transactional-loop crash-point sweep (E11);
//! T10 — real-`kill(1)` campaigns over a file image (E18).

use std::sync::Arc;
use std::time::Instant;

use pstack_bench::{crashed_system, region_with_heap};
use pstack_chaos::{run_campaign, run_queue_campaign, CampaignConfig, QueueCampaignConfig};
#[cfg(all(unix, feature = "kill-harness"))]
use pstack_chaos::{run_kill_campaign, KillCampaignConfig};
use pstack_core::{
    FixedStack, FunctionRegistry, ListStack, PersistentStack, RecoveryMode, Runtime, RuntimeConfig,
    StackKind, TxnLoop, U64CellStep, VecStack,
};
use pstack_nvram::{FailPlan, PMemBuilder, POffset};
use pstack_recoverable::{CasVariant, QueueVariant};
use pstack_verify::{check_serializability, CasHistory, CasOp};

fn campaign_table(title: &str, base: &CampaignConfig, seeds: u64) -> (usize, usize) {
    println!("\n### {title}\n");
    println!("| seed | rounds | crashes | recovery crashes | frames recovered | verdict |");
    println!("|-----:|-------:|--------:|-----------------:|-----------------:|---------|");
    let mut serializable = 0usize;
    for seed in 0..seeds {
        let cfg = CampaignConfig {
            seed,
            ..base.clone()
        };
        let r = run_campaign(&cfg).expect("campaign setup");
        let verdict = if r.is_serializable() {
            serializable += 1;
            "serializable"
        } else {
            "**NOT serializable**"
        };
        println!(
            "| {seed} | {} | {} | {} | {} | {verdict} |",
            r.rounds, r.crashes, r.recovery_crashes, r.recovered_frames
        );
    }
    (serializable, seeds as usize)
}

fn flush_accounting() {
    println!("\n### T4 — flush accounting per stack operation (E13)\n");
    println!("| operation | writes | bytes written | flush calls | lines persisted |");
    println!("|-----------|-------:|--------------:|------------:|----------------:|");
    let (pmem, _) = region_with_heap(1 << 20);
    let mut stack = FixedStack::format(pmem.clone(), POffset::new(0), 256 * 1024).unwrap();

    for arg_len in [0usize, 64, 256, 1024] {
        let args = vec![0u8; arg_len];
        let before = pmem.stats().snapshot();
        stack.push(1, &args).unwrap();
        let d = pmem.stats().snapshot() - before;
        println!(
            "| push ({arg_len}-byte args) | {} | {} | {} | {} |",
            d.writes, d.bytes_written, d.flush_calls, d.lines_persisted
        );
    }
    let before = pmem.stats().snapshot();
    stack.pop().unwrap();
    let d = pmem.stats().snapshot() - before;
    println!(
        "| pop (any size) | {} | {} | {} | {} |",
        d.writes, d.bytes_written, d.flush_calls, d.lines_persisted
    );
}

fn recovery_speedup() {
    println!("\n### T5 — parallel vs serial recovery, 4 workers (E5)\n");
    println!("Recover duals perform CPU work (completing interrupted operations). The");
    println!("modelled speedup is total work / critical path from a serial pass — the");
    println!("figure an ideally parallel host achieves; measured wall-clock speedup is");
    println!(
        "also shown but is a property of this host's {} core(s), not the algorithm.\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("| work per frame | frames per stack | serial (sum) | critical path | modelled speedup | measured parallel |");
    println!("|---------------:|-----------------:|-------------:|--------------:|-----------------:|------------------:|");
    for work in [0u64, 20_000] {
        for depth in [16usize, 64, 256] {
            // Serial pass: per-worker timings give sum and critical path.
            let rep = (0..3)
                .map(|_| {
                    let (_, rt, _) = crashed_system(4, depth, work);
                    let rep = rt.recover(RecoveryMode::Serial).unwrap();
                    assert_eq!(rep.total_frames(), 4 * depth);
                    rep
                })
                .min_by_key(|r| r.total_work())
                .unwrap();
            // Parallel pass wall-clock, for reference.
            let parallel = (0..3)
                .map(|_| {
                    let (_, rt, _) = crashed_system(4, depth, work);
                    let t = Instant::now();
                    rt.recover(RecoveryMode::Parallel).unwrap();
                    t.elapsed()
                })
                .min()
                .unwrap();
            println!(
                "| {work} | {depth} | {:.2?} | {:.2?} | {:.2}x | {parallel:.2?} |",
                rep.total_work(),
                rep.critical_path(),
                rep.modeled_speedup()
            );
        }
    }
}

fn variant_counters() {
    println!("\n### T6 — unbounded-stack growth machinery (E12)\n");
    println!("| variant | after 512 pushes | after 512 pops |");
    println!("|---------|------------------|----------------|");
    {
        let (pmem, heap) = region_with_heap(1 << 22);
        let mut s = VecStack::format(pmem, heap, POffset::new(0), 128).unwrap();
        for i in 0..512u64 {
            s.push(i, &[0u8; 24]).unwrap();
        }
        let grown = format!("{} relocations, capacity {}", s.relocations(), s.capacity());
        for _ in 0..512 {
            s.pop().unwrap();
        }
        println!(
            "| vec (A.2) | {grown} | {} relocations, capacity {} |",
            s.relocations(),
            s.capacity()
        );
    }
    {
        let (pmem, heap) = region_with_heap(1 << 22);
        let mut s = ListStack::format(pmem, heap, POffset::new(0), 256).unwrap();
        for i in 0..512u64 {
            s.push(i, &[0u8; 24]).unwrap();
        }
        let grown = format!(
            "{} blocks chained, {} blocks live",
            s.blocks_chained(),
            s.block_count()
        );
        for _ in 0..512 {
            s.pop().unwrap();
        }
        println!(
            "| list (A.3) | {grown} | {} blocks released, {} block live |",
            s.blocks_released(),
            s.block_count()
        );
    }
}

fn verifier_scaling() {
    println!("\n### T7 — serializability verifier scaling (E10)\n");
    println!("| ops | time (scrambled chain + failed ops) |");
    println!("|----:|------------------------------------:|");
    for n in [1_000usize, 10_000, 100_000, 400_000] {
        let mut ops: Vec<CasOp> = (0..n as i64)
            .map(|i| CasOp {
                pid: 0,
                old: i,
                new: i + 1,
                success: true,
            })
            .collect();
        for k in 0..n / 4 {
            ops.push(CasOp {
                pid: 1,
                old: -(k as i64) - 1,
                new: 0,
                success: false,
            });
        }
        ops.reverse();
        ops.rotate_left(n / 3);
        let h = CasHistory::new(0, n as i64, ops);
        let t = Instant::now();
        let verdict = check_serializability(&h);
        let dt = t.elapsed();
        assert!(verdict.is_serializable());
        println!("| {n} | {dt:.2?} |");
    }
}

fn queue_campaign_table(title: &str, base: &QueueCampaignConfig, seeds: u64) -> (usize, usize) {
    println!("\n### {title}\n");
    println!("| seed | rounds | crashes | recovery crashes | frames recovered | verdict |");
    println!("|-----:|-------:|--------:|-----------------:|-----------------:|---------|");
    let mut fifo = 0usize;
    for seed in 0..seeds {
        let cfg = QueueCampaignConfig {
            seed,
            ..base.clone()
        };
        let r = run_queue_campaign(&cfg).expect("queue campaign setup");
        let verdict = if r.is_fifo() {
            fifo += 1;
            "FIFO"
        } else {
            "**NOT FIFO**"
        };
        println!(
            "| {seed} | {} | {} | {} | {} | {verdict} |",
            r.rounds, r.crashes, r.recovery_crashes, r.recovered_frames
        );
    }
    (fifo, seeds as usize)
}

fn txn_sweep() {
    println!("\n### T9 — transactional-loop crash-point sweep, 6 items (E11)\n");
    println!(
        "Every persistence event of one whole transaction is used as a crash\n\
         point; after recovery the array must be fully updated or fully\n\
         restored. `torn` must be 0 — it would have been nonzero without the\n\
         deepest-frame commit flag (see `pstack-core`'s `txn` module docs).\n"
    );
    println!("| stack | crash points | rolled back | committed | torn |");
    println!("|-------|-------------:|------------:|----------:|-----:|");
    const TXN_FN: u64 = 0x7AB1;
    for kind in [StackKind::Vec, StackKind::List] {
        let count = 6u64;
        let setup = || {
            let pmem = PMemBuilder::new().len(1 << 21).build_in_memory();
            let stub = FunctionRegistry::new();
            let rt = Runtime::format(
                pmem.clone(),
                RuntimeConfig::new(1).stack_kind(kind).stack_capacity(512),
                &stub,
            )
            .unwrap();
            let step = U64CellStep::format(&rt, count, Arc::new(|v| v * 2 + 1)).unwrap();
            for i in 0..count {
                step.write_item(i, 100 + i).unwrap();
            }
            let mut registry = FunctionRegistry::new();
            let txn = TxnLoop::register(&mut registry, TXN_FN, Arc::new(step.clone())).unwrap();
            let rt = Runtime::open(pmem.clone(), &registry).unwrap();
            (pmem, rt, step, txn)
        };
        let (_, rt, step, txn) = setup();
        let before = step.read_all().unwrap();
        let after: Vec<u64> = before.iter().map(|v| v * 2 + 1).collect();
        step.begin().unwrap();
        let e0 = rt.pmem().events();
        assert_eq!(rt.run_tasks(vec![txn.task(count)]).completed, 1);
        let total = rt.pmem().events() - e0;

        let (mut rolled, mut committed, mut torn) = (0usize, 0usize, 0usize);
        for k in 0..total {
            let (pmem, rt, step, txn) = setup();
            step.begin().unwrap();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let report = rt.run_tasks(vec![txn.task(count)]);
            if !report.crashed {
                committed += 1;
                continue;
            }
            let pmem2 = pmem.reopen().unwrap();
            let stub = FunctionRegistry::new();
            let probe = Runtime::open(pmem2.clone(), &stub).unwrap();
            let step2 = U64CellStep::open(&probe, step.base(), Arc::new(|v| v * 2 + 1)).unwrap();
            let mut registry = FunctionRegistry::new();
            TxnLoop::register(&mut registry, TXN_FN, Arc::new(step2.clone())).unwrap();
            let rt2 = Runtime::open(pmem2, &registry).unwrap();
            rt2.recover(RecoveryMode::Parallel).unwrap();
            let got = step2.read_all().unwrap();
            if got == before {
                rolled += 1;
            } else if got == after {
                committed += 1;
            } else {
                torn += 1;
            }
        }
        println!("| {kind} | {total} | {rolled} | {committed} | {torn} |");
        assert_eq!(torn, 0, "transaction torn on {kind}");
    }
}

#[cfg(all(unix, feature = "kill-harness"))]
fn kill_campaigns() {
    println!("\n### T10 — real-`kill(1)` campaigns, file-backed image (E18)\n");
    // The kill harness re-invokes the `kill_campaign` binary; locate it
    // next to this one in the target directory.
    let exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("kill_campaign")))
        .filter(|p| p.exists());
    let Some(exe) = exe else {
        println!(
            "skipped: `kill_campaign` binary not found next to `tables` — build it\n\
             first (`cargo build -p pstack-chaos --release`) and rerun."
        );
        return;
    };
    println!(
        "Worker **processes** on a file-backed image with the modelled 150 µs/line\n\
         HDD persist latency, SIGKILLed by the driver at random wall-clock moments\n\
         (kill timing is not seeded — rows vary run to run, verdicts must not).\n"
    );
    println!("| seed | workload | rounds | kills | recovery kills | verdict |");
    println!("|-----:|----------|-------:|------:|---------------:|---------|");
    let mut consistent = 0usize;
    let mut total = 0usize;
    for (seed, label) in [
        (1u64, "CAS wide"),
        (2, "CAS wide"),
        (3, "CAS narrow"),
        (4, "CAS narrow"),
        (5, "queue"),
        (6, "queue"),
    ] {
        let mut image = std::env::temp_dir();
        image.push(format!(
            "pstack-tables-kill-{seed}-{}.img",
            std::process::id()
        ));
        let mut cfg = KillCampaignConfig::new(&image, 60, seed)
            .kill_delay_ms(2, 20)
            .max_kills(5);
        cfg = match label {
            "CAS narrow" => cfg.narrow(),
            "queue" => cfg.queue(QueueVariant::Nsrl),
            _ => cfg,
        };
        let r = run_kill_campaign(&exe, &cfg).expect("kill campaign");
        total += 1;
        let verdict = if r.is_consistent() {
            consistent += 1;
            "consistent"
        } else {
            "**VIOLATION**"
        };
        println!(
            "| {seed} | {label} | {} | {} | {} | {verdict} |",
            r.rounds, r.kills, r.recovery_kills,
        );
        let _ = std::fs::remove_file(&image);
    }
    println!(
        "\n**{consistent}/{total} consistent** (serializable for CAS, FIFO for queue; \
         paper: all serializable)"
    );
    assert_eq!(consistent, total);
}

fn main() {
    println!("# pstack experiment tables (generated by `tables`)\n");
    println!(
        "Host: {} workers available",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let (ok, n) = campaign_table(
        "T1 — correct NSRL CAS, wide range [-100000, 100000] (E7)",
        &CampaignConfig::wide(120, 0),
        8,
    );
    println!("\n**{ok}/{n} serializable** (paper: all serializable)");
    assert_eq!(ok, n);

    let (ok, n) = campaign_table(
        "T2 — correct NSRL CAS, narrow range [-10, 10] (E8)",
        &CampaignConfig::narrow(120, 0),
        8,
    );
    println!("\n**{ok}/{n} serializable** (paper: all serializable)");
    assert_eq!(ok, n);

    let buggy = CampaignConfig {
        value_range: (-1, 1),
        max_crashes: 40,
        crash_window: (10, 80),
        recovery_crash_prob: 0.5,
        access_jitter: Some((0.15, 40)),
        ..CampaignConfig::wide(80, 0)
    }
    .variant(CasVariant::NoMatrix);
    let (ok, n) = campaign_table(
        "T3 — buggy CAS (matrix R removed), values in [-1, 1] (E9)",
        &buggy,
        12,
    );
    println!(
        "\n**{}/{n} NON-serializable** (paper: bug detected; detection is probabilistic per run)",
        n - ok
    );
    assert!(n - ok > 0, "bug must be detected at least once");

    flush_accounting();
    recovery_speedup();
    variant_counters();
    verifier_scaling();

    let (ok, n) = queue_campaign_table(
        "T8a — correct NSRL queue, 60% enqueues (E15)",
        &QueueCampaignConfig::new(80, 0),
        8,
    );
    println!("\n**{ok}/{n} FIFO** (correct queue: all executions verify)");
    assert_eq!(ok, n);

    let noscan = QueueCampaignConfig {
        max_crashes: 40,
        crash_window: (10, 80),
        recovery_crash_prob: 0.5,
        access_jitter: Some((0.15, 40)),
        ..QueueCampaignConfig::new(80, 0)
    }
    .variant(QueueVariant::NoScan);
    let (ok, n) = queue_campaign_table(
        "T8b — buggy queue (evidence scan removed), crash-heavy (E15)",
        &noscan,
        12,
    );
    println!(
        "\n**{}/{n} NOT FIFO** (no-scan bug detected; detection is probabilistic per run)",
        n - ok
    );
    assert!(n - ok > 0, "queue bug must be detected at least once");

    txn_sweep();
    #[cfg(all(unix, feature = "kill-harness"))]
    kill_campaigns();
    #[cfg(not(all(unix, feature = "kill-harness")))]
    println!(
        "\n### T10 — real-`kill(1)` campaigns, file-backed image (E18)\n\n\
         skipped: rebuild with `--features kill-harness` (unix only) to regenerate."
    );

    println!("\nall table assertions hold");
}
