//! Property tests for the serving layer: random retry schedules ×
//! random crash placements × random batch sizes, asserting the serving
//! contract — **at-most-once effects** (answers match the sequential
//! spec, published records carry no duplicate tags) with
//! **at-least-once acks** (every client finishes its full quota), and
//! overload strictly shedding as explicit `Overloaded` responses,
//! never a queue-full panic or a silent drop.
//!
//! The crash model here is the volatile one: the server process dies
//! (admission queues, in-flight map and front end are lost; the wire
//! drops every frame) while NVRAM survives. Re-admissions of pending
//! requests after the restart flow through the recovery path —
//! `recover_batch`'s evidence scan is what makes the retries
//! effect-free. The full power-failure model (regions crashing
//! mid-persist) is the chaos campaign's job.
//!
//! # Reproducing failures
//!
//! The proptest shim has no shrinking; every case is deterministic per
//! (test, case index). `PROPTEST_SHIM_SEED=<u64>` perturbs all case
//! seeds, `PROPTEST_CASES=<n>` sets cases per property.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use pstack_kv::{
    shard_of, KvRequestTable, KvTaskOp, KvTaskResult, KvVariant, ReqSubmit, ShardedKvStore,
};
use pstack_nvram::{PMem, PMemBuilder};
use pstack_server::proto::{kind_of, req_id_for, RequestBody, Response};
use pstack_server::{
    ChannelConn, ChannelHub, ClientConfig, ClientSim, Clock, KvServeFunction, ServerCore,
    Submission, VirtualClock,
};
use pstack_verify::{
    check_kv_sharded_gen, KvAnswer, KvOpKind, KvShardedHistory, KvSpec, KvWitnessRecord,
};

const REGION: usize = 1 << 21;
const LOG_CAP: u64 = 4096;
const SERVICE_TICK_NS: u64 = 100_000;
const REBOOT_PENALTY_NS: u64 = 2_000_000;

/// The serving fixture: durable state (store + per-shard request
/// tables) that survives the property's crash placements, while the
/// `ServerCore` front end is rebuilt per boot.
struct Fixture {
    store: ShardedKvStore,
    tables: Vec<KvRequestTable>,
}

impl Fixture {
    fn new(nshards: usize) -> Self {
        let regions: Vec<PMem> = (0..nshards)
            .map(|_| {
                PMemBuilder::new()
                    .len(REGION)
                    .eager_flush(true)
                    .build_in_memory()
            })
            .collect();
        let store = ShardedKvStore::format(&regions, 16, LOG_CAP, KvVariant::Nsrl).unwrap();
        let tables: Vec<KvRequestTable> = (0..nshards)
            .map(|s| KvRequestTable::format(regions[s].clone(), store.heap(s), 64).unwrap())
            .collect();
        Fixture { store, tables }
    }

    fn core(&self, queue_capacity: usize, batch: usize) -> ServerCore {
        ServerCore::new(
            KvServeFunction::new(self.store.clone(), self.tables.clone()),
            queue_capacity,
            batch,
        )
    }
}

/// Totals the driver accumulates across all boots of one case.
#[derive(Default)]
struct DriveTotals {
    admitted: u64,
    shed: u64,
    crashes: usize,
}

/// Drives the client population to completion against a fresh front
/// end per boot, crashing the server (volatile state + wire) at the
/// given iteration indices. Windows execute via `pump_direct`, so the
/// batch grouping is exactly the admission queues' doing.
#[allow(clippy::too_many_arguments)]
fn drive(
    fixture: &Fixture,
    clients: &mut [ClientSim],
    conns: &[ChannelConn],
    hub: &ChannelHub,
    clock: &VirtualClock,
    queue_capacity: usize,
    batch: usize,
    crash_at: &[usize],
) -> Result<DriveTotals, TestCaseError> {
    let mut crash_at: Vec<usize> = crash_at.to_vec();
    crash_at.sort_unstable();
    crash_at.dedup();
    let mut crash_next = 0usize;

    let mut core = fixture.core(queue_capacity, batch);
    let mut in_flight: HashMap<u64, KvTaskOp> = HashMap::new();
    let mut totals = DriveTotals::default();
    let mut iters = 0usize;

    loop {
        prop_assert!(iters < 10_000, "serving loop did not quiesce");
        let Some(wake) = clients.iter().filter_map(ClientSim::next_wake).min() else {
            break;
        };
        clock.advance_to(wake);

        // A crash placement: the process dies — queues, dedup map and
        // every in-flight frame are gone; the durable store and tables
        // survive; the clients see a reset and retry.
        if crash_next < crash_at.len() && iters >= crash_at[crash_next] {
            crash_next += 1;
            totals.crashes += 1;
            totals.admitted += core.admitted();
            totals.shed += core.shed();
            core = fixture.core(queue_capacity, batch);
            in_flight.clear();
            hub.reset();
            clock.advance(REBOOT_PENALTY_NS);
            let now = clock.now_ns();
            for c in clients.iter_mut() {
                c.on_crash(now);
            }
        }

        let now = clock.now_ns();
        for (c, conn) in clients.iter_mut().zip(conns) {
            if let Some(req) = c.poll(now) {
                if let RequestBody::Op(op) = req.body {
                    in_flight.insert(req.req_id, op);
                }
                conn.send(&req);
            }
        }

        while let Some(req) = hub.poll_request().unwrap() {
            let resp = match req.body {
                RequestBody::Ack => {
                    core.ack(req.req_id).unwrap();
                    Some(Response::AckOk { req_id: req.req_id })
                }
                RequestBody::Op(op) => match core.submit(req.req_id, op).unwrap() {
                    Submission::Answered(answer) => Some(Response::Done {
                        req_id: req.req_id,
                        kind: kind_of(op),
                        answer,
                    }),
                    Submission::Overloaded => Some(Response::Overloaded { req_id: req.req_id }),
                    Submission::Stale => Some(Response::Stale { req_id: req.req_id }),
                    Submission::Queued => None,
                },
            };
            if let Some(resp) = resp {
                hub.respond(&resp);
            }
        }

        for (req_id, answer) in core.pump_direct(0).unwrap() {
            hub.respond(&Response::Done {
                req_id,
                kind: in_flight.get(&req_id).map_or(0, |&op| kind_of(op)),
                answer,
            });
        }

        clock.advance(SERVICE_TICK_NS);
        let now = clock.now_ns();
        for (c, conn) in clients.iter_mut().zip(conns) {
            while let Some(resp) = conn.try_recv().unwrap() {
                c.deliver(now, &resp);
            }
        }
        iters += 1;
    }

    totals.admitted += core.admitted();
    totals.shed += core.shed();
    Ok(totals)
}

/// `true` if the recorded answer says the operation mutated the store
/// (and therefore published exactly one version record).
fn is_effectful(answer: KvAnswer) -> bool {
    matches!(
        answer,
        KvAnswer::Stored(true) | KvAnswer::Deleted(true) | KvAnswer::Swapped(true)
    )
}

/// The published, non-compacted record tags of the quiescent store —
/// duplicate-free by assertion (a duplicate is a double-applied op).
fn published_tags(store: &ShardedKvStore) -> Result<HashSet<(u64, u64)>, TestCaseError> {
    let mut tags = HashSet::new();
    for shard in store.snapshot_sharded().unwrap() {
        for chain in shard {
            for rec in chain {
                let w = KvWitnessRecord::from(rec);
                if w.compacted {
                    continue;
                }
                prop_assert!(
                    tags.insert((w.pid, w.seq)),
                    "duplicate effect: tag ({}, {}) published twice",
                    w.pid,
                    w.seq
                );
            }
        }
    }
    Ok(tags)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One client, random retry schedule (timeout/backoff), random
    /// batch size, random crash placements: the completed run must
    /// answer exactly as the sequential spec, and the store must hold
    /// exactly one record per effectful op — at-most-once effects,
    /// at-least-once acks.
    #[test]
    fn single_client_exactly_once_across_crashes(
        n_ops in 4usize..24,
        batch in 1usize..6,
        timeout_ns in 300_000u64..3_000_000,
        backoff_base_ns in 100_000u64..1_000_000,
        seed in 0u64..1_000_000,
        crash_at in proptest::collection::vec(0usize..60, 0..4),
    ) {
        let fixture = Fixture::new(2);
        let clock = VirtualClock::new();
        let hub = ChannelHub::new();
        let mut clients = vec![ClientSim::new(ClientConfig {
            client_id: 1,
            n_ops,
            key_space: 8,
            timeout_ns,
            backoff_base_ns,
            seed,
            ..ClientConfig::default()
        })];
        let conns = vec![hub.connect(1)];

        drive(&fixture, &mut clients, &conns, &hub, &clock, 32, batch, &crash_at)?;

        // At-least-once acks: the loop only quiesces with every op done
        // *and* acked, and the quota is exactly n_ops.
        let stats = clients[0].stats();
        prop_assert_eq!(stats.completed, n_ops as u64);
        prop_assert!(stats.acks_sent >= stats.completed);

        // Answer exactness: a single client's completions are totally
        // ordered, so the observations must replay against the spec.
        let mut spec = KvSpec::new();
        let mut effectful = HashSet::new();
        for op in clients[0].observations() {
            let expected = match op.kind {
                KvOpKind::Put => KvAnswer::Stored(spec.put(op.key, op.value)),
                KvOpKind::Get => KvAnswer::Got(spec.get(op.key)),
                KvOpKind::Delete => KvAnswer::Deleted(spec.delete(op.key)),
                KvOpKind::Cas => KvAnswer::Swapped(spec.cas(op.key, op.expected, op.value)),
            };
            prop_assert_eq!(op.answer, expected, "tag ({}, {})", op.pid, op.seq);
            if is_effectful(op.answer) {
                effectful.insert((op.pid, op.seq));
            }
        }

        // At-most-once effects: the published tags are exactly the
        // effectful observations — no duplicates, nothing phantom,
        // nothing lost, however the retries and crashes interleaved.
        let tags = published_tags(&fixture.store)?;
        prop_assert_eq!(tags, effectful);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Several clients over several shards, random batch sizes and
    /// queue capacities (down to 1, forcing overload sheds into the
    /// retry schedules), random crash placements: the client-observed
    /// history must pass the sharded exactly-once checker.
    #[test]
    fn concurrent_clients_linearize_across_crashes(
        clients_n in 2usize..5,
        n_ops in 4usize..12,
        batch in 1usize..6,
        queue_capacity in 1usize..16,
        seed in 0u64..1_000_000,
        crash_at in proptest::collection::vec(0usize..80, 0..4),
    ) {
        let nshards = 2;
        let fixture = Fixture::new(nshards);
        let clock = VirtualClock::new();
        let hub = ChannelHub::new();
        let mut clients: Vec<ClientSim> = (0..clients_n)
            .map(|i| ClientSim::new(ClientConfig {
                client_id: i as u32 + 1,
                n_ops,
                key_space: 8,
                seed: seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ..ClientConfig::default()
            }))
            .collect();
        let conns: Vec<ChannelConn> =
            (1..=clients_n as u32).map(|id| hub.connect(id)).collect();

        let totals = drive(
            &fixture, &mut clients, &conns, &hub, &clock, queue_capacity, batch, &crash_at,
        )?;

        for c in &clients {
            prop_assert_eq!(c.stats().completed, n_ops as u64);
        }
        // Sheds are explicit: every admission either queued or shed,
        // and the sheds surfaced to clients as Overloaded responses.
        if totals.shed > 0 {
            let overloads: u64 = clients.iter().map(|c| c.stats().overloads).sum();
            prop_assert!(overloads > 0, "{} sheds never surfaced", totals.shed);
        }

        let history = KvShardedHistory {
            ops: clients
                .iter()
                .flat_map(|c| c.observations().iter().cloned())
                .collect(),
            shards: fixture
                .store
                .snapshot_sharded()
                .unwrap()
                .into_iter()
                .map(|chains| {
                    chains
                        .into_iter()
                        .map(|chain| chain.into_iter().map(KvWitnessRecord::from).collect())
                        .collect()
                })
                .collect(),
        };
        let verdict = check_kv_sharded_gen(
            &history,
            |key| shard_of(key, nshards),
            &fixture.store.generations().unwrap(),
        );
        prop_assert!(verdict.is_linearizable(), "{:?}", verdict.violation());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Overload discipline: flooding one shard with more fresh requests
    /// than the queue holds must produce exactly `capacity` admissions
    /// and `flood - capacity` explicit `Overloaded` answers — every
    /// submission accounted for, no panic, no silent drop — and the
    /// shed requests must still serve exactly once when re-driven.
    #[test]
    fn overload_sheds_explicitly_before_any_drop(
        queue_capacity in 1usize..4,
        flood in 8u32..40,
        batch in 1usize..6,
    ) {
        let fixture = Fixture::new(1);
        let core = fixture.core(queue_capacity, batch);

        let mut queued = Vec::new();
        let mut shed = Vec::new();
        for i in 1..=flood {
            let req_id = req_id_for(1, i);
            match core.submit(req_id, KvTaskOp::Put { key: u64::from(i), value: 1 }).unwrap() {
                Submission::Queued => queued.push(req_id),
                Submission::Overloaded => shed.push(req_id),
                Submission::Answered(_) => prop_assert!(false, "nothing pumped yet"),
                Submission::Stale => prop_assert!(false, "nothing acked yet"),
            }
        }
        prop_assert_eq!(queued.len(), queue_capacity.min(flood as usize));
        prop_assert_eq!(queued.len() + shed.len(), flood as usize);
        prop_assert_eq!(core.shed(), shed.len() as u64);

        // Re-driving everything (shed first) to completion: each op
        // lands exactly once despite the duplicate submissions.
        let mut done = HashSet::new();
        for round in 0..200usize {
            let _ = round;
            for &req_id in shed.iter().chain(&queued) {
                if done.contains(&req_id) {
                    continue;
                }
                let op = KvTaskOp::Put { key: u64::from(req_id as u32), value: 1 };
                match core.submit(req_id, op).unwrap() {
                    Submission::Answered(_) => {
                        done.insert(req_id);
                    }
                    Submission::Queued | Submission::Overloaded => {}
                    Submission::Stale => {
                        prop_assert!(false, "no acks in this property");
                    }
                }
            }
            if done.len() == flood as usize {
                break;
            }
            core.pump_direct(0).unwrap();
        }
        prop_assert_eq!(done.len(), flood as usize, "shed requests must eventually serve");

        let tags = published_tags(&fixture.store)?;
        prop_assert_eq!(tags.len(), flood as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recycling × retransmission: three clients interleave advancing
    /// their sequence numbers (submit → execute → ack, recycling
    /// slots under churn) with buggy retransmissions of already-acked
    /// ids. The table must never re-admit an acked id as `Fresh` —
    /// every such retransmission is answered from surviving evidence
    /// (`Known`) or shed as `Stale` — and each admitted request
    /// executes exactly once, however small the table.
    #[test]
    fn recycled_retransmissions_are_never_readmitted(
        capacity in 1u32..6,
        steps in proptest::collection::vec(0u32..1_000_000, 20..120),
    ) {
        use std::collections::VecDeque;

        use pstack_heap::PHeap;
        use pstack_nvram::POffset;

        let pmem = PMemBuilder::new()
            .len(1 << 16)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        let table = KvRequestTable::format(pmem.clone(), &heap, capacity).unwrap();

        // Per-client model. Acks pop in submission order, so a
        // client's acked seqs are exactly the contiguous range
        // `1..=acked_max`.
        let mut next_seq = [1u32; 3];
        let mut unacked: [VecDeque<u32>; 3] = Default::default();
        let mut acked_max = [0u32; 3];
        let mut executed = HashSet::new();

        for v in steps {
            let c = (v % 3) as usize;
            let client = c as u32 + 1;
            let kind = (v / 3) % 8;
            if kind >= 6 && acked_max[c] > 0 {
                // Buggy retransmission of an acked (possibly recycled)
                // seq: shed or answered from evidence, never re-run.
                let seq = (v / 24) % acked_max[c] + 1;
                match table
                    .submit(req_id_for(client, seq), KvTaskOp::Get { key: u64::from(seq) })
                    .unwrap()
                {
                    ReqSubmit::Known { answer, .. } => {
                        prop_assert!(answer.is_some(), "acked slots hold durable answers");
                    }
                    ReqSubmit::Stale => {}
                    other => prop_assert!(false, "acked id re-admitted as {other:?}"),
                }
            } else if kind >= 4 && !unacked[c].is_empty() {
                let seq = unacked[c].pop_front().unwrap();
                prop_assert!(table.ack(req_id_for(client, seq)).unwrap());
                acked_max[c] = acked_max[c].max(seq);
            } else {
                let seq = next_seq[c];
                match table
                    .submit(req_id_for(client, seq), KvTaskOp::Get { key: u64::from(seq) })
                    .unwrap()
                {
                    ReqSubmit::Fresh(slot) => {
                        prop_assert!(
                            executed.insert((client, seq)),
                            "({client}, {seq}) executed twice"
                        );
                        table.mark_done(slot, 0, KvTaskResult::Got(None)).unwrap();
                        unacked[c].push_back(seq);
                        next_seq[c] += 1;
                    }
                    // Unacked answers pin their slots until the
                    // clients drain their ack queues.
                    ReqSubmit::Full => prop_assert_eq!(table.live(), u64::from(capacity)),
                    other => prop_assert!(false, "fresh id answered as {other:?}"),
                }
            }
        }

        // Exactly-once: every admitted id executed once, through
        // however many recycles the churn forced.
        let admitted: u32 = next_seq.iter().map(|&n| n - 1).sum();
        prop_assert_eq!(executed.len() as u32, admitted);
        prop_assert!(table.live_high_water() <= u64::from(capacity));
    }
}
