//! Round-trip over a real unix socket: the `cfg(unix)` transport
//! serves the same frames the portable channel hub does, end to end —
//! connect, mutate, dedup a retransmission, ack, read back.

#![cfg(unix)]

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;

use pstack_kv::{KvRequestTable, KvTaskOp, KvTaskResult, KvVariant, ShardedKvStore};
use pstack_nvram::{PMem, PMemBuilder};
use pstack_server::proto::{
    decode_response, encode_request, read_frame, req_id_for, write_frame, Request, RequestBody,
    Response,
};
use pstack_server::{transport, KvServeFunction, ServerCore};

fn build_core(nshards: usize) -> ServerCore {
    let regions: Vec<PMem> = (0..nshards)
        .map(|_| {
            PMemBuilder::new()
                .len(1 << 21)
                .eager_flush(true)
                .build_in_memory()
        })
        .collect();
    let store = ShardedKvStore::format(&regions, 64, 4096, KvVariant::Nsrl).unwrap();
    let tables: Vec<KvRequestTable> = (0..nshards)
        .map(|s| KvRequestTable::format(regions[s].clone(), store.heap(s), 64).unwrap())
        .collect();
    ServerCore::new(KvServeFunction::new(store, tables), 128, 8)
}

fn round_trip(stream: &mut (impl Read + Write), req: &Request) -> Response {
    write_frame(stream, &encode_request(req)).unwrap();
    let frame = read_frame(stream).unwrap();
    decode_response(&frame).unwrap()
}

#[test]
fn unix_socket_round_trip_exactly_once() {
    let core = build_core(2);
    let sock = std::env::temp_dir().join(format!("pstack-serve-{}.sock", std::process::id()));
    let mut handle = transport::unix::serve(&sock, core.clone()).unwrap();

    let mut stream = UnixStream::connect(handle.path()).unwrap();
    let put = Request {
        req_id: req_id_for(1, 1),
        body: RequestBody::Op(KvTaskOp::Put { key: 11, value: 7 }),
    };
    let Response::Done { answer, .. } = round_trip(&mut stream, &put) else {
        panic!("put must serve Done")
    };
    assert_eq!(answer.result, KvTaskResult::Stored(true));

    // A retransmission of the same request id returns the durable
    // answer without a second effect.
    let Response::Done { answer, .. } = round_trip(&mut stream, &put) else {
        panic!("retry must serve the recorded Done")
    };
    assert_eq!(answer.result, KvTaskResult::Stored(true));

    // A second client on its own connection reads the committed value.
    let mut stream2 = UnixStream::connect(handle.path()).unwrap();
    let get = Request {
        req_id: req_id_for(2, 1),
        body: RequestBody::Op(KvTaskOp::Get { key: 11 }),
    };
    let Response::Done { answer, .. } = round_trip(&mut stream2, &get) else {
        panic!("get must serve Done")
    };
    assert_eq!(answer.result, KvTaskResult::Got(Some(7)));

    // Acks flow over the same wire and are idempotent.
    let ack = Request {
        req_id: put.req_id,
        body: RequestBody::Ack,
    };
    assert_eq!(
        round_trip(&mut stream, &ack),
        Response::AckOk { req_id: put.req_id }
    );
    assert_eq!(
        round_trip(&mut stream, &ack),
        Response::AckOk { req_id: put.req_id }
    );

    // Exactly one version record for the key despite the retry.
    let snapshot = core.exec().store().snapshot_sharded().unwrap();
    let records: usize = snapshot
        .iter()
        .flat_map(|b| b.iter())
        .flat_map(|c| c.iter())
        .filter(|r| r.key == 11)
        .count();
    assert_eq!(records, 1, "retransmission must not re-apply");

    handle.stop();
}
