//! Transports: the in-process channel hub (portable — what tests, CI
//! and the campaign drive) and the `cfg(unix)` unix-socket listener.
//!
//! Both move exactly the frames [`crate::proto`] defines — the channel
//! hub ships *encoded* bytes through its queues on purpose, so every
//! portable test also exercises the codec the socket path uses. The
//! hub additionally models the wire's failure mode: [`ChannelHub::reset`]
//! drops all in-flight frames, which is what a power failure does to a
//! socket, and is how the campaign makes clients experience a crash.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::{Arc, Mutex};

use crate::proto::{
    client_of, decode_request, decode_response, encode_request, encode_response, Request, Response,
};

#[derive(Debug, Default)]
struct HubInner {
    /// Client → server frames, in arrival order.
    requests: Mutex<VecDeque<Vec<u8>>>,
    /// Server → client frames, routed by client id.
    outboxes: Mutex<HashMap<u32, VecDeque<Vec<u8>>>>,
}

/// An in-process "network": clients enqueue encoded requests, the
/// server drains them and posts encoded responses to per-client
/// outboxes.
#[derive(Debug, Clone, Default)]
pub struct ChannelHub {
    inner: Arc<HubInner>,
}

impl ChannelHub {
    /// An empty hub.
    #[must_use]
    pub fn new() -> Self {
        ChannelHub::default()
    }

    /// A client endpoint for `client_id`.
    #[must_use]
    pub fn connect(&self, client_id: u32) -> ChannelConn {
        ChannelConn {
            client_id,
            inner: Arc::clone(&self.inner),
        }
    }

    /// Server side: takes the oldest pending request, if any.
    ///
    /// # Errors
    ///
    /// `InvalidData` if a frame fails to decode.
    ///
    /// # Panics
    ///
    /// Panics if a hub lock is poisoned.
    pub fn poll_request(&self) -> io::Result<Option<Request>> {
        let frame = self
            .inner
            .requests
            .lock()
            .expect("hub poisoned")
            .pop_front();
        frame.map(|f| decode_request(&f)).transpose()
    }

    /// Server side: routes a response to its client's outbox.
    ///
    /// # Panics
    ///
    /// Panics if a hub lock is poisoned.
    pub fn respond(&self, resp: &Response) {
        let client = client_of(resp.req_id());
        self.inner
            .outboxes
            .lock()
            .expect("hub poisoned")
            .entry(client)
            .or_default()
            .push_back(encode_response(resp).to_vec());
    }

    /// Drops every in-flight frame in both directions — what a power
    /// failure does to the wire. Client and server state are untouched;
    /// clients recover via their timeout/retry loops.
    ///
    /// # Panics
    ///
    /// Panics if a hub lock is poisoned.
    pub fn reset(&self) {
        self.inner.requests.lock().expect("hub poisoned").clear();
        self.inner.outboxes.lock().expect("hub poisoned").clear();
    }

    /// Pending unserved requests (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if a hub lock is poisoned.
    #[must_use]
    pub fn pending_requests(&self) -> usize {
        self.inner.requests.lock().expect("hub poisoned").len()
    }
}

/// One client's endpoint on a [`ChannelHub`].
#[derive(Debug, Clone)]
pub struct ChannelConn {
    client_id: u32,
    inner: Arc<HubInner>,
}

impl ChannelConn {
    /// Sends one request frame.
    ///
    /// # Panics
    ///
    /// Panics if a hub lock is poisoned.
    pub fn send(&self, req: &Request) {
        self.inner
            .requests
            .lock()
            .expect("hub poisoned")
            .push_back(encode_request(req).to_vec());
    }

    /// Receives the next response addressed to this client, if any.
    ///
    /// # Errors
    ///
    /// `InvalidData` if a frame fails to decode.
    ///
    /// # Panics
    ///
    /// Panics if a hub lock is poisoned.
    pub fn try_recv(&self) -> io::Result<Option<Response>> {
        let frame = self
            .inner
            .outboxes
            .lock()
            .expect("hub poisoned")
            .get_mut(&self.client_id)
            .and_then(VecDeque::pop_front);
        frame.map(|f| decode_response(&f)).transpose()
    }
}

/// The unix-socket listener: real frames over `SOCK_STREAM`, one
/// handler thread per connection, every request served synchronously
/// through [`ServerCore::handle_sync`](crate::ServerCore::handle_sync).
#[cfg(unix)]
pub mod unix {
    use std::io;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    use crate::proto::{decode_request, encode_response, read_frame, write_frame, Response};
    use crate::server::ServerCore;

    /// A listening server; drop or [`UnixServerHandle::stop`] to shut
    /// down.
    pub struct UnixServerHandle {
        path: PathBuf,
        stop: Arc<AtomicBool>,
        accept_thread: Option<JoinHandle<()>>,
    }

    impl UnixServerHandle {
        /// The socket path clients connect to.
        #[must_use]
        pub fn path(&self) -> &Path {
            &self.path
        }

        /// Stops accepting, unblocks the listener, and joins it.
        pub fn stop(&mut self) {
            if self.stop.swap(true, Ordering::SeqCst) {
                return;
            }
            // Unblock accept() with a throwaway connection.
            let _ = UnixStream::connect(&self.path);
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
            let _ = std::fs::remove_file(&self.path);
        }
    }

    impl Drop for UnixServerHandle {
        fn drop(&mut self) {
            self.stop();
        }
    }

    fn handle_conn(core: &ServerCore, mut stream: UnixStream) {
        loop {
            let frame = match read_frame(&mut stream) {
                Ok(f) => f,
                Err(_) => return, // EOF or torn connection: done
            };
            let Ok(req) = decode_request(&frame) else {
                return; // corrupt peer: drop the connection
            };
            // A serving error is a Retry from the client's view — the
            // request stays deduplicated for the retransmission.
            let resp = core
                .handle_sync(&req, 0)
                .unwrap_or(Response::Retry { req_id: req.req_id });
            if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                return;
            }
        }
    }

    /// Binds `path` and serves `core` until the handle stops. Each
    /// connection gets its own handler thread; requests on one
    /// connection are served in order.
    ///
    /// # Errors
    ///
    /// Propagated bind errors.
    pub fn serve(path: impl AsRef<Path>, core: ServerCore) -> io::Result<UnixServerHandle> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { break };
                let conn_core = core.clone();
                // Detached: a handler lives exactly as long as its
                // connection (EOF ends it) — joining here would block
                // shutdown on clients that never hang up.
                std::thread::spawn(move || handle_conn(&conn_core, stream));
            }
        });
        Ok(UnixServerHandle {
            path,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{req_id_for, RequestBody};
    use pstack_kv::KvTaskOp;

    #[test]
    fn hub_routes_by_client_and_resets() {
        let hub = ChannelHub::new();
        let a = hub.connect(1);
        let b = hub.connect(2);
        a.send(&Request {
            req_id: req_id_for(1, 1),
            body: RequestBody::Op(KvTaskOp::Get { key: 4 }),
        });
        b.send(&Request {
            req_id: req_id_for(2, 1),
            body: RequestBody::Ack,
        });
        let r1 = hub.poll_request().unwrap().unwrap();
        assert_eq!(r1.req_id, req_id_for(1, 1));
        hub.respond(&Response::Retry { req_id: r1.req_id });
        hub.respond(&Response::AckOk {
            req_id: req_id_for(2, 1),
        });
        // Routing: each client only sees its own responses.
        assert_eq!(
            a.try_recv().unwrap(),
            Some(Response::Retry {
                req_id: req_id_for(1, 1)
            })
        );
        assert_eq!(a.try_recv().unwrap(), None);
        assert_eq!(
            b.try_recv().unwrap(),
            Some(Response::AckOk {
                req_id: req_id_for(2, 1)
            })
        );
        // reset drops the in-flight request from client 2.
        assert_eq!(hub.pending_requests(), 1);
        hub.reset();
        assert_eq!(hub.pending_requests(), 0);
        assert!(hub.poll_request().unwrap().is_none());
    }
}
