//! `pstack-server` — exactly-once request serving over the sharded
//! store, robust under live-load power failures.
//!
//! The paper's whole-system crash model only matters to a *user* if a
//! client on the other side of a wire can survive it: every ack must be
//! durable-before-visible, and every retry must be deduplicated, so the
//! client-observable history stays durably linearizable. This crate is
//! that front end:
//!
//! * [`proto`] — the length-prefixed binary wire protocol: request ids
//!   `(client_id << 32) | seq`, op/ack requests, Done/Overloaded/
//!   Retry/AckOk responses;
//! * [`KvRequestTable`]-backed dedup + the store's evidence scan —
//!   see [`ServerCore`]: effects at-most-once, acks at-least-once;
//! * [`AdmissionQueue`]-fed group-commit batch windows per shard, with
//!   explicit `Overloaded` shedding (never a silent drop);
//! * [`ClientSim`] — closed-loop zipfian clients with timeouts and
//!   exponential-backoff-with-jitter retries, honouring the contract
//!   that makes answer-slot recycling safe (never retry after ack);
//! * [`Clock`] / [`VirtualClock`] — time as a capability, so the whole
//!   retry/timeout schedule is reproducible by seed;
//! * [`transport`] — a portable in-process channel hub and a
//!   `cfg(unix)` unix-socket listener, both speaking the same frames.
//!
//! The proof of robustness lives in `pstack-chaos::run_server_campaign`:
//! power failures under live load, with clients observing only
//! `Retry`/`Done` — never a lost ack, never a duplicated effect.
//!
//! [`KvRequestTable`]: pstack_kv::KvRequestTable
//! [`AdmissionQueue`]: pstack_core::AdmissionQueue

mod client;
mod clock;
pub mod proto;
mod server;
pub mod transport;

pub use client::{ClientConfig, ClientSim, ClientStats, OpClass};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use proto::{
    client_of, req_id_for, Request, RequestBody, Response, MAX_FRAME_LEN, REQUEST_LEN, RESPONSE_LEN,
};
pub use server::{KvServeFunction, ServerCore, Submission, KV_SERVE_FUNC_ID};
pub use transport::{ChannelConn, ChannelHub};
