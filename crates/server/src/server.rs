//! The serving core: admission → durable descriptor → batch window →
//! durable answer → ack, with every step crash-safe.
//!
//! # Exactly-once, in two layers
//!
//! A retried request must take effect at most once while its ack is
//! delivered at least once. Two durable mechanisms compose to give
//! that:
//!
//! 1. **The request table** ([`KvRequestTable`], one per shard): a
//!    request's descriptor is persisted *before* anything executes, so
//!    a retry of an answered request replays the durable answer and a
//!    retry of a pending request re-enters execution without a second
//!    slot.
//! 2. **The store's evidence scan**: version records are tagged
//!    `(pid = client_id, seq = req_id)` — a tag stable across retries
//!    and across executing workers. Any execution that *might* be a
//!    re-execution (a retried pending slot, or a window replayed by
//!    stack recovery) runs through the store's `recover_*` duals, which
//!    scan for the tag first and take **no new effect** if the first
//!    execution's record was already published. The table is the fast
//!    path; the evidence scan is the authority.
//!
//! The rule that makes layer 2 sufficient: a window is executed via
//! [`PKvStore::apply_batch`] only the *first* time its requests are
//! drained in the boot that admitted them. Every other path — client
//! retries, post-reboot re-admission, persistent-stack frame replay —
//! goes through [`PKvStore::recover_batch`]. Running a never-executed
//! request through the recovery dual is safe (no evidence → executes
//! normally), so the recovery path is a safe superset and a window
//! containing any retried entry simply runs entirely as recovery.
//!
//! # Admission control
//!
//! Volatile [`AdmissionQueue`]s (one per shard) sit between the
//! transports and the batch windows. A request is answered
//! [`Submission::Overloaded`] — never silently dropped — when its
//! shard's queue is at capacity **or** its shard's request table has no
//! recyclable slot. Queues are volatile on purpose: a power failure
//! empties them, and the clients' retry loops re-drive every lost
//! request through the dedup path above.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use pstack_core::{
    Admission, AdmissionQueue, PContext, PError, RecoverableFunction, RetBytes, Task,
};
use pstack_kv::{
    KvApplied, KvBatchOp, KvRequestTable, KvTaskAnswer, KvTaskOp, KvTaskResult, ReqSubmit,
    ShardedKvStore,
};
use pstack_nvram::op_label;

use crate::proto::{client_of, kind_of, Request, RequestBody, Response};

/// Registry id of [`KvServeFunction`] (0x0FFC..0x0FFE are taken by the
/// KV task/compact functions).
pub const KV_SERVE_FUNC_ID: u64 = 0x0FFB;

/// Outcome of admitting one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// The durable answer already exists (first execution completed —
    /// this was a retry). Respond `Done` immediately.
    Answered(KvTaskAnswer),
    /// The request sits in its shard's queue; the answer arrives after
    /// the next batch window executes.
    Queued,
    /// Shed: the shard's queue or request table is full. Respond
    /// `Overloaded`; the client backs off and retries.
    Overloaded,
    /// Shed: the id was already acked and its slot recycled — a buggy
    /// client broke the retry contract. Respond `Stale`; re-admitting
    /// would re-execute an effect that already ran exactly once.
    Stale,
}

/// One queued request, with the execution mode it must use.
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    req_id: u64,
    slot: u32,
    /// `true` if this entry *might* have executed before (a retry of a
    /// pending slot) — it and its whole window must run through the
    /// evidence-scanning recovery duals.
    recovery: bool,
}

#[derive(Debug)]
struct ShardQueue {
    queue: AdmissionQueue<WindowEntry>,
    /// Request ids currently sitting in `queue` — dedupes retry
    /// re-enqueues so one request never occupies two queue slots.
    queued: Mutex<HashSet<u64>>,
}

/// The durable half of the server: the sharded store plus one request
/// table per shard. Registered as the recoverable function executing
/// batch windows ([`KV_SERVE_FUNC_ID`]), and shared by [`ServerCore`]
/// for direct (runtime-less) pumping.
#[derive(Clone)]
pub struct KvServeFunction {
    store: ShardedKvStore,
    tables: Vec<KvRequestTable>,
}

impl KvServeFunction {
    /// Bundles a sharded store with one request table per shard.
    ///
    /// # Panics
    ///
    /// Panics if the table count differs from the store's shard count.
    #[must_use]
    pub fn new(store: ShardedKvStore, tables: Vec<KvRequestTable>) -> Self {
        assert_eq!(store.nshards(), tables.len(), "one request table per shard");
        KvServeFunction { store, tables }
    }

    /// Wraps into the `Arc<dyn RecoverableFunction>` shape the registry
    /// wants.
    #[must_use]
    pub fn into_arc(self) -> Arc<dyn RecoverableFunction> {
        Arc::new(self)
    }

    /// The sharded store being served.
    #[must_use]
    pub fn store(&self) -> &ShardedKvStore {
        &self.store
    }

    /// The per-shard request tables.
    #[must_use]
    pub fn tables(&self) -> &[KvRequestTable] {
        &self.tables
    }

    /// Encodes a batch window as task arguments:
    /// `[shard u32][recovery u8][count u32][slot u32 × count]`.
    #[must_use]
    pub fn window_args(shard: u32, recovery: bool, slots: &[u32]) -> Vec<u8> {
        let mut b = Vec::with_capacity(9 + slots.len() * 4);
        b.extend_from_slice(&shard.to_le_bytes());
        b.push(u8::from(recovery));
        b.extend_from_slice(&(slots.len() as u32).to_le_bytes());
        for &slot in slots {
            b.extend_from_slice(&slot.to_le_bytes());
        }
        b
    }

    fn parse_args(args: &[u8]) -> Result<(u32, bool, Vec<u32>), PError> {
        if args.len() < 9 {
            return Err(PError::Task(
                "serve window arguments need (shard, recovery, count)".into(),
            ));
        }
        let shard = u32::from_le_bytes(args[..4].try_into().expect("slice length"));
        let recovery = args[4] != 0;
        let count = u32::from_le_bytes(args[5..9].try_into().expect("slice length")) as usize;
        if args.len() != 9 + count * 4 {
            return Err(PError::Task(format!(
                "serve window names {count} slots but carries {} bytes",
                args.len()
            )));
        }
        let slots = args[9..]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("slice length")))
            .collect();
        Ok((shard, recovery, slots))
    }

    /// Executes one batch window: answered slots are skipped (their
    /// answers are simply re-collected), gets resolve against committed
    /// state, mutations group-commit through the shard's
    /// [`PKvStore::apply_batch`] — or its evidence-scanning
    /// [`PKvStore::recover_batch`] dual when `recovery` — and all
    /// answers persist with one coalesced
    /// [`KvRequestTable::mark_done_batch`] *before* any `(req_id,
    /// answer)` pair is returned for acking: answers are durable before
    /// they are visible.
    ///
    /// # Errors
    ///
    /// Shard out of range ([`PError::Task`]), or propagated store/NVRAM
    /// errors.
    pub fn execute_window(
        &self,
        shard: u32,
        slots: &[u32],
        recovery: bool,
        executor: u32,
    ) -> Result<Vec<(u64, KvTaskAnswer)>, PError> {
        let _label = op_label(if recovery {
            "server.window.recover"
        } else {
            "server.window"
        });
        let stage = self.stage_window(shard, slots, executor)?;
        let outcomes = if stage.staged.is_empty() {
            Vec::new()
        } else {
            let pstore = self.store.shard(shard as usize);
            let ops: Vec<KvBatchOp> = stage.staged.iter().map(|&(_, _, op)| op).collect();
            if recovery {
                pstore.recover_batch(&ops)?
            } else {
                pstore.apply_batch(&ops)?
            }
        };
        Self::finish_window(stage, outcomes)
    }

    /// Executes one round of batch windows, at most one per shard. On a
    /// pipelined store ([`ShardedKvStore::set_pipeline`]) the
    /// non-recovery windows are **begun** first — each shard's
    /// record/log-tail persists are issued as asynchronous flush
    /// flights, back to back across the shard regions — and committed
    /// afterwards, so the whole round drains the flush pipeline in
    /// about one device round-trip instead of each shard awaiting its
    /// own serially. Recovery windows, and every window on a
    /// non-pipelined store, run through
    /// [`KvServeFunction::execute_window`] unchanged.
    ///
    /// # Errors
    ///
    /// Shard out of range ([`PError::Task`]), or propagated store/NVRAM
    /// errors.
    pub fn execute_windows(
        &self,
        windows: &[(u32, bool, Vec<u32>)],
        executor: u32,
    ) -> Result<Vec<(u64, KvTaskAnswer)>, PError> {
        let mut ready = Vec::new();
        if !self.store.is_pipelined() {
            for (shard, recovery, slots) in windows {
                ready.extend(self.execute_window(*shard, slots, *recovery, executor)?);
            }
            return Ok(ready);
        }
        let _label = op_label("server.windows");
        let mut pending = Vec::new();
        for (shard, recovery, slots) in windows {
            if *recovery {
                // The evidence-scanning duals stay serial: recovery is
                // off the hot path by design, and mixing scans into an
                // open pipeline would buy nothing.
                ready.extend(self.execute_window(*shard, slots, true, executor)?);
                continue;
            }
            let stage = self.stage_window(*shard, slots, executor)?;
            let ops: Vec<KvBatchOp> = stage.staged.iter().map(|&(_, _, op)| op).collect();
            let batch = self.store.shard(*shard as usize).apply_batch_begin(&ops)?;
            pending.push((stage, batch));
        }
        for (stage, batch) in pending {
            let outcomes = batch.commit()?;
            ready.extend(Self::finish_window(stage, outcomes)?);
        }
        Ok(ready)
    }

    /// The read-and-stage half of a window: replays already-durable
    /// answers, resolves gets against committed state, and collects the
    /// mutations to group-commit.
    fn stage_window(
        &self,
        shard: u32,
        slots: &[u32],
        executor: u32,
    ) -> Result<WindowStage<'_>, PError> {
        let table = self.tables.get(shard as usize).ok_or_else(|| {
            PError::Task(format!(
                "shard {shard} out of range ({} shards)",
                self.tables.len()
            ))
        })?;
        let pstore = self.store.shard(shard as usize);
        let mut answers: Vec<(u32, u32, KvTaskResult)> = Vec::new();
        let mut ready: Vec<(u64, KvTaskAnswer)> = Vec::new();
        let mut staged: Vec<(u32, u64, KvBatchOp)> = Vec::new();
        for &slot in slots {
            let req_id = table.req_id(slot)?;
            if let Some(answer) = table.result(slot)? {
                ready.push((req_id, answer)); // already durable: replay only
                continue;
            }
            let pid = u64::from(client_of(req_id));
            match table.op(slot)? {
                KvTaskOp::Get { key } => {
                    answers.push((slot, executor, KvTaskResult::Got(pstore.get(key)?)));
                }
                KvTaskOp::Put { key, value } => staged.push((
                    slot,
                    req_id,
                    KvBatchOp::Put {
                        pid,
                        seq: req_id,
                        key,
                        value,
                    },
                )),
                KvTaskOp::Delete { key } => staged.push((
                    slot,
                    req_id,
                    KvBatchOp::Delete {
                        pid,
                        seq: req_id,
                        key,
                    },
                )),
                KvTaskOp::Cas { key, expected, new } => staged.push((
                    slot,
                    req_id,
                    KvBatchOp::Cas {
                        pid,
                        seq: req_id,
                        key,
                        expected,
                        new,
                    },
                )),
            }
        }
        Ok(WindowStage {
            table,
            executor,
            answers,
            ready,
            staged,
        })
    }

    /// The answer half of a window: maps group-commit outcomes to
    /// results, persists all answers with one coalesced
    /// [`KvRequestTable::mark_done_batch`], and only then returns the
    /// `(req_id, answer)` pairs — answers are durable before they are
    /// visible.
    fn finish_window(
        mut stage: WindowStage<'_>,
        outcomes: Vec<KvApplied>,
    ) -> Result<Vec<(u64, KvTaskAnswer)>, PError> {
        for (&(slot, _, op), outcome) in stage.staged.iter().zip(outcomes) {
            let result = match op {
                KvBatchOp::Put { .. } => KvTaskResult::Stored(outcome.took_effect()),
                KvBatchOp::Delete { .. } => KvTaskResult::Deleted(outcome.took_effect()),
                KvBatchOp::Cas { .. } => KvTaskResult::Swapped(outcome.took_effect()),
            };
            stage.answers.push((slot, stage.executor, result));
        }
        stage.table.mark_done_batch(&stage.answers)?;
        for &(slot, executor, result) in &stage.answers {
            let req_id = stage.table.req_id(slot)?;
            stage
                .ready
                .push((req_id, KvTaskAnswer { executor, result }));
        }
        Ok(stage.ready)
    }
}

/// A batch window read and staged but not yet executed
/// ([`KvServeFunction::stage_window`]): replayed answers in `ready`,
/// get answers in `answers`, mutations awaiting their group commit in
/// `staged`.
struct WindowStage<'a> {
    table: &'a KvRequestTable,
    executor: u32,
    answers: Vec<(u32, u32, KvTaskResult)>,
    ready: Vec<(u64, KvTaskAnswer)>,
    staged: Vec<(u32, u64, KvBatchOp)>,
}

impl RecoverableFunction for KvServeFunction {
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let (shard, recovery, slots) = Self::parse_args(args)?;
        let done = self.execute_window(shard, &slots, recovery, ctx.pid as u32)?;
        Ok(Self::encode_count(done.len()))
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let (shard, _, slots) = Self::parse_args(args)?;
        // A replayed frame might have executed before the crash: always
        // the evidence-scanning duals.
        let done = self.execute_window(shard, &slots, true, ctx.pid as u32)?;
        Ok(Self::encode_count(done.len()))
    }
}

impl KvServeFunction {
    fn encode_count(n: usize) -> Option<RetBytes> {
        let mut b = [0u8; 8];
        b[0] = 7; // serve-window marker
        b[1..5].copy_from_slice(&(n as u32).to_le_bytes());
        Some(b)
    }
}

/// The serving front end: per-shard admission queues over the durable
/// [`KvServeFunction`]. Rebuilt from the reopened store/tables after
/// every reboot (all its own state is volatile by design).
#[derive(Clone)]
pub struct ServerCore {
    exec: KvServeFunction,
    shards: Arc<Vec<ShardQueue>>,
    batch: usize,
}

impl ServerCore {
    /// Builds a server over `exec` with per-shard admission queues of
    /// `queue_capacity` and batch windows of at most `batch` requests.
    ///
    /// # Panics
    ///
    /// Panics on zero `queue_capacity` or `batch`.
    #[must_use]
    pub fn new(exec: KvServeFunction, queue_capacity: usize, batch: usize) -> Self {
        assert!(batch > 0, "batch windows need at least one slot");
        let shards = (0..exec.store.nshards())
            .map(|_| ShardQueue {
                queue: AdmissionQueue::new(queue_capacity),
                queued: Mutex::new(HashSet::new()),
            })
            .collect();
        ServerCore {
            exec,
            shards: Arc::new(shards),
            batch,
        }
    }

    /// The durable half (store + tables) this server fronts.
    #[must_use]
    pub fn exec(&self) -> &KvServeFunction {
        &self.exec
    }

    /// Total requests shed across all shards (queue-full + table-full).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.shed()).sum()
    }

    /// Total requests admitted into queues across all shards.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.admitted()).sum()
    }

    /// Admits one operation request. The descriptor is durable when
    /// this returns [`Submission::Queued`].
    ///
    /// # Errors
    ///
    /// Propagated table/NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if a queue lock is poisoned.
    pub fn submit(&self, req_id: u64, op: KvTaskOp) -> Result<Submission, PError> {
        let _label = op_label("server.submit");
        let shard = self.exec.store.shard_of(op.key());
        let table = &self.exec.tables[shard];
        let sq = &self.shards[shard];
        let (slot, recovery) = match table.submit(req_id, op)? {
            ReqSubmit::Known {
                answer: Some(a), ..
            } => return Ok(Submission::Answered(a)),
            // A retry of a still-pending request: re-enter execution,
            // but only ever through the recovery duals — its first
            // execution may be in flight or already published.
            ReqSubmit::Known { slot, answer: None } => (slot, true),
            ReqSubmit::Fresh(slot) => (slot, false),
            ReqSubmit::Full => return Ok(Submission::Overloaded),
            ReqSubmit::Stale => return Ok(Submission::Stale),
        };
        let mut queued = sq.queued.lock().expect("queued set poisoned");
        if queued.contains(&req_id) {
            return Ok(Submission::Queued); // already awaiting a window
        }
        match sq.queue.offer(WindowEntry {
            req_id,
            slot,
            recovery,
        }) {
            Admission::Admitted { .. } => {
                queued.insert(req_id);
                Ok(Submission::Queued)
            }
            // The slot stays pending; the client's retry re-offers it
            // (as a recovery entry) once the queue has drained.
            Admission::Shed => Ok(Submission::Overloaded),
        }
    }

    /// Records a client ack, searching every shard's table (the
    /// request → shard route is volatile and may be gone). Unknown ids
    /// — e.g. an ack retransmitted after its slot was recycled — are
    /// fine: acks are idempotent and always safe to confirm.
    ///
    /// # Errors
    ///
    /// Propagated table/NVRAM errors.
    pub fn ack(&self, req_id: u64) -> Result<bool, PError> {
        let _label = op_label("server.ack");
        for table in &self.exec.tables {
            if table.ack(req_id)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Drains each shard's queue into at most one batch-window entry
    /// list. Returns `(shard, recovery, entries)` triples; the caller
    /// decides how to execute them (directly, or as runtime tasks).
    ///
    /// # Panics
    ///
    /// Panics if a queue lock is poisoned.
    fn drain(&self) -> Vec<(u32, bool, Vec<WindowEntry>)> {
        let mut windows = Vec::new();
        for (shard, sq) in self.shards.iter().enumerate() {
            let entries = sq.queue.drain_window(self.batch);
            if entries.is_empty() {
                continue;
            }
            let mut queued = sq.queued.lock().expect("queued set poisoned");
            for e in &entries {
                queued.remove(&e.req_id);
            }
            let recovery = entries.iter().any(|e| e.recovery);
            windows.push((shard as u32, recovery, entries));
        }
        windows
    }

    /// Drains the queues into persistent-stack tasks (one batch window
    /// per non-idle shard) for `StripedRuntime::run_tasks`, plus the
    /// request ids each window will answer. After the run, collect the
    /// durable answers for those ids with [`ServerCore::answers_for`]
    /// (a crashed run simply leaves some pending — their clients retry).
    #[must_use]
    pub fn drain_tasks(&self) -> (Vec<Task>, Vec<u64>) {
        let mut tasks = Vec::new();
        let mut req_ids = Vec::new();
        for (shard, recovery, entries) in self.drain() {
            let slots: Vec<u32> = entries.iter().map(|e| e.slot).collect();
            tasks.push(Task::new(
                KV_SERVE_FUNC_ID,
                KvServeFunction::window_args(shard, recovery, &slots),
            ));
            req_ids.extend(entries.iter().map(|e| e.req_id));
        }
        (tasks, req_ids)
    }

    /// The durable answers currently on record for `req_ids` (`None`
    /// entries are still pending — e.g. their window crashed).
    ///
    /// # Errors
    ///
    /// Propagated table/NVRAM errors.
    pub fn answers_for(&self, req_ids: &[u64]) -> Result<Vec<(u64, Option<KvTaskAnswer>)>, PError> {
        let mut out = Vec::with_capacity(req_ids.len());
        for &req_id in req_ids {
            let mut found = None;
            for table in &self.exec.tables {
                if let Some((_, answer)) = table.lookup(req_id)? {
                    found = answer;
                    break;
                }
            }
            out.push((req_id, found));
        }
        Ok(out)
    }

    /// Executes one round of batch windows directly (no runtime): the
    /// transport servers' pump. Returns the newly durable `(req_id,
    /// answer)` pairs, ready to send.
    ///
    /// # Errors
    ///
    /// Propagated store/table/NVRAM errors.
    pub fn pump_direct(&self, executor: u32) -> Result<Vec<(u64, KvTaskAnswer)>, PError> {
        let windows: Vec<(u32, bool, Vec<u32>)> = self
            .drain()
            .into_iter()
            .map(|(shard, recovery, entries)| {
                (
                    shard,
                    recovery,
                    entries.iter().map(|e| e.slot).collect::<Vec<u32>>(),
                )
            })
            .collect();
        // One call for the whole round: on a pipelined store the
        // shards' flush flights overlap across regions.
        self.exec.execute_windows(&windows, executor)
    }

    /// Fully serves one request synchronously: admit, pump until its
    /// answer is durable, respond. The blocking transports use this;
    /// the campaign drives admission and windows separately.
    ///
    /// # Errors
    ///
    /// Propagated store/table/NVRAM errors.
    pub fn handle_sync(&self, req: &Request, executor: u32) -> Result<Response, PError> {
        let req_id = req.req_id;
        match req.body {
            RequestBody::Ack => {
                self.ack(req_id)?;
                Ok(Response::AckOk { req_id })
            }
            RequestBody::Op(op) => match self.submit(req_id, op)? {
                Submission::Overloaded => Ok(Response::Overloaded { req_id }),
                Submission::Stale => Ok(Response::Stale { req_id }),
                Submission::Answered(answer) => Ok(Response::Done {
                    req_id,
                    kind: kind_of(op),
                    answer,
                }),
                Submission::Queued => {
                    loop {
                        let done = self.pump_direct(executor)?;
                        if let Some(&(_, answer)) = done.iter().find(|&&(id, _)| id == req_id) {
                            return Ok(Response::Done {
                                req_id,
                                kind: kind_of(op),
                                answer,
                            });
                        }
                        if done.is_empty() {
                            // Queues drained without answering us — the
                            // request is pending but unqueued (sheds
                            // raced us). Ask the client to come back.
                            return Ok(Response::Retry { req_id });
                        }
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_kv::KvVariant;
    use pstack_nvram::{PMem, PMemBuilder};
    use pstack_verify::KvSpec;

    use crate::proto::req_id_for;

    fn fixture(nshards: usize, table_cap: u32) -> (Vec<PMem>, KvServeFunction) {
        let regions: Vec<PMem> = (0..nshards)
            .map(|_| {
                PMemBuilder::new()
                    .len(1 << 21)
                    .eager_flush(true)
                    .build_in_memory()
            })
            .collect();
        let store = ShardedKvStore::format(&regions, 64, 4096, KvVariant::Nsrl).unwrap();
        let tables: Vec<KvRequestTable> = (0..nshards)
            .map(|s| KvRequestTable::format(regions[s].clone(), store.heap(s), table_cap).unwrap())
            .collect();
        (regions, KvServeFunction::new(store, tables))
    }

    #[test]
    fn serve_put_get_exactly_once_with_retries() {
        let (_regions, exec) = fixture(2, 16);
        let core = ServerCore::new(exec, 32, 8);

        let put = req_id_for(1, 1);
        assert_eq!(
            core.submit(put, KvTaskOp::Put { key: 10, value: 42 })
                .unwrap(),
            Submission::Queued
        );
        // A duplicate delivery before the window runs occupies no
        // second queue slot.
        assert_eq!(
            core.submit(put, KvTaskOp::Put { key: 10, value: 42 })
                .unwrap(),
            Submission::Queued
        );
        let done = core.pump_direct(9).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, put);
        assert_eq!(done[0].1.result, KvTaskResult::Stored(true));

        // A retry after completion replays the durable answer.
        let Submission::Answered(a) = core
            .submit(put, KvTaskOp::Put { key: 10, value: 42 })
            .unwrap()
        else {
            panic!("retry must dedup")
        };
        assert_eq!(a.result, KvTaskResult::Stored(true));

        // The effect happened exactly once: one version record for the
        // key, and a get through the served path observes it.
        let get = req_id_for(1, 2);
        core.submit(get, KvTaskOp::Get { key: 10 }).unwrap();
        let done = core.pump_direct(9).unwrap();
        assert_eq!(done[0].1.result, KvTaskResult::Got(Some(42)));
        assert!(core.ack(put).unwrap());
        assert!(core.ack(get).unwrap());
        assert!(!core.ack(req_id_for(5, 5)).unwrap(), "unknown ids refuse");
        let mut spec = KvSpec::new();
        spec.put(10, 42);
        let served: std::collections::HashMap<u64, i64> = core
            .exec()
            .store()
            .contents()
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(served, *spec.contents());
    }

    #[test]
    fn retry_of_pending_slot_runs_recovery_dual_no_double_effect() {
        let (_regions, exec) = fixture(1, 16);
        let core = ServerCore::new(exec.clone(), 32, 8);
        let req = req_id_for(2, 1);
        core.submit(req, KvTaskOp::Put { key: 3, value: 1 })
            .unwrap();
        let done = core.pump_direct(1).unwrap();
        assert_eq!(done.len(), 1);

        // Simulate "executed but the client never heard": rebuild the
        // front end (volatile queues lost), client retries. The slot is
        // done, so the answer replays without touching the store.
        let core2 = ServerCore::new(exec.clone(), 32, 8);
        let Submission::Answered(a) = core2
            .submit(req, KvTaskOp::Put { key: 3, value: 1 })
            .unwrap()
        else {
            panic!("durable answer survives front-end loss")
        };
        assert_eq!(a.result, KvTaskResult::Stored(true));

        // Now the harder case: descriptor durable, execution never ran
        // (crash between admission and window). The retry re-enters as
        // a recovery entry and executes through the evidence scan.
        let req2 = req_id_for(2, 2);
        core2
            .submit(req2, KvTaskOp::Put { key: 4, value: 9 })
            .unwrap();
        let core3 = ServerCore::new(exec, 32, 8); // queues wiped again
        assert_eq!(
            core3
                .submit(req2, KvTaskOp::Put { key: 4, value: 9 })
                .unwrap(),
            Submission::Queued
        );
        let done = core3.pump_direct(1).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1.result, KvTaskResult::Stored(true));
        // Exactly one record for key 4 despite two admissions.
        let snapshot = core3.exec().store.snapshot_sharded().unwrap();
        let records: usize = snapshot
            .iter()
            .flat_map(|buckets| buckets.iter())
            .flat_map(|chain| chain.iter())
            .filter(|r| r.key == 4)
            .count();
        assert_eq!(records, 1, "retry must not publish a second record");
    }

    #[test]
    fn overload_sheds_explicitly_and_recovers() {
        let (_regions, exec) = fixture(1, 64);
        let core = ServerCore::new(exec, 4, 4); // tiny queue
        let mut queued = 0u64;
        let mut shed = 0u64;
        for seq in 1..=32u32 {
            match core
                .submit(
                    req_id_for(3, seq),
                    KvTaskOp::Put {
                        key: u64::from(seq),
                        value: 0,
                    },
                )
                .unwrap()
            {
                Submission::Queued => queued += 1,
                Submission::Overloaded => shed += 1,
                Submission::Answered(_) | Submission::Stale => unreachable!("fresh ids"),
            }
        }
        assert_eq!(queued, 4, "queue admits exactly its capacity");
        assert_eq!(shed, 28, "every excess request sheds explicitly");
        assert_eq!(core.shed(), 28);
        // After a pump the shed requests' retries are admitted.
        core.pump_direct(1).unwrap();
        assert_eq!(
            core.submit(req_id_for(3, 5), KvTaskOp::Put { key: 5, value: 0 })
                .unwrap(),
            Submission::Queued
        );
    }

    #[test]
    fn table_full_maps_to_overloaded() {
        let (_regions, exec) = fixture(1, 2); // two slots only
        let core = ServerCore::new(exec, 32, 8);
        core.submit(req_id_for(4, 1), KvTaskOp::Put { key: 1, value: 1 })
            .unwrap();
        core.submit(req_id_for(4, 2), KvTaskOp::Put { key: 2, value: 2 })
            .unwrap();
        assert_eq!(
            core.submit(req_id_for(4, 3), KvTaskOp::Put { key: 3, value: 3 })
                .unwrap(),
            Submission::Overloaded,
            "no recyclable slot → shed"
        );
        // Answer + ack one → a slot recycles → admission reopens.
        core.pump_direct(1).unwrap();
        assert!(core.ack(req_id_for(4, 1)).unwrap());
        assert_eq!(
            core.submit(req_id_for(4, 3), KvTaskOp::Put { key: 3, value: 3 })
                .unwrap(),
            Submission::Queued
        );
    }

    #[test]
    fn handle_sync_serves_the_wire_types() {
        let (_regions, exec) = fixture(2, 16);
        let core = ServerCore::new(exec, 32, 8);
        let op = KvTaskOp::Cas {
            key: 8,
            expected: 0,
            new: 5,
        };
        let req = Request {
            req_id: req_id_for(6, 1),
            body: RequestBody::Op(op),
        };
        let Response::Done { answer, .. } = core.handle_sync(&req, 2).unwrap() else {
            panic!("cas on missing key still answers Done")
        };
        assert_eq!(answer.result, KvTaskResult::Swapped(false));
        let ack = Request {
            req_id: req.req_id,
            body: RequestBody::Ack,
        };
        assert_eq!(
            core.handle_sync(&ack, 2).unwrap(),
            Response::AckOk { req_id: req.req_id }
        );
    }

    #[test]
    fn window_task_replay_is_idempotent() {
        // The recover() path of the registered function re-executes a
        // window that already ran: answers must replay, not re-apply.
        let (regions, exec) = fixture(1, 16);
        let core = ServerCore::new(exec.clone(), 32, 8);
        let req = req_id_for(7, 1);
        core.submit(req, KvTaskOp::Put { key: 2, value: 3 })
            .unwrap();
        let (tasks, ids) = core.drain_tasks();
        assert_eq!(tasks.len(), 1);
        assert_eq!(ids, vec![req]);

        // Execute the window twice through the function's own paths,
        // mimicking call-then-replay.
        let slot = exec.tables[0].lookup(req).unwrap().unwrap().0;
        exec.execute_window(0, &[slot], false, 1).unwrap();
        let replay = exec.execute_window(0, &[slot], true, 2).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(
            replay[0].1.executor, 1,
            "replay returns the original answer"
        );
        let store = ShardedKvStore::open(&regions, KvVariant::Nsrl).unwrap();
        let snapshot = store.snapshot_sharded().unwrap();
        let records: usize = snapshot
            .iter()
            .flat_map(|b| b.iter())
            .flat_map(|c| c.iter())
            .count();
        assert_eq!(records, 1);
    }
}
