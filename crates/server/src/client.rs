//! Closed-loop clients with timeouts, exponential backoff, and the
//! retry contract the server's exactly-once guarantee rests on.
//!
//! A [`ClientSim`] issues one zipfian-keyed operation at a time and
//! does not start the next until the current one is **done and
//! acknowledged**:
//!
//! ```text
//! Idle ──send op──▶ AwaitOp ──Done──▶ AwaitAck ──AckOk──▶ Idle
//!                   │  ▲                │  ▲
//!                   └──┘ timeout /      └──┘ timeout / Retry
//!                        Overloaded / Retry      (resend Ack)
//!                        (resend op, backoff)
//! ```
//!
//! The two contract rules live in this state machine:
//!
//! * **retries carry the same `req_id`** — a retransmitted operation is
//!   the same request, so the server can dedupe it;
//! * **a request is never retransmitted after its ack is sent** — the
//!   client leaves `AwaitOp` for good on the first `Done`; from then on
//!   it only retransmits the *ack* (which is idempotent and safe after
//!   slot recycling). This is what makes it sound for the server to
//!   recycle done+acked slots.
//!
//! All timing flows through the [`Clock`](crate::Clock) passed to
//! [`ClientSim::poll`]/[`ClientSim::deliver`] as explicit `now`
//! values, and all randomness (keys, op mix, backoff jitter) comes from
//! the per-client seed — a whole client population's schedule is
//! reproducible from the seeds alone.

use rand::distr::{Distribution, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pstack_kv::{KvTaskAnswer, KvTaskOp, KvTaskResult};
use pstack_verify::{KvAnswer, KvOp, KvOpKind};

use crate::proto::{req_id_for, Request, RequestBody, Response};

/// The op class an SLO percentile is reported for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `put(key, value)`.
    Put,
    /// `get(key)`.
    Get,
    /// `delete(key)`.
    Delete,
    /// `cas(key, expected, new)`.
    Cas,
}

impl OpClass {
    /// All classes, in report order.
    pub const ALL: [OpClass; 4] = [OpClass::Put, OpClass::Get, OpClass::Delete, OpClass::Cas];

    /// Stable label for reports and telemetry.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Put => "put",
            OpClass::Get => "get",
            OpClass::Delete => "delete",
            OpClass::Cas => "cas",
        }
    }

    /// The class of an operation.
    #[must_use]
    pub fn of(op: KvTaskOp) -> Self {
        match op {
            KvTaskOp::Put { .. } => OpClass::Put,
            KvTaskOp::Get { .. } => OpClass::Get,
            KvTaskOp::Delete { .. } => OpClass::Delete,
            KvTaskOp::Cas { .. } => OpClass::Cas,
        }
    }
}

/// Configuration of one simulated client.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Client id (the high half of every `req_id`; must be ≥ 1 and
    /// unique per population).
    pub client_id: u32,
    /// Operations to complete before finishing.
    pub n_ops: usize,
    /// Keys are zipfian ranks over `0..key_space`.
    pub key_space: u64,
    /// Zipf skew (YCSB default 0.99).
    pub zipf_s: f64,
    /// Put/cas values are drawn from `-value_range..=value_range`.
    pub value_range: i64,
    /// Relative weights of (put, get, delete, cas).
    pub mix: [u32; 4],
    /// Nanoseconds to wait for a response before retransmitting.
    pub timeout_ns: u64,
    /// Base of the exponential backoff.
    pub backoff_base_ns: u64,
    /// Backoff ceiling.
    pub backoff_cap_ns: u64,
    /// Per-client RNG seed.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            client_id: 1,
            n_ops: 32,
            key_space: 64,
            zipf_s: 0.99,
            value_range: 1_000,
            mix: [4, 3, 2, 1],
            timeout_ns: 2_000_000,     // 2 ms
            backoff_base_ns: 500_000,  // 0.5 ms
            backoff_cap_ns: 8_000_000, // 8 ms
            seed: 1,
        }
    }
}

/// Counters a campaign asserts over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Operations completed (Done received and acked).
    pub completed: u64,
    /// Request retransmissions (timeouts fired).
    pub retransmits: u64,
    /// `Overloaded` responses observed.
    pub overloads: u64,
    /// `Retry` signals observed (explicit responses + crash resets).
    pub retry_signals: u64,
    /// Ack frames sent (≥ `completed`; resends are idempotent).
    pub acks_sent: u64,
    /// `Stale` responses observed — the server refused a
    /// retransmission of an already-acked id. Zero for a client that
    /// honours the retry contract.
    pub stale_signals: u64,
}

#[derive(Debug)]
enum Phase {
    Idle,
    AwaitOp {
        op: KvTaskOp,
        first_sent: u64,
        resend_at: u64,
        attempt: u32,
    },
    AwaitAck {
        resend_at: u64,
        attempt: u32,
    },
    Finished,
}

/// One closed-loop client (see module docs for the state machine).
#[derive(Debug)]
pub struct ClientSim {
    cfg: ClientConfig,
    rng: SmallRng,
    zipf: Zipf,
    seq: u32,
    phase: Phase,
    observations: Vec<KvOp>,
    latencies: Vec<(OpClass, u64)>,
    stats: ClientStats,
}

impl ClientSim {
    /// Builds a client from its config.
    ///
    /// # Panics
    ///
    /// Panics on `client_id == 0` (the zero request id is reserved) or
    /// an empty op mix.
    #[must_use]
    pub fn new(cfg: ClientConfig) -> Self {
        assert!(cfg.client_id >= 1, "client ids start at 1");
        assert!(cfg.mix.iter().any(|&w| w > 0), "op mix must be non-empty");
        let zipf = Zipf::new(cfg.key_space.max(1), cfg.zipf_s).expect("valid zipf");
        let rng = SmallRng::seed_from_u64(cfg.seed);
        ClientSim {
            cfg,
            rng,
            zipf,
            seq: 0,
            phase: Phase::Idle,
            observations: Vec::new(),
            latencies: Vec::new(),
            stats: ClientStats::default(),
        }
    }

    /// The request id of the operation currently in flight (its ack
    /// phase included), if any.
    #[must_use]
    pub fn current_req_id(&self) -> Option<u64> {
        match self.phase {
            Phase::Idle | Phase::Finished => None,
            Phase::AwaitOp { .. } | Phase::AwaitAck { .. } => {
                Some(req_id_for(self.cfg.client_id, self.seq))
            }
        }
    }

    /// `true` once all `n_ops` operations are done and acked.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Finished)
            || (matches!(self.phase, Phase::Idle)
                && self.stats.completed as usize >= self.cfg.n_ops)
    }

    /// The client-observed history: one [`KvOp`] per completed
    /// operation, tagged `(pid = client_id, seq = req_id)` — exactly
    /// the tags the store's version records carry, so the sharded
    /// verifier can match them.
    #[must_use]
    pub fn observations(&self) -> &[KvOp] {
        &self.observations
    }

    /// Completed-op latencies (first send → Done receipt), per class.
    #[must_use]
    pub fn latencies(&self) -> &[(OpClass, u64)] {
        &self.latencies
    }

    /// The client's counters.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    fn backoff(&mut self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(20);
        let b = self
            .cfg
            .backoff_base_ns
            .saturating_mul(1u64 << shift)
            .min(self.cfg.backoff_cap_ns)
            .max(1);
        // Jitter into [b/2, b] so synchronized clients desynchronize.
        b / 2 + self.rng.random_range(0..=b.div_ceil(2))
    }

    fn gen_op(&mut self) -> KvTaskOp {
        let key = self.zipf.sample(&mut self.rng) - 1;
        let total: u32 = self.cfg.mix.iter().sum();
        let mut pick = self.rng.random_range(0..total);
        let mut class = OpClass::Cas;
        for (i, &w) in self.cfg.mix.iter().enumerate() {
            if pick < w {
                class = OpClass::ALL[i];
                break;
            }
            pick -= w;
        }
        let r = self.cfg.value_range.max(1);
        match class {
            OpClass::Put => KvTaskOp::Put {
                key,
                value: self.rng.random_range(-r..=r),
            },
            OpClass::Get => KvTaskOp::Get { key },
            OpClass::Delete => KvTaskOp::Delete { key },
            OpClass::Cas => KvTaskOp::Cas {
                key,
                expected: self.rng.random_range(-r..=r),
                new: self.rng.random_range(-r..=r),
            },
        }
    }

    /// Returns the frame to transmit at `now`, if any: the next fresh
    /// operation, a retransmission whose resend time arrived, or an
    /// ack (first send or resend).
    pub fn poll(&mut self, now: u64) -> Option<Request> {
        match self.phase {
            Phase::Finished => None,
            Phase::Idle => {
                if self.stats.completed as usize >= self.cfg.n_ops {
                    self.phase = Phase::Finished;
                    return None;
                }
                let op = self.gen_op();
                self.seq += 1;
                let req_id = req_id_for(self.cfg.client_id, self.seq);
                self.phase = Phase::AwaitOp {
                    op,
                    first_sent: now,
                    resend_at: now + self.cfg.timeout_ns,
                    attempt: 1,
                };
                Some(Request {
                    req_id,
                    body: RequestBody::Op(op),
                })
            }
            Phase::AwaitOp {
                op,
                first_sent,
                resend_at,
                attempt,
            } => {
                if now < resend_at {
                    return None;
                }
                self.stats.retransmits += 1;
                let next_attempt = attempt + 1;
                let delay = self.cfg.timeout_ns + self.backoff(next_attempt);
                self.phase = Phase::AwaitOp {
                    op,
                    first_sent,
                    resend_at: now + delay,
                    attempt: next_attempt,
                };
                Some(Request {
                    req_id: req_id_for(self.cfg.client_id, self.seq),
                    body: RequestBody::Op(op),
                })
            }
            Phase::AwaitAck { resend_at, attempt } => {
                if now < resend_at {
                    return None;
                }
                self.stats.acks_sent += 1;
                let next_attempt = attempt + 1;
                let delay = self.cfg.timeout_ns + self.backoff(next_attempt);
                self.phase = Phase::AwaitAck {
                    resend_at: now + delay,
                    attempt: next_attempt,
                };
                Some(Request {
                    req_id: req_id_for(self.cfg.client_id, self.seq),
                    body: RequestBody::Ack,
                })
            }
        }
    }

    /// The next instant at which [`ClientSim::poll`] will produce a
    /// frame, if any — lets a simulation loop jump time instead of
    /// scanning it.
    #[must_use]
    pub fn next_wake(&self) -> Option<u64> {
        match self.phase {
            Phase::Finished => None,
            Phase::Idle => {
                if self.stats.completed as usize >= self.cfg.n_ops {
                    None
                } else {
                    Some(0) // ready immediately
                }
            }
            Phase::AwaitOp { resend_at, .. } | Phase::AwaitAck { resend_at, .. } => Some(resend_at),
        }
    }

    fn record_done(&mut self, now: u64, op: KvTaskOp, first_sent: u64, answer: KvTaskAnswer) {
        let req_id = req_id_for(self.cfg.client_id, self.seq);
        let (kind, value, expected) = match op {
            KvTaskOp::Put { value, .. } => (KvOpKind::Put, value, 0),
            KvTaskOp::Get { .. } => (KvOpKind::Get, 0, 0),
            KvTaskOp::Delete { .. } => (KvOpKind::Delete, 0, 0),
            KvTaskOp::Cas { expected, new, .. } => (KvOpKind::Cas, new, expected),
        };
        let answer = match answer.result {
            KvTaskResult::Stored(ok) => KvAnswer::Stored(ok),
            KvTaskResult::Got(v) => KvAnswer::Got(v),
            KvTaskResult::Deleted(ok) => KvAnswer::Deleted(ok),
            KvTaskResult::Swapped(ok) => KvAnswer::Swapped(ok),
        };
        self.observations.push(KvOp {
            pid: u64::from(self.cfg.client_id),
            seq: req_id,
            kind,
            key: op.key(),
            value,
            expected,
            answer,
        });
        self.latencies
            .push((OpClass::of(op), now.saturating_sub(first_sent)));
    }

    /// Feeds a server response into the state machine. Responses whose
    /// `req_id` is not the in-flight one (late duplicates from an
    /// earlier attempt's server-side execution) are dropped.
    pub fn deliver(&mut self, now: u64, resp: &Response) {
        let Some(current) = self.current_req_id() else {
            return;
        };
        if resp.req_id() != current {
            return;
        }
        match (&self.phase, resp) {
            (
                &Phase::AwaitOp {
                    op,
                    first_sent,
                    attempt,
                    ..
                },
                Response::Done { answer, .. },
            ) => {
                self.record_done(now, op, first_sent, *answer);
                // From here on only the (idempotent) ack may be
                // retransmitted — never the request.
                let _ = attempt;
                self.phase = Phase::AwaitAck {
                    resend_at: now,
                    attempt: 0,
                };
            }
            (
                &Phase::AwaitOp {
                    op,
                    first_sent,
                    attempt,
                    ..
                },
                Response::Overloaded { .. },
            ) => {
                self.stats.overloads += 1;
                let delay = self.backoff(attempt);
                self.phase = Phase::AwaitOp {
                    op,
                    first_sent,
                    resend_at: now + delay,
                    attempt,
                };
            }
            (
                &Phase::AwaitOp {
                    op,
                    first_sent,
                    attempt,
                    ..
                },
                Response::Retry { .. },
            ) => {
                self.stats.retry_signals += 1;
                let delay = self.backoff(attempt);
                self.phase = Phase::AwaitOp {
                    op,
                    first_sent,
                    resend_at: now + delay,
                    attempt,
                };
            }
            (&Phase::AwaitOp { .. }, Response::Stale { .. }) => {
                // The server says this id already executed and was
                // acked — retransmitting it again can never succeed.
                // Stop retrying; the counter flags the contract breach.
                self.stats.stale_signals += 1;
                self.phase = Phase::Idle;
            }
            (&Phase::AwaitAck { .. }, Response::AckOk { .. }) => {
                self.stats.completed += 1;
                self.phase = Phase::Idle;
            }
            (
                &Phase::AwaitAck { attempt, .. },
                Response::Retry { .. } | Response::Overloaded { .. },
            ) => {
                self.stats.retry_signals += 1;
                let delay = self.backoff(attempt.max(1));
                self.phase = Phase::AwaitAck {
                    resend_at: now + delay,
                    attempt,
                };
            }
            _ => {} // stale/mismatched codes: drop
        }
    }

    /// Signals that the server died under this client's in-flight
    /// frame (the transport's equivalent of a connection reset): an
    /// observed `Retry`. The client backs off and retransmits —
    /// requests retry, acks re-ack; nothing is abandoned.
    pub fn on_crash(&mut self, now: u64) {
        match self.phase {
            Phase::AwaitOp {
                op,
                first_sent,
                attempt,
                ..
            } => {
                self.stats.retry_signals += 1;
                let delay = self.backoff(attempt);
                self.phase = Phase::AwaitOp {
                    op,
                    first_sent,
                    resend_at: now + delay,
                    attempt,
                };
            }
            Phase::AwaitAck { attempt, .. } => {
                self.stats.retry_signals += 1;
                let delay = self.backoff(attempt.max(1));
                self.phase = Phase::AwaitAck {
                    resend_at: now + delay,
                    attempt,
                };
            }
            Phase::Idle | Phase::Finished => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::client_of;

    fn mk(n_ops: usize, seed: u64) -> ClientSim {
        ClientSim::new(ClientConfig {
            client_id: 3,
            n_ops,
            seed,
            ..ClientConfig::default()
        })
    }

    fn done_for(req: &Request) -> Response {
        let RequestBody::Op(op) = req.body else {
            panic!("op request expected")
        };
        let result = match op {
            KvTaskOp::Put { .. } => KvTaskResult::Stored(true),
            KvTaskOp::Get { .. } => KvTaskResult::Got(None),
            KvTaskOp::Delete { .. } => KvTaskResult::Deleted(false),
            KvTaskOp::Cas { .. } => KvTaskResult::Swapped(false),
        };
        Response::Done {
            req_id: req.req_id,
            kind: crate::proto::kind_of(op),
            answer: KvTaskAnswer {
                executor: 1,
                result,
            },
        }
    }

    #[test]
    fn happy_path_completes_in_order() {
        let mut c = mk(3, 7);
        let mut now = 0u64;
        while !c.is_finished() {
            let Some(req) = c.poll(now) else {
                now += 1_000;
                continue;
            };
            match req.body {
                RequestBody::Op(_) => c.deliver(now + 10, &done_for(&req)),
                RequestBody::Ack => c.deliver(now + 10, &Response::AckOk { req_id: req.req_id }),
            }
            now += 20;
        }
        let stats = c.stats();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.acks_sent, 3);
        assert_eq!(c.observations().len(), 3);
        assert_eq!(c.latencies().len(), 3);
        // req_ids are (client << 32) | seq, seq 1..=3.
        for (i, ob) in c.observations().iter().enumerate() {
            assert_eq!(client_of(ob.seq), 3);
            assert_eq!(ob.seq & 0xFFFF_FFFF, i as u64 + 1);
            assert_eq!(ob.pid, 3);
        }
    }

    #[test]
    fn timeout_retransmits_same_req_id_until_done() {
        let mut c = mk(1, 9);
        let req = c.poll(0).unwrap();
        // Silence: the client retransmits after the timeout, same id.
        assert!(c.poll(1_000).is_none(), "before the deadline: quiet");
        let cfg = ClientConfig::default();
        let r2 = c.poll(cfg.timeout_ns).expect("timeout fired");
        assert_eq!(r2.req_id, req.req_id);
        assert_eq!(r2.body, req.body);
        assert_eq!(c.stats().retransmits, 1);
        // Done after a retransmission is still recorded once.
        c.deliver(cfg.timeout_ns + 10, &done_for(&req));
        assert_eq!(c.observations().len(), 1);
        // Now only acks flow — never the op again.
        let ack = c.poll(cfg.timeout_ns + 20).unwrap();
        assert_eq!(ack.body, RequestBody::Ack);
        assert_eq!(ack.req_id, req.req_id);
        c.deliver(cfg.timeout_ns + 30, &Response::AckOk { req_id: req.req_id });
        assert!(c.is_finished());
    }

    #[test]
    fn overload_and_crash_back_off_exponentially() {
        let mut c = mk(1, 11);
        let req = c.poll(0).unwrap();
        c.deliver(10, &Response::Overloaded { req_id: req.req_id });
        assert_eq!(c.stats().overloads, 1);
        let Some(wake1) = c.next_wake() else {
            panic!("backoff scheduled")
        };
        assert!(wake1 > 10, "no immediate hammering after Overloaded");
        // A crash signal while waiting also backs off, same request.
        c.on_crash(wake1);
        assert_eq!(c.stats().retry_signals, 1);
        let r2 = c.poll(c.next_wake().unwrap()).unwrap();
        assert_eq!(r2.req_id, req.req_id);
    }

    #[test]
    fn stale_responses_are_dropped() {
        let mut c = mk(2, 13);
        let req = c.poll(0).unwrap();
        // A response for some other request id does nothing.
        c.deliver(5, &Response::AckOk { req_id: 0xBEEF });
        c.deliver(5, &Response::Retry { req_id: 0xBEEF });
        assert_eq!(c.stats().retry_signals, 0);
        // An AckOk while awaiting the op (code mismatch) is dropped.
        c.deliver(5, &Response::AckOk { req_id: req.req_id });
        assert_eq!(c.stats().completed, 0);
        c.deliver(6, &done_for(&req));
        // A second Done while awaiting ack is dropped (no double obs).
        c.deliver(7, &done_for(&req));
        assert_eq!(c.observations().len(), 1);
    }

    #[test]
    fn determinism_by_seed() {
        let run = |seed| {
            let mut c = mk(5, seed);
            let mut now = 0;
            let mut trace = Vec::new();
            while !c.is_finished() {
                if let Some(req) = c.poll(now) {
                    trace.push((now, req));
                    match req.body {
                        RequestBody::Op(_) => c.deliver(now + 3, &done_for(&req)),
                        RequestBody::Ack => {
                            c.deliver(now + 3, &Response::AckOk { req_id: req.req_id });
                        }
                    }
                }
                now += 5;
            }
            trace
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22), "different seeds, different schedules");
    }
}
