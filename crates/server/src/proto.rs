//! The wire protocol: length-prefixed binary frames.
//!
//! Every message is a `u32` little-endian byte length followed by a
//! fixed-layout body. Requests (client → server):
//!
//! ```text
//! [req_id u64][kind u8][key u64][value i64][expected i64]   (33 bytes)
//!   kind: 0 Put(key,value) · 1 Get(key) · 2 Delete(key)
//!         3 Cas(key,expected,new=value) · 4 Ack
//! ```
//!
//! Responses (server → client):
//!
//! ```text
//! [req_id u64][code u8][kind u8][executor u32][flag u8][got i64]   (23 bytes)
//!   code: 0 Done · 1 Overloaded · 2 Retry · 3 AckOk · 4 Stale
//! ```
//!
//! `req_id` is chosen by the client as `(client_id << 32) | seq` with
//! `seq` starting at **1** (`req_id == 0` is reserved) and is the
//! exactly-once identity: the server dedupes on it, the store tags
//! version records with `(pid = client_id, seq = req_id)`, and clients
//! drop responses whose `req_id` is not the one in flight. The `kind`
//! echo in responses lets a `Done` decode to a [`KvTaskAnswer`] without
//! consulting client state.
//!
//! The same codec runs over every transport — the in-process channel
//! hub and the `cfg(unix)` socket listener — so a portable CI test
//! exercises exactly the bytes the socket path ships.

use std::io::{self, Read, Write};

use pstack_kv::{KvTaskAnswer, KvTaskOp, KvTaskResult};

/// Body length of an encoded request.
pub const REQUEST_LEN: usize = 33;
/// Body length of an encoded response.
pub const RESPONSE_LEN: usize = 23;
/// Frames larger than this are rejected as corrupt, not allocated.
pub const MAX_FRAME_LEN: usize = 4096;

const KIND_PUT: u8 = 0;
const KIND_GET: u8 = 1;
const KIND_DEL: u8 = 2;
const KIND_CAS: u8 = 3;
const KIND_ACK: u8 = 4;

const CODE_DONE: u8 = 0;
const CODE_OVERLOADED: u8 = 1;
const CODE_RETRY: u8 = 2;
const CODE_ACK_OK: u8 = 3;
const CODE_STALE: u8 = 4;

/// Builds the request id of client `client_id`'s `seq`-th request
/// (`seq` starts at 1; id 0 is reserved for free table slots).
#[must_use]
pub fn req_id_for(client_id: u32, seq: u32) -> u64 {
    (u64::from(client_id) << 32) | u64::from(seq)
}

/// The client that issued `req_id`.
#[must_use]
pub fn client_of(req_id: u64) -> u32 {
    (req_id >> 32) as u32
}

/// A client → server message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The request's exactly-once identity.
    pub req_id: u64,
    /// What the client asks for.
    pub body: RequestBody,
}

/// The payload of a [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestBody {
    /// Execute a KV operation (dedup by `req_id` on retries).
    Op(KvTaskOp),
    /// Acknowledge receipt of `req_id`'s answer — the client promises
    /// never to retransmit this request, freeing its table slot.
    Ack,
}

/// A server → client message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// The durable answer to `req_id`.
    Done {
        /// The request answered.
        req_id: u64,
        /// The operation's kind (echo of the request).
        kind: u8,
        /// The durable answer.
        answer: KvTaskAnswer,
    },
    /// The server shed `req_id` under load — retry after backoff.
    Overloaded {
        /// The request shed.
        req_id: u64,
    },
    /// The server cannot answer now (e.g. it rebooted out from under
    /// the connection) — retry after backoff.
    Retry {
        /// The request to retry.
        req_id: u64,
    },
    /// The ack for `req_id` was recorded (idempotent; also sent for
    /// ids already recycled).
    AckOk {
        /// The request acknowledged.
        req_id: u64,
    },
    /// `req_id` was already acked and its slot recycled — the client
    /// violated the retry contract by retransmitting it. The effect
    /// executed exactly once long ago; there is nothing to retry.
    Stale {
        /// The stale request.
        req_id: u64,
    },
}

impl Response {
    /// The request this response addresses.
    #[must_use]
    pub fn req_id(&self) -> u64 {
        match *self {
            Response::Done { req_id, .. }
            | Response::Overloaded { req_id }
            | Response::Retry { req_id }
            | Response::AckOk { req_id }
            | Response::Stale { req_id } => req_id,
        }
    }
}

/// The kind byte an operation encodes to (echoed in `Done` responses).
#[must_use]
pub fn kind_of(op: KvTaskOp) -> u8 {
    match op {
        KvTaskOp::Put { .. } => KIND_PUT,
        KvTaskOp::Get { .. } => KIND_GET,
        KvTaskOp::Delete { .. } => KIND_DEL,
        KvTaskOp::Cas { .. } => KIND_CAS,
    }
}

/// Encodes a request body (no length prefix).
#[must_use]
pub fn encode_request(req: &Request) -> [u8; REQUEST_LEN] {
    let mut b = [0u8; REQUEST_LEN];
    b[..8].copy_from_slice(&req.req_id.to_le_bytes());
    match req.body {
        RequestBody::Ack => b[8] = KIND_ACK,
        RequestBody::Op(op) => {
            b[8] = kind_of(op);
            match op {
                KvTaskOp::Put { key, value } => {
                    b[9..17].copy_from_slice(&key.to_le_bytes());
                    b[17..25].copy_from_slice(&value.to_le_bytes());
                }
                KvTaskOp::Get { key } | KvTaskOp::Delete { key } => {
                    b[9..17].copy_from_slice(&key.to_le_bytes());
                }
                KvTaskOp::Cas { key, expected, new } => {
                    b[9..17].copy_from_slice(&key.to_le_bytes());
                    b[17..25].copy_from_slice(&new.to_le_bytes());
                    b[25..33].copy_from_slice(&expected.to_le_bytes());
                }
            }
        }
    }
    b
}

/// Decodes a request body.
///
/// # Errors
///
/// `InvalidData` on a wrong length or unknown kind byte.
pub fn decode_request(b: &[u8]) -> io::Result<Request> {
    if b.len() != REQUEST_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("request frame must be {REQUEST_LEN} bytes, got {}", b.len()),
        ));
    }
    let req_id = u64::from_le_bytes(b[..8].try_into().expect("slice length"));
    let key = u64::from_le_bytes(b[9..17].try_into().expect("slice length"));
    let value = i64::from_le_bytes(b[17..25].try_into().expect("slice length"));
    let expected = i64::from_le_bytes(b[25..33].try_into().expect("slice length"));
    let body = match b[8] {
        KIND_PUT => RequestBody::Op(KvTaskOp::Put { key, value }),
        KIND_GET => RequestBody::Op(KvTaskOp::Get { key }),
        KIND_DEL => RequestBody::Op(KvTaskOp::Delete { key }),
        KIND_CAS => RequestBody::Op(KvTaskOp::Cas {
            key,
            expected,
            new: value,
        }),
        KIND_ACK => RequestBody::Ack,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown request kind {other}"),
            ))
        }
    };
    Ok(Request { req_id, body })
}

/// Encodes a response body (no length prefix).
#[must_use]
pub fn encode_response(resp: &Response) -> [u8; RESPONSE_LEN] {
    let mut b = [0u8; RESPONSE_LEN];
    b[..8].copy_from_slice(&resp.req_id().to_le_bytes());
    match *resp {
        Response::Done { kind, answer, .. } => {
            b[8] = CODE_DONE;
            b[9] = kind;
            b[10..14].copy_from_slice(&answer.executor.to_le_bytes());
            let (flag, got) = match answer.result {
                KvTaskResult::Stored(ok)
                | KvTaskResult::Deleted(ok)
                | KvTaskResult::Swapped(ok) => (u8::from(ok), 0),
                KvTaskResult::Got(None) => (0, 0),
                KvTaskResult::Got(Some(v)) => (1, v),
            };
            b[14] = flag;
            b[15..23].copy_from_slice(&got.to_le_bytes());
        }
        Response::Overloaded { .. } => b[8] = CODE_OVERLOADED,
        Response::Retry { .. } => b[8] = CODE_RETRY,
        Response::AckOk { .. } => b[8] = CODE_ACK_OK,
        Response::Stale { .. } => b[8] = CODE_STALE,
    }
    b
}

/// Decodes a response body.
///
/// # Errors
///
/// `InvalidData` on a wrong length or unknown code/kind byte.
pub fn decode_response(b: &[u8]) -> io::Result<Response> {
    if b.len() != RESPONSE_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "response frame must be {RESPONSE_LEN} bytes, got {}",
                b.len()
            ),
        ));
    }
    let req_id = u64::from_le_bytes(b[..8].try_into().expect("slice length"));
    match b[8] {
        CODE_DONE => {
            let kind = b[9];
            let executor = u32::from_le_bytes(b[10..14].try_into().expect("slice length"));
            let flag = b[14] != 0;
            let got = i64::from_le_bytes(b[15..23].try_into().expect("slice length"));
            let result = match kind {
                KIND_PUT => KvTaskResult::Stored(flag),
                KIND_GET => KvTaskResult::Got(flag.then_some(got)),
                KIND_DEL => KvTaskResult::Deleted(flag),
                KIND_CAS => KvTaskResult::Swapped(flag),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown answer kind {other}"),
                    ))
                }
            };
            Ok(Response::Done {
                req_id,
                kind,
                answer: KvTaskAnswer { executor, result },
            })
        }
        CODE_OVERLOADED => Ok(Response::Overloaded { req_id }),
        CODE_RETRY => Ok(Response::Retry { req_id }),
        CODE_ACK_OK => Ok(Response::AckOk { req_id }),
        CODE_STALE => Ok(Response::Stale { req_id }),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response code {other}"),
        )),
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagated I/O errors.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one length-prefixed frame, bounding allocation at
/// [`MAX_FRAME_LEN`].
///
/// # Errors
///
/// Propagated I/O errors (including clean EOF as `UnexpectedEof`), or
/// `InvalidData` for an over-long frame.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte bound"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_all_kinds() {
        let ops = [
            RequestBody::Op(KvTaskOp::Put { key: 7, value: -3 }),
            RequestBody::Op(KvTaskOp::Get { key: u64::MAX }),
            RequestBody::Op(KvTaskOp::Delete { key: 0 }),
            RequestBody::Op(KvTaskOp::Cas {
                key: 9,
                expected: i64::MIN,
                new: i64::MAX,
            }),
            RequestBody::Ack,
        ];
        for (i, body) in ops.into_iter().enumerate() {
            let req = Request {
                req_id: req_id_for(3, i as u32 + 1),
                body,
            };
            let decoded = decode_request(&encode_request(&req)).unwrap();
            assert_eq!(decoded, req);
            assert_eq!(client_of(decoded.req_id), 3);
        }
    }

    #[test]
    fn response_round_trip_all_codes() {
        let answers = [
            (KIND_PUT, KvTaskResult::Stored(true)),
            (KIND_GET, KvTaskResult::Got(Some(-9))),
            (KIND_GET, KvTaskResult::Got(None)),
            (KIND_DEL, KvTaskResult::Deleted(false)),
            (KIND_CAS, KvTaskResult::Swapped(true)),
        ];
        for (kind, result) in answers {
            let resp = Response::Done {
                req_id: 42,
                kind,
                answer: KvTaskAnswer {
                    executor: 5,
                    result,
                },
            };
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
        for resp in [
            Response::Overloaded { req_id: 1 },
            Response::Retry { req_id: 2 },
            Response::AckOk { req_id: 3 },
            Response::Stale { req_id: 4 },
        ] {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn framing_round_trip_and_bounds() {
        let mut buf = Vec::new();
        let req = Request {
            req_id: req_id_for(1, 1),
            body: RequestBody::Op(KvTaskOp::Get { key: 5 }),
        };
        write_frame(&mut buf, &encode_request(&req)).unwrap();
        write_frame(&mut buf, &encode_request(&req)).unwrap();
        let mut r = buf.as_slice();
        for _ in 0..2 {
            let body = read_frame(&mut r).unwrap();
            assert_eq!(decode_request(&body).unwrap(), req);
        }
        assert!(
            read_frame(&mut r).is_err(),
            "clean EOF surfaces as an error"
        );

        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        assert!(decode_request(&[0u8; 5]).is_err());
        assert!(decode_response(&[0u8; 5]).is_err());
        let mut bad = encode_request(&Request {
            req_id: 1,
            body: RequestBody::Ack,
        });
        bad[8] = 200;
        assert!(decode_request(&bad).is_err());
        let mut bad = encode_response(&Response::Retry { req_id: 1 });
        bad[8] = 200;
        assert!(decode_response(&bad).is_err());
    }
}
