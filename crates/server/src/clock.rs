//! Time as a capability: the retry/timeout state machine never reads
//! the wall clock directly.
//!
//! Backoff schedules and timeout firings decide *when clients
//! retransmit*, and retransmissions decide which dedup paths the server
//! exercises — so a campaign that wants to reproduce a failure by seed
//! must control time. [`Clock`] is the one seam: the binary and the
//! socket transports run on [`SystemClock`]; every test and campaign
//! runs on [`VirtualClock`], advanced explicitly by the simulation
//! loop, which makes an entire serving schedule (sends, timeouts,
//! backoff expiries, SLO latencies) a pure function of the seed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock {
    /// Nanoseconds since an arbitrary (per-clock) epoch.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock (epoch = construction time).
#[derive(Debug, Clone)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually advanced clock — deterministic time for simulations.
///
/// Clones share the same instant, so a server, its clients, and the
/// simulation loop all observe one timeline.
///
/// # Example
///
/// ```
/// use pstack_server::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let observer = clock.clone();
/// clock.advance(250);
/// assert_eq!(observer.now_ns(), 250);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at t = 0.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps time to `ns` if that is later than now (time never runs
    /// backwards, even under a confused driver).
    pub fn advance_to(&self, ns: u64) {
        self.now.fetch_max(ns, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_shared_and_monotonic() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        assert_eq!(c.now_ns(), 0);
        c.advance(100);
        c2.advance(50);
        assert_eq!(c.now_ns(), 150);
        c.advance_to(120); // earlier than now: no-op
        assert_eq!(c.now_ns(), 150);
        c.advance_to(400);
        assert_eq!(c2.now_ns(), 400);
    }

    #[test]
    fn system_clock_moves_forward() {
        let c = SystemClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
