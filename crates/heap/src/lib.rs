//! Persistent heap allocator for emulated NVRAM.
//!
//! The persistent-stack runtime needs a heap in NVRAM for three things
//! the paper calls out explicitly: return values larger than 8 bytes
//! (§4.2), the blocks of the unbounded stack variants (Appendix A), and
//! application data such as the recoverable-CAS register and matrix.
//!
//! # Crash-consistency design
//!
//! The only *persistent* allocator metadata is the per-block header: a
//! size word whose low bit is the used flag, plus a canary word. The
//! free list itself is **volatile** and rebuilt on every open by walking
//! the block headers — so there is no free-list pointer to corrupt.
//!
//! Every metadata transition is a single 8-byte header-word persist
//! (crash-atomic, since a 16-byte-aligned word never crosses a cache
//! line), and the transitions are ordered so that the block walk parses
//! a consistent heap at **every** intermediate crash point:
//!
//! * *allocation with a split* first writes the interior headers (still
//!   invisible to the walk, which is driven by the old size word) and
//!   only then rewrites the original size word — the atomic switch;
//! * *free* clears the used bit, then absorbs free neighbours by
//!   rewriting one size word at a time.
//!
//! If a crash lands between "clear used" and "absorb", the walk sees two
//! adjacent free blocks; [`PHeap::open`] re-coalesces them. A block that
//! was allocated but whose owner crashed before publishing it anywhere
//! is *leaked*, not corrupted — the paper's recovery model re-executes
//! the owning function, which allocates afresh (documented trade-off,
//! identical to Makalu-style allocators without GC).
//!
//! # Example
//!
//! ```
//! use pstack_nvram::{PMemBuilder, POffset};
//! use pstack_heap::PHeap;
//!
//! # fn main() -> Result<(), pstack_heap::HeapError> {
//! let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
//! let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16)?;
//! let a = heap.alloc(100)?;
//! pmem.write_u64(a, 42)?;
//! pmem.flush(a, 8)?;
//! heap.free(a)?;
//! # Ok(())
//! # }
//! ```

mod error;
mod heap;

pub use error::HeapError;
pub use heap::{HeapStats, PHeap, BLOCK_HEADER_LEN, MIN_BLOCK_LEN};
