//! Error type for persistent-heap operations.

use std::error::Error;
use std::fmt;

use pstack_nvram::MemError;

/// Errors returned by [`PHeap`](crate::PHeap) operations.
#[derive(Debug)]
pub enum HeapError {
    /// Underlying NVRAM access failed (crash, out of bounds, I/O).
    Mem(MemError),
    /// No free block can satisfy the request.
    OutOfMemory {
        /// Requested payload size in bytes.
        requested: usize,
    },
    /// `free` was called with an offset that is not a live allocation.
    InvalidFree {
        /// The offending payload offset.
        offset: u64,
        /// Human-readable diagnosis.
        reason: &'static str,
    },
    /// `free` was called on an extent inside a retired generation —
    /// retained recovery evidence that must never be reclaimed (see
    /// [`PHeap::register_retired_extent`](crate::PHeap::register_retired_extent)).
    RetiredExtent {
        /// The offending payload offset.
        offset: u64,
        /// Start of the registered retired extent containing it.
        extent_start: u64,
        /// Length of that retired extent in bytes.
        extent_len: u64,
    },
    /// The persistent metadata failed validation.
    Corrupt(String),
    /// Bad construction parameters.
    InvalidConfig(String),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::Mem(e) => write!(f, "nvram access failed: {e}"),
            HeapError::OutOfMemory { requested } => {
                write!(f, "no free block can hold {requested} bytes")
            }
            HeapError::InvalidFree { offset, reason } => {
                write!(f, "invalid free of offset {offset:#x}: {reason}")
            }
            HeapError::RetiredExtent {
                offset,
                extent_start,
                extent_len,
            } => {
                write!(
                    f,
                    "free of offset {offset:#x} inside retired extent \
                     [{extent_start:#x}, {:#x}): retired generations are recovery \
                     evidence and must not be reclaimed",
                    extent_start + extent_len
                )
            }
            HeapError::Corrupt(msg) => write!(f, "heap metadata is corrupt: {msg}"),
            HeapError::InvalidConfig(msg) => write!(f, "invalid heap configuration: {msg}"),
        }
    }
}

impl Error for HeapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeapError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for HeapError {
    fn from(e: MemError) -> Self {
        HeapError::Mem(e)
    }
}

impl HeapError {
    /// Returns `true` if the error is a propagated crash, i.e. the
    /// process should unwind to its scheduler for recovery.
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, HeapError::Mem(MemError::Crashed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for e in [
            HeapError::Mem(MemError::Crashed),
            HeapError::OutOfMemory { requested: 8 },
            HeapError::InvalidFree {
                offset: 16,
                reason: "double free",
            },
            HeapError::RetiredExtent {
                offset: 64,
                extent_start: 32,
                extent_len: 128,
            },
            HeapError::Corrupt("bad canary".into()),
            HeapError::InvalidConfig("too small".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn crash_detection() {
        assert!(HeapError::Mem(MemError::Crashed).is_crash());
        assert!(!HeapError::OutOfMemory { requested: 1 }.is_crash());
    }

    #[test]
    fn mem_error_is_source() {
        let e = HeapError::Mem(MemError::Crashed);
        assert!(Error::source(&e).is_some());
    }
}
