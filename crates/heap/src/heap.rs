//! The persistent free-list allocator.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use pstack_nvram::{PMem, POffset};

use crate::HeapError;

/// Bytes of per-heap persistent metadata at the heap base.
const HEAP_HEADER_LEN: u64 = 32;

/// Bytes of per-block persistent metadata (size word + canary word).
pub const BLOCK_HEADER_LEN: u64 = 16;

/// Smallest representable block: header plus 16 payload bytes.
pub const MIN_BLOCK_LEN: u64 = 32;

const HEAP_MAGIC: u64 = 0x5053_5441_434B_4850; // "PSTACKHP"
const BLOCK_CANARY: u64 = 0xB10C_B10C_B10C_B10C;
const USED_BIT: u64 = 1;

/// Persists `[off, off + len)` — unless the region is eager, where
/// every write is already durable and the flush would only burn a
/// redundant persist round-trip (PSan's redundant-persist diagnostic
/// flagged the unconditional version).
fn persist(pmem: &PMem, off: POffset, len: usize) -> Result<(), HeapError> {
    if !pmem.is_eager_flush() {
        pmem.flush(off, len)?;
    }
    Ok(())
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Block {
    size: u64,
    used: bool,
}

#[derive(Debug)]
struct HeapInner {
    /// Volatile mirror of the block headers, keyed by block start offset.
    /// Rebuilt from NVRAM on every open; never persisted itself.
    blocks: BTreeMap<u64, Block>,
    /// Retired extents (`start → len`): ranges a client declared to be
    /// retained recovery evidence ([`PHeap::register_retired_extent`]).
    /// [`PHeap::free`] rejects any payload inside one. Volatile like
    /// `blocks` — the owning store re-registers on every open, walking
    /// its retired-generation chain.
    retired: BTreeMap<u64, u64>,
}

/// A persistent heap carved out of a range of emulated NVRAM.
///
/// Cheap to clone; clones share the same allocator state. All methods
/// take `&self` and are thread-safe.
///
/// See the [crate-level documentation](crate) for the crash-consistency
/// argument and an example.
#[derive(Debug, Clone)]
pub struct PHeap {
    pmem: PMem,
    first_block: u64,
    end: u64,
    inner: Arc<Mutex<HeapInner>>,
}

/// Point-in-time usage summary returned by [`PHeap::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes of payload in live allocations.
    pub used_payload_bytes: u64,
    /// Bytes of payload available in free blocks.
    pub free_payload_bytes: u64,
    /// Number of live allocations.
    pub used_blocks: usize,
    /// Number of free blocks.
    pub free_blocks: usize,
    /// Payload capacity of the largest free block.
    pub largest_free_payload: u64,
}

impl PHeap {
    /// Formats a fresh heap over `[base, base + len)` and returns a
    /// handle to it. All previous content in the range is ignored.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidConfig`] if the range is too small to hold
    /// the header and one minimal block, or [`HeapError::Mem`] if the
    /// range is not valid NVRAM.
    pub fn format(pmem: PMem, base: POffset, len: u64) -> Result<Self, HeapError> {
        let (first_block, end) = Self::usable_range(base, len)?;
        // Heap header: magic, then the usable-range end for validation.
        pmem.write_u64(base, HEAP_MAGIC)?;
        pmem.write_u64(base + 8u64, end)?;
        pmem.write_u64(base + 16u64, first_block)?;
        pmem.write_u64(base + 24u64, 0)?;
        persist(&pmem, base, HEAP_HEADER_LEN as usize)?;

        let total = end - first_block;
        write_header(&pmem, first_block, total, false)?;

        let mut blocks = BTreeMap::new();
        blocks.insert(
            first_block,
            Block {
                size: total,
                used: false,
            },
        );
        Ok(PHeap {
            pmem,
            first_block,
            end,
            inner: Arc::new(Mutex::new(HeapInner {
                blocks,
                retired: BTreeMap::new(),
            })),
        })
    }

    /// Opens a heap previously formatted at `base`, rebuilding the
    /// volatile free list from the persistent block headers and
    /// re-coalescing any adjacent free blocks a crash may have left.
    ///
    /// # Errors
    ///
    /// [`HeapError::Corrupt`] if the header magic or any block header
    /// fails validation.
    pub fn open(pmem: PMem, base: POffset) -> Result<Self, HeapError> {
        let magic = pmem.read_u64(base)?;
        if magic != HEAP_MAGIC {
            return Err(HeapError::Corrupt(format!(
                "bad heap magic {magic:#x} at {base}"
            )));
        }
        let end = pmem.read_u64(base + 8u64)?;
        let first_block = pmem.read_u64(base + 16u64)?;
        let mut blocks = walk_blocks(&pmem, first_block, end)?;

        // Re-coalesce: a crash between "clear used bit" and "absorb
        // neighbour" legitimately leaves adjacent free blocks.
        let starts: Vec<u64> = blocks.keys().copied().collect();
        let mut i = 0;
        while i < starts.len() {
            let start = starts[i];
            // The block may have been absorbed into an earlier one.
            let Some(blk) = blocks.get(&start).copied() else {
                i += 1;
                continue;
            };
            if !blk.used {
                let mut size = blk.size;
                let mut next = start + size;
                while let Some(nb) = blocks.get(&next).copied() {
                    if nb.used {
                        break;
                    }
                    size += nb.size;
                    blocks.remove(&next);
                    next = start + size;
                }
                if size != blk.size {
                    write_header_word(&pmem, start, size, false)?;
                    blocks.insert(start, Block { size, used: false });
                }
            }
            i += 1;
        }

        Ok(PHeap {
            pmem,
            first_block,
            end,
            inner: Arc::new(Mutex::new(HeapInner {
                blocks,
                retired: BTreeMap::new(),
            })),
        })
    }

    fn usable_range(base: POffset, len: u64) -> Result<(u64, u64), HeapError> {
        if base.is_null() {
            return Err(HeapError::InvalidConfig(
                "heap base must not be null".into(),
            ));
        }
        let first_block = (base + HEAP_HEADER_LEN).align_up(16).get();
        let end = (base.get() + len) & !15;
        if end < first_block + MIN_BLOCK_LEN {
            return Err(HeapError::InvalidConfig(format!(
                "heap range of {len} bytes cannot hold one minimal block"
            )));
        }
        Ok((first_block, end))
    }

    /// The NVRAM region this heap allocates from.
    #[must_use]
    pub fn pmem(&self) -> &PMem {
        &self.pmem
    }

    /// Allocates `size` bytes with 16-byte alignment and returns the
    /// payload offset.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfMemory`] when no free block fits, or a
    /// propagated NVRAM error.
    pub fn alloc(&self, size: usize) -> Result<POffset, HeapError> {
        self.alloc_aligned(size, 16)
    }

    /// Allocates `size` bytes whose payload offset is a multiple of
    /// `align` (a power of two, at least 16). Useful for data that must
    /// not cross cache-line borders, such as the recoverable-CAS cells.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidConfig`] for a bad alignment,
    /// [`HeapError::OutOfMemory`] when nothing fits, or a propagated
    /// NVRAM error.
    pub fn alloc_aligned(&self, size: usize, align: u64) -> Result<POffset, HeapError> {
        if !align.is_power_of_two() || align < 16 {
            return Err(HeapError::InvalidConfig(format!(
                "alignment {align} must be a power of two >= 16"
            )));
        }
        let req = round16(size.max(1) as u64);
        let mut inner = self.inner.lock();

        let candidates: Vec<(u64, u64)> = inner
            .blocks
            .iter()
            .filter(|(_, b)| !b.used)
            .map(|(s, b)| (*s, b.size))
            .collect();

        for (start, total) in candidates {
            let payload0 = start + BLOCK_HEADER_LEN;
            let mut aligned = align_up(payload0, align);
            if aligned != payload0 && aligned - payload0 < MIN_BLOCK_LEN {
                aligned = align_up(payload0 + MIN_BLOCK_LEN, align);
            }
            let front = aligned - payload0;
            if front + BLOCK_HEADER_LEN + req > total {
                continue;
            }
            let avail = total - front;
            let mut need = BLOCK_HEADER_LEN + req;
            let tail = avail - need;
            let tail = if tail < MIN_BLOCK_LEN {
                need = avail;
                0
            } else {
                tail
            };

            let alloc_start = start + front;
            // Interior headers first: invisible to the walk until the
            // original size word is rewritten (the atomic switch).
            if tail > 0 {
                write_header(&self.pmem, alloc_start + need, tail, false)?;
            }
            if front > 0 {
                write_header(&self.pmem, alloc_start, need, true)?;
                write_header_word(&self.pmem, start, front, false)?;
                inner.blocks.insert(
                    start,
                    Block {
                        size: front,
                        used: false,
                    },
                );
            } else {
                write_header_word(&self.pmem, start, need, true)?;
            }
            inner.blocks.insert(
                alloc_start,
                Block {
                    size: need,
                    used: true,
                },
            );
            if tail > 0 {
                inner.blocks.insert(
                    alloc_start + need,
                    Block {
                        size: tail,
                        used: false,
                    },
                );
            }
            return Ok(POffset::new(alloc_start + BLOCK_HEADER_LEN));
        }
        Err(HeapError::OutOfMemory { requested: size })
    }

    /// Allocates and zero-fills `size` bytes; the zeros are flushed, so
    /// the freshly allocated payload has a defined persistent state.
    ///
    /// # Errors
    ///
    /// Same as [`PHeap::alloc`].
    pub fn alloc_zeroed(&self, size: usize) -> Result<POffset, HeapError> {
        let off = self.alloc(size)?;
        self.pmem.fill(off, 0, size)?;
        persist(&self.pmem, off, size)?;
        Ok(off)
    }

    /// Declares `[start, start + len)` a **retired extent**: retained
    /// recovery evidence (e.g. a retired KV generation block, chained
    /// via `prev`) that must never be reclaimed. [`PHeap::free`] of any
    /// payload inside the range fails with [`HeapError::RetiredExtent`]
    /// instead of silently handing evidence back to the allocator.
    ///
    /// The registry is volatile, like the free list itself: the owning
    /// store re-registers its retired ranges on every open/recovery.
    /// Registering the same extent twice is a no-op; overlapping
    /// registrations keep the widest coverage per start offset.
    pub fn register_retired_extent(&self, start: POffset, len: u64) {
        let mut inner = self.inner.lock();
        let entry = inner.retired.entry(start.get()).or_insert(0);
        *entry = (*entry).max(len);
    }

    /// Retired extents registered on this heap, as `(start, len)` pairs
    /// in address order.
    #[must_use]
    pub fn retired_extents(&self) -> Vec<(u64, u64)> {
        self.inner
            .lock()
            .retired
            .iter()
            .map(|(&s, &l)| (s, l))
            .collect()
    }

    /// Releases an allocation made by this heap, coalescing with free
    /// neighbours.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidFree`] if `payload` is not a live allocation
    /// (including double frees), [`HeapError::RetiredExtent`] if it
    /// lies inside a registered retired extent, or a propagated NVRAM
    /// error.
    pub fn free(&self, payload: POffset) -> Result<(), HeapError> {
        let start = payload
            .get()
            .checked_sub(BLOCK_HEADER_LEN)
            .ok_or(HeapError::InvalidFree {
                offset: payload.get(),
                reason: "offset precedes any possible block",
            })?;
        let mut inner = self.inner.lock();
        // Retired-generation guard: freeing retained recovery evidence
        // is a correctness bug, not an optimization — fail it loudly
        // here rather than silently and only catch it later in the
        // witness walk.
        if let Some((&ext_start, &ext_len)) = inner.retired.range(..=payload.get()).next_back() {
            if payload.get() < ext_start + ext_len {
                return Err(HeapError::RetiredExtent {
                    offset: payload.get(),
                    extent_start: ext_start,
                    extent_len: ext_len,
                });
            }
        }
        let blk = match inner.blocks.get(&start).copied() {
            Some(b) => b,
            None => {
                return Err(HeapError::InvalidFree {
                    offset: payload.get(),
                    reason: "offset is not the start of a block payload",
                })
            }
        };
        if !blk.used {
            return Err(HeapError::InvalidFree {
                offset: payload.get(),
                reason: "double free",
            });
        }

        write_header_word(&self.pmem, start, blk.size, false)?;
        inner.blocks.insert(
            start,
            Block {
                size: blk.size,
                used: false,
            },
        );

        // Absorb the next block if free.
        let mut cur_start = start;
        let mut cur_size = blk.size;
        let next = cur_start + cur_size;
        if let Some(nb) = inner.blocks.get(&next).copied() {
            if !nb.used {
                cur_size += nb.size;
                write_header_word(&self.pmem, cur_start, cur_size, false)?;
                inner.blocks.remove(&next);
                inner.blocks.insert(
                    cur_start,
                    Block {
                        size: cur_size,
                        used: false,
                    },
                );
            }
        }
        // Let a free predecessor absorb us.
        if let Some((&prev_start, &pb)) = inner.blocks.range(..cur_start).next_back() {
            if !pb.used && prev_start + pb.size == cur_start {
                let merged = pb.size + cur_size;
                write_header_word(&self.pmem, prev_start, merged, false)?;
                inner.blocks.remove(&cur_start);
                inner.blocks.insert(
                    prev_start,
                    Block {
                        size: merged,
                        used: false,
                    },
                );
                cur_start = prev_start;
                cur_size = merged;
            }
        }
        let _ = (cur_start, cur_size);
        Ok(())
    }

    /// Payload capacity in bytes of the allocation at `payload`.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidFree`] if `payload` is not a live allocation.
    pub fn payload_len(&self, payload: POffset) -> Result<u64, HeapError> {
        let start = payload.get().wrapping_sub(BLOCK_HEADER_LEN);
        let inner = self.inner.lock();
        match inner.blocks.get(&start) {
            Some(b) if b.used => Ok(b.size - BLOCK_HEADER_LEN),
            _ => Err(HeapError::InvalidFree {
                offset: payload.get(),
                reason: "offset is not a live allocation",
            }),
        }
    }

    /// Returns `true` if `off` lies within the heap's block area.
    #[must_use]
    pub fn contains(&self, off: POffset) -> bool {
        !off.is_null() && off.get() >= self.first_block && off.get() < self.end
    }

    /// Current usage summary.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        let inner = self.inner.lock();
        let mut s = HeapStats::default();
        for b in inner.blocks.values() {
            let payload = b.size - BLOCK_HEADER_LEN;
            if b.used {
                s.used_blocks += 1;
                s.used_payload_bytes += payload;
            } else {
                s.free_blocks += 1;
                s.free_payload_bytes += payload;
                s.largest_free_payload = s.largest_free_payload.max(payload);
            }
        }
        s
    }

    /// Validates that the persistent block headers parse cleanly, tile
    /// the heap exactly, and agree with the volatile mirror.
    ///
    /// # Errors
    ///
    /// [`HeapError::Corrupt`] describing the first mismatch found.
    pub fn check_consistency(&self) -> Result<(), HeapError> {
        let persistent = walk_blocks(&self.pmem, self.first_block, self.end)?;
        let inner = self.inner.lock();
        if persistent.len() != inner.blocks.len() {
            return Err(HeapError::Corrupt(format!(
                "persistent walk found {} blocks, volatile mirror has {}",
                persistent.len(),
                inner.blocks.len()
            )));
        }
        for (start, blk) in &persistent {
            match inner.blocks.get(start) {
                Some(v) if v == blk => {}
                other => {
                    return Err(HeapError::Corrupt(format!(
                        "block at {start:#x}: persistent {blk:?} vs volatile {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }
}

fn round16(v: u64) -> u64 {
    (v + 15) & !15
}

fn align_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

fn write_header(pmem: &PMem, start: u64, size: u64, used: bool) -> Result<(), HeapError> {
    let word0 = size | (u64::from(used) * USED_BIT);
    let mut hdr = [0u8; 16];
    hdr[..8].copy_from_slice(&word0.to_le_bytes());
    hdr[8..].copy_from_slice(&BLOCK_CANARY.to_le_bytes());
    pmem.write(POffset::new(start), &hdr)?;
    persist(pmem, POffset::new(start), 16)?;
    Ok(())
}

fn write_header_word(pmem: &PMem, start: u64, size: u64, used: bool) -> Result<(), HeapError> {
    let word0 = size | (u64::from(used) * USED_BIT);
    pmem.write_u64(POffset::new(start), word0)?;
    persist(pmem, POffset::new(start), 8)?;
    Ok(())
}

fn walk_blocks(pmem: &PMem, first_block: u64, end: u64) -> Result<BTreeMap<u64, Block>, HeapError> {
    let mut blocks = BTreeMap::new();
    let mut pos = first_block;
    while pos < end {
        let word0 = pmem.read_u64(POffset::new(pos))?;
        let canary = pmem.read_u64(POffset::new(pos + 8))?;
        if canary != BLOCK_CANARY {
            return Err(HeapError::Corrupt(format!(
                "bad canary {canary:#x} in block header at {pos:#x}"
            )));
        }
        let used = word0 & USED_BIT != 0;
        let size = word0 & !15;
        if size < MIN_BLOCK_LEN || pos + size > end {
            return Err(HeapError::Corrupt(format!(
                "block at {pos:#x} has invalid size {size}"
            )));
        }
        blocks.insert(pos, Block { size, used });
        pos += size;
    }
    if pos != end {
        return Err(HeapError::Corrupt(format!(
            "blocks overrun the heap end: walk stopped at {pos:#x}, end is {end:#x}"
        )));
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::PMemBuilder;

    fn heap(len: usize) -> (PMem, PHeap) {
        let pmem = PMemBuilder::new().len(len).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), len as u64).unwrap();
        (pmem, heap)
    }

    #[test]
    fn alloc_and_free_round_trip() {
        let (pmem, h) = heap(4096);
        let a = h.alloc(100).unwrap();
        pmem.write_u64(a, 7).unwrap();
        assert_eq!(pmem.read_u64(a).unwrap(), 7);
        assert!(h.payload_len(a).unwrap() >= 100);
        h.free(a).unwrap();
        h.check_consistency().unwrap();
    }

    #[test]
    fn freed_memory_is_reused() {
        let (_, h) = heap(4096);
        let a = h.alloc(64).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let (_, h) = heap(8192);
        let offs: Vec<POffset> = (0..8).map(|_| h.alloc(100).unwrap()).collect();
        for (i, a) in offs.iter().enumerate() {
            for b in offs.iter().skip(i + 1) {
                let (lo, hi) = if a.get() < b.get() { (a, b) } else { (b, a) };
                assert!(lo.get() + 100 <= hi.get() - BLOCK_HEADER_LEN + 16);
                assert!(lo.get() + 112 <= hi.get());
            }
        }
        h.check_consistency().unwrap();
    }

    #[test]
    fn coalescing_restores_one_big_block() {
        let (_, h) = heap(4096);
        let initial = h.stats();
        assert_eq!(initial.free_blocks, 1);
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        let c = h.alloc(64).unwrap();
        // Free in an order that exercises next-absorb, prev-absorb and both.
        h.free(b).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        let s = h.stats();
        assert_eq!(s.free_blocks, 1, "all fragments should coalesce: {s:?}");
        assert_eq!(s.free_payload_bytes, initial.free_payload_bytes);
        h.check_consistency().unwrap();
    }

    #[test]
    fn aligned_allocation_is_aligned() {
        let (_, h) = heap(16 * 1024);
        for align in [16u64, 32, 64, 128] {
            let a = h.alloc_aligned(48, align).unwrap();
            assert!(a.is_aligned(align), "offset {a} not aligned to {align}");
        }
        h.check_consistency().unwrap();
    }

    #[test]
    fn aligned_allocation_front_padding_stays_free() {
        let (_, h) = heap(16 * 1024);
        let _guard = h.alloc(16).unwrap(); // misalign the free space
        let a = h.alloc_aligned(64, 128).unwrap();
        assert!(a.is_aligned(128));
        h.check_consistency().unwrap();
        // The front padding must be allocatable.
        let small = h.alloc(16).unwrap();
        assert!(small.get() < a.get());
    }

    #[test]
    fn out_of_memory_is_reported() {
        let (_, h) = heap(256);
        assert!(matches!(
            h.alloc(10_000),
            Err(HeapError::OutOfMemory { requested: 10_000 })
        ));
    }

    #[test]
    fn exhaustion_then_free_then_alloc() {
        let (_, h) = heap(1024);
        let mut offs = Vec::new();
        while let Ok(o) = h.alloc(48) {
            offs.push(o);
        }
        assert!(!offs.is_empty());
        for o in offs {
            h.free(o).unwrap();
        }
        let s = h.stats();
        assert_eq!(s.free_blocks, 1);
        assert!(h.alloc(s.largest_free_payload as usize).is_ok());
    }

    #[test]
    fn double_free_is_rejected() {
        let (_, h) = heap(4096);
        let a = h.alloc(32).unwrap();
        h.free(a).unwrap();
        assert!(matches!(h.free(a), Err(HeapError::InvalidFree { .. })));
    }

    #[test]
    fn bogus_free_is_rejected() {
        let (_, h) = heap(4096);
        let _a = h.alloc(32).unwrap();
        assert!(matches!(
            h.free(POffset::new(40)),
            Err(HeapError::InvalidFree { .. })
        ));
        assert!(matches!(
            h.free(POffset::new(4)),
            Err(HeapError::InvalidFree { .. })
        ));
    }

    #[test]
    fn free_inside_a_retired_extent_is_rejected() {
        // Negative control for the retired-generation guard: a block
        // registered as retained recovery evidence must refuse `free` —
        // at its start, in its middle, and after re-registration —
        // while unrelated blocks stay freeable.
        let (_, h) = heap(8192);
        let retired = h.alloc(256).unwrap();
        let live = h.alloc(64).unwrap();
        h.register_retired_extent(retired, 256);
        assert!(matches!(
            h.free(retired),
            Err(HeapError::RetiredExtent {
                offset,
                extent_start,
                extent_len: 256,
            }) if offset == retired.get() && extent_start == retired.get()
        ));
        // An extent *inside* the retired range (e.g. a bogus pointer
        // into the block) is shed by the same guard, before the
        // block-table lookup can misread it.
        assert!(matches!(
            h.free(retired + 128u64),
            Err(HeapError::RetiredExtent { .. })
        ));
        // Double registration is idempotent; unrelated frees still work.
        h.register_retired_extent(retired, 256);
        assert_eq!(h.retired_extents(), vec![(retired.get(), 256)]);
        h.free(live).unwrap();
        h.check_consistency().unwrap();
    }

    #[test]
    fn alloc_zeroed_is_zero_and_durable() {
        let (pmem, h) = heap(4096);
        let a = h.alloc(64).unwrap();
        pmem.write(a, &[0xFFu8; 64]).unwrap();
        pmem.flush(a, 64).unwrap();
        h.free(a).unwrap();
        let b = h.alloc_zeroed(64).unwrap();
        assert_eq!(b, a, "should reuse the dirtied block");
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        assert_eq!(pmem2.read_vec(b, 64).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn open_rebuilds_the_same_view() {
        let (pmem, h) = heap(4096);
        let a = h.alloc(100).unwrap();
        let _b = h.alloc(200).unwrap();
        h.free(a).unwrap();
        let before = h.stats();
        pmem.crash_now(0, 1.0); // keep everything: metadata flushes are eager
        let pmem2 = pmem.reopen().unwrap();
        let h2 = PHeap::open(pmem2, POffset::new(0)).unwrap();
        assert_eq!(h2.stats(), before);
        h2.check_consistency().unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let pmem = PMemBuilder::new().len(1024).build_in_memory();
        assert!(matches!(
            PHeap::open(pmem, POffset::new(0)),
            Err(HeapError::Corrupt(_))
        ));
    }

    #[test]
    fn format_rejects_tiny_ranges() {
        let pmem = PMemBuilder::new().len(64).build_in_memory();
        assert!(matches!(
            PHeap::format(pmem, POffset::new(0), 40),
            Err(HeapError::InvalidConfig(_))
        ));
    }

    #[test]
    fn allocations_survive_crash_and_reopen() {
        let (pmem, h) = heap(4096);
        let a = h.alloc(64).unwrap();
        pmem.write_u64(a, 4242).unwrap();
        pmem.flush(a, 8).unwrap();
        pmem.crash_now(0, 0.0); // metadata was flushed synchronously
        let pmem2 = pmem.reopen().unwrap();
        let h2 = PHeap::open(pmem2.clone(), POffset::new(0)).unwrap();
        assert_eq!(pmem2.read_u64(a).unwrap(), 4242);
        // The block is still allocated after recovery; freeing works.
        assert!(h2.payload_len(a).unwrap() >= 64);
        h2.free(a).unwrap();
        h2.check_consistency().unwrap();
    }

    #[test]
    fn crash_point_enumeration_alloc_free_never_corrupts() {
        // Count persistence events for one alloc+free, then crash before
        // each event in turn and verify the heap always reopens cleanly.
        let probe = || {
            let (pmem, h) = heap(2048);
            let warm = h.alloc(40).unwrap(); // stable starting shape
            (pmem, h, warm)
        };
        let (pmem, h, warm) = probe();
        let e0 = pmem.events();
        let x = h.alloc(100).unwrap();
        h.free(x).unwrap();
        h.free(warm).unwrap();
        let total_events = pmem.events() - e0;
        assert!(total_events > 0);

        for k in 0..total_events {
            let (pmem, h, warm) = probe();
            pmem.arm_failpoint(pstack_nvram::FailPlan::after_events(k));
            let r = (|| -> Result<(), HeapError> {
                let x = h.alloc(100)?;
                h.free(x)?;
                h.free(warm)?;
                Ok(())
            })();
            assert!(r.is_err(), "crash at event {k} should interrupt");
            pmem.crash_now(k, 0.5);
            let pmem2 = pmem.reopen().unwrap();
            let h2 = PHeap::open(pmem2, POffset::new(0))
                .unwrap_or_else(|e| panic!("reopen failed after crash at event {k}: {e}"));
            h2.check_consistency()
                .unwrap_or_else(|e| panic!("inconsistent after crash at event {k}: {e}"));
            // The heap must still be able to allocate.
            h2.alloc(32).unwrap();
        }
    }

    #[test]
    fn stats_track_usage() {
        let (_, h) = heap(4096);
        let s0 = h.stats();
        assert_eq!(s0.used_blocks, 0);
        let a = h.alloc(100).unwrap();
        let s1 = h.stats();
        assert_eq!(s1.used_blocks, 1);
        assert!(s1.used_payload_bytes >= 100);
        assert!(s1.free_payload_bytes < s0.free_payload_bytes);
        h.free(a).unwrap();
        assert_eq!(h.stats(), s0);
    }

    #[test]
    fn payload_len_errors_on_stale_offset() {
        let (_, h) = heap(4096);
        let a = h.alloc(32).unwrap();
        h.free(a).unwrap();
        assert!(h.payload_len(a).is_err());
    }

    #[test]
    fn contains_checks_range() {
        let (_, h) = heap(4096);
        let a = h.alloc(32).unwrap();
        assert!(h.contains(a));
        assert!(!h.contains(POffset::new(1 << 40)));
        assert!(!h.contains(POffset::NULL));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use pstack_nvram::PMemBuilder;

    #[derive(Debug, Clone)]
    enum Op {
        Alloc(usize),
        Free(usize), // index into live allocations, modulo
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1usize..200).prop_map(Op::Alloc),
            (0usize..16).prop_map(Op::Free),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random alloc/free interleavings keep the heap consistent,
        /// never hand out overlapping blocks, and survive reopen.
        #[test]
        fn random_alloc_free_is_consistent(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let pmem = PMemBuilder::new().len(16 * 1024).build_in_memory();
            let h = PHeap::format(pmem.clone(), POffset::new(0), 16 * 1024).unwrap();
            let mut live: Vec<(POffset, usize)> = Vec::new();
            for op in ops {
                match op {
                    Op::Alloc(n) => {
                        if let Ok(o) = h.alloc(n) {
                            // Overlap check against all live blocks.
                            for (other, m) in &live {
                                let a0 = o.get();
                                let a1 = a0 + n as u64;
                                let b0 = other.get();
                                let b1 = b0 + *m as u64;
                                prop_assert!(a1 <= b0 || b1 <= a0,
                                    "overlap: [{a0:#x},{a1:#x}) vs [{b0:#x},{b1:#x})");
                            }
                            live.push((o, n));
                        }
                    }
                    Op::Free(i) => {
                        if !live.is_empty() {
                            let (o, _) = live.swap_remove(i % live.len());
                            h.free(o).unwrap();
                        }
                    }
                }
                h.check_consistency().unwrap();
            }
            // Survives a clean crash/reopen with all metadata intact.
            pmem.crash_now(1, 0.0);
            let pmem2 = pmem.reopen().unwrap();
            let h2 = PHeap::open(pmem2, POffset::new(0)).unwrap();
            h2.check_consistency().unwrap();
            for (o, _) in &live {
                h2.free(*o).unwrap();
            }
            prop_assert_eq!(h2.stats().used_blocks, 0);
            prop_assert_eq!(h2.stats().free_blocks, 1);
        }
    }
}
