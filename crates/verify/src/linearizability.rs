//! Linearizability checking for small timed histories.
//!
//! The paper leaves open whether CAS executions can be verified for
//! linearizability in polynomial time (future work, direction 2). As a
//! practical extension we provide the classic Wing–Gong style decision
//! procedure: a DFS over "which operations have linearized so far",
//! memoized on (operation set, register value). Worst-case exponential,
//! fine for the small histories used in tests — and it cross-validates
//! the serializability checker, since every linearizable history is
//! serializable.
//!
//! Real-time order: if `a.returned < b.invoked` then `a` must linearize
//! before `b`. An operation may linearize next iff every *earlier-
//! returning* unlinearized operation overlaps it.

use std::collections::HashSet;

use crate::history::TimedHistory;

/// Result of [`check_linearizability`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinVerdict {
    /// A legal linearization order exists (operation indices).
    Linearizable {
        /// Operation indices in linearization order.
        order: Vec<usize>,
    },
    /// No linearization order exists.
    NotLinearizable,
}

impl LinVerdict {
    /// `true` for the linearizable verdict.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        matches!(self, LinVerdict::Linearizable { .. })
    }
}

/// Decides linearizability of a timed CAS history (≤ 63 operations).
///
/// # Panics
///
/// Panics if the history has more than 63 operations (state is a
/// bitmask) or an operation interval is inverted.
///
/// # Example
///
/// ```
/// use pstack_verify::{check_linearizability, CasOp, TimedHistory, TimedOp};
///
/// let h = TimedHistory::new(0, vec![
///     TimedOp { op: CasOp { pid: 0, old: 0, new: 1, success: true }, invoked: 1, returned: 2 },
///     TimedOp { op: CasOp { pid: 1, old: 1, new: 2, success: true }, invoked: 3, returned: 4 },
/// ]);
/// assert!(check_linearizability(&h).is_linearizable());
/// ```
#[must_use]
pub fn check_linearizability(history: &TimedHistory) -> LinVerdict {
    let n = history.ops.len();
    assert!(n <= 63, "bitmask state limits the checker to 63 operations");
    for t in &history.ops {
        assert!(t.invoked < t.returned, "operation interval is inverted");
    }

    let mut memo: HashSet<(u64, i64)> = HashSet::new();
    let mut order = Vec::with_capacity(n);
    if dfs(history, 0, history.init, &mut memo, &mut order) {
        LinVerdict::Linearizable { order }
    } else {
        LinVerdict::NotLinearizable
    }
}

fn dfs(
    history: &TimedHistory,
    done: u64,
    register: i64,
    memo: &mut HashSet<(u64, i64)>,
    order: &mut Vec<usize>,
) -> bool {
    let n = history.ops.len();
    if done == (1u64 << n) - 1 {
        return true;
    }
    if !memo.insert((done, register)) {
        return false;
    }
    // The earliest return among unlinearized ops bounds what may go
    // next: an op invoked after that return would violate real time.
    let min_ret = (0..n)
        .filter(|i| done & (1 << i) == 0)
        .map(|i| history.ops[i].returned)
        .min()
        .expect("not all done");
    for i in 0..n {
        if done & (1 << i) != 0 {
            continue;
        }
        let t = &history.ops[i];
        if t.invoked > min_ret {
            continue;
        }
        let op = t.op;
        let next_register = if op.success {
            if register != op.old {
                continue;
            }
            op.new
        } else {
            if register == op.old {
                continue;
            }
            register
        };
        order.push(i);
        if dfs(history, done | (1 << i), next_register, memo, order) {
            return true;
        }
        order.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{CasOp, TimedOp};
    use crate::serializability::check_serializability;

    fn timed(old: i64, new: i64, success: bool, invoked: u64, returned: u64) -> TimedOp {
        TimedOp {
            op: CasOp {
                pid: 0,
                old,
                new,
                success,
            },
            invoked,
            returned,
        }
    }

    #[test]
    fn sequential_chain_linearizes() {
        let h = TimedHistory::new(0, vec![timed(0, 1, true, 1, 2), timed(1, 2, true, 3, 4)]);
        match check_linearizability(&h) {
            LinVerdict::Linearizable { order } => assert_eq!(order, vec![0, 1]),
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Op 0 (CAS 1→2) returns before op 1 (CAS 0→1) is invoked, so
        // op 0 must linearize first — but then it cannot succeed on
        // register 0. Serializable (reverse order), yet NOT linearizable.
        let h = TimedHistory::new(0, vec![timed(1, 2, true, 1, 2), timed(0, 1, true, 5, 6)]);
        assert_eq!(check_linearizability(&h), LinVerdict::NotLinearizable);
        assert!(check_serializability(&h.untimed(2)).is_serializable());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // Same ops, but overlapping in real time: now the checker may
        // pick the value-respecting order.
        let h = TimedHistory::new(0, vec![timed(1, 2, true, 1, 10), timed(0, 1, true, 2, 9)]);
        match check_linearizability(&h) {
            LinVerdict::Linearizable { order } => assert_eq!(order, vec![1, 0]),
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn failed_op_constrains_placement() {
        // Failed CAS(0→9) entirely after the only transition away from
        // 0 — fine. Entirely before it — impossible.
        let ok = TimedHistory::new(0, vec![timed(0, 1, true, 1, 2), timed(0, 9, false, 3, 4)]);
        assert!(check_linearizability(&ok).is_linearizable());
        let bad = TimedHistory::new(0, vec![timed(0, 9, false, 1, 2), timed(0, 1, true, 3, 4)]);
        assert_eq!(check_linearizability(&bad), LinVerdict::NotLinearizable);
    }

    #[test]
    fn double_application_is_not_linearizable() {
        let h = TimedHistory::new(0, vec![timed(0, 5, true, 1, 2), timed(0, 5, true, 3, 4)]);
        assert_eq!(check_linearizability(&h), LinVerdict::NotLinearizable);
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = TimedHistory::new(7, vec![]);
        assert!(check_linearizability(&h).is_linearizable());
    }

    #[test]
    fn linearizable_implies_serializable_on_samples() {
        // A few concurrent shapes; whenever linearizable, the untimed
        // view must be serializable with the implied final value.
        let shapes = vec![
            TimedHistory::new(
                0,
                vec![
                    timed(0, 1, true, 1, 4),
                    timed(1, 2, true, 2, 6),
                    timed(9, 9, false, 3, 5),
                ],
            ),
            TimedHistory::new(
                5,
                vec![
                    timed(5, 5, true, 1, 3),
                    timed(4, 1, false, 2, 4),
                    timed(5, 0, true, 3, 7),
                ],
            ),
        ];
        for h in shapes {
            if let LinVerdict::Linearizable { order } = check_linearizability(&h) {
                // Compute the final value by replaying the order.
                let mut reg = h.init;
                for &i in &order {
                    let op = h.ops[i].op;
                    if op.success {
                        reg = op.new;
                    }
                }
                assert!(
                    check_serializability(&h.untimed(reg)).is_serializable(),
                    "linearizable but not serializable: {h:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        let h = TimedHistory::new(0, vec![timed(0, 1, true, 5, 2)]);
        let _ = check_linearizability(&h);
    }
}
