//! Independent replay of a serialization witness.
//!
//! The checker's positive verdicts come with a full serial order;
//! replaying that order against simple register semantics gives an
//! independent proof that the verdict is sound (and a great test
//! oracle for the checker itself).

use crate::history::CasHistory;

/// Why a witness failed to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// The order does not mention every operation exactly once.
    NotAPermutation,
    /// A successful op found the register holding a different value.
    SuccessfulOpBlocked {
        /// Index of the operation in the history.
        index: usize,
        /// Register value at its position in the witness.
        register: i64,
    },
    /// A failed op found the register holding exactly its expected
    /// value (it would have succeeded).
    FailedOpWouldSucceed {
        /// Index of the operation in the history.
        index: usize,
    },
    /// The register ends at a different value than the history reports.
    WrongFinalValue {
        /// Register value after the replay.
        replayed: i64,
        /// Final value the history reports.
        reported: i64,
    },
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::NotAPermutation => {
                write!(f, "witness order is not a permutation of the operations")
            }
            WitnessError::SuccessfulOpBlocked { index, register } => write!(
                f,
                "successful op #{index} replayed against register value {register}"
            ),
            WitnessError::FailedOpWouldSucceed { index } => {
                write!(
                    f,
                    "failed op #{index} replayed at a moment it would succeed"
                )
            }
            WitnessError::WrongFinalValue { replayed, reported } => {
                write!(f, "replay ends at {replayed}, history reports {reported}")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// Replays `order` (operation indices) against sequential CAS
/// semantics, verifying every answer and the final value.
///
/// # Errors
///
/// The first [`WitnessError`] encountered.
///
/// # Example
///
/// ```
/// use pstack_verify::{check_serializability, replay_witness, CasHistory, CasOp, SerialVerdict};
///
/// let h = CasHistory::new(0, 1, vec![CasOp { pid: 0, old: 0, new: 1, success: true }]);
/// let SerialVerdict::Serializable { order } = check_serializability(&h) else { panic!() };
/// replay_witness(&h, &order).unwrap();
/// ```
pub fn replay_witness(history: &CasHistory, order: &[usize]) -> Result<(), WitnessError> {
    if order.len() != history.ops.len() {
        return Err(WitnessError::NotAPermutation);
    }
    let mut seen = vec![false; history.ops.len()];
    for &i in order {
        if i >= seen.len() || seen[i] {
            return Err(WitnessError::NotAPermutation);
        }
        seen[i] = true;
    }

    let mut register = history.init;
    for &i in order {
        let op = &history.ops[i];
        if op.success {
            if register != op.old {
                return Err(WitnessError::SuccessfulOpBlocked { index: i, register });
            }
            register = op.new;
        } else if register == op.old {
            return Err(WitnessError::FailedOpWouldSucceed { index: i });
        }
    }
    if register != history.final_value {
        return Err(WitnessError::WrongFinalValue {
            replayed: register,
            reported: history.final_value,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::CasOp;
    use crate::serializability::{check_serializability, SerialVerdict};

    fn op(old: i64, new: i64, success: bool) -> CasOp {
        CasOp {
            pid: 0,
            old,
            new,
            success,
        }
    }

    #[test]
    fn valid_witness_replays() {
        let h = CasHistory::new(0, 2, vec![op(0, 1, true), op(1, 2, true)]);
        replay_witness(&h, &[0, 1]).unwrap();
    }

    #[test]
    fn wrong_order_is_rejected() {
        let h = CasHistory::new(0, 2, vec![op(0, 1, true), op(1, 2, true)]);
        assert_eq!(
            replay_witness(&h, &[1, 0]),
            Err(WitnessError::SuccessfulOpBlocked {
                index: 1,
                register: 0
            })
        );
    }

    #[test]
    fn non_permutations_are_rejected() {
        let h = CasHistory::new(0, 1, vec![op(0, 1, true)]);
        assert_eq!(replay_witness(&h, &[]), Err(WitnessError::NotAPermutation));
        assert_eq!(replay_witness(&h, &[5]), Err(WitnessError::NotAPermutation));
        let h2 = CasHistory::new(0, 1, vec![op(0, 1, true), op(9, 9, false)]);
        assert_eq!(
            replay_witness(&h2, &[0, 0]),
            Err(WitnessError::NotAPermutation)
        );
    }

    #[test]
    fn failed_op_at_wrong_moment_is_rejected() {
        let h = CasHistory::new(0, 1, vec![op(0, 1, true), op(0, 9, false)]);
        // Placing the failed CAS(0→9) before the transition (register
        // still 0) is wrong; after, it is fine.
        assert_eq!(
            replay_witness(&h, &[1, 0]),
            Err(WitnessError::FailedOpWouldSucceed { index: 1 })
        );
        replay_witness(&h, &[0, 1]).unwrap();
    }

    #[test]
    fn final_value_mismatch_is_rejected() {
        let h = CasHistory::new(0, 7, vec![op(0, 1, true)]);
        assert_eq!(
            replay_witness(&h, &[0]),
            Err(WitnessError::WrongFinalValue {
                replayed: 1,
                reported: 7
            })
        );
    }

    #[test]
    fn checker_witnesses_always_replay() {
        // Round-trip on a batch of serializable histories.
        let histories = vec![
            CasHistory::new(0, 0, vec![]),
            CasHistory::new(0, 3, vec![op(0, 1, true), op(1, 2, true), op(2, 3, true)]),
            CasHistory::new(
                1,
                2,
                vec![
                    op(1, 2, true),
                    op(1, 2, true),
                    op(2, 1, true),
                    op(9, 0, false),
                ],
            ),
            CasHistory::new(5, 5, vec![op(5, 5, true), op(4, 5, false)]),
        ];
        for h in histories {
            match check_serializability(&h) {
                SerialVerdict::Serializable { order } => {
                    replay_witness(&h, &order)
                        .unwrap_or_else(|e| panic!("witness failed for {h:?}: {e}"));
                }
                other => panic!("expected serializable for {h:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_display() {
        assert!(!WitnessError::NotAPermutation.to_string().is_empty());
    }
}
