//! Execution records handed to the verifiers.

use std::fmt;

/// One `CAS(old → new)` operation and its answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CasOp {
    /// Executing process id (informational; serializability ignores it).
    pub pid: usize,
    /// Expected value.
    pub old: i64,
    /// Replacement value.
    pub new: i64,
    /// Whether the operation reported success.
    pub success: bool,
}

impl fmt::Display for CasOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p{}: CAS({} -> {}) = {}",
            self.pid, self.old, self.new, self.success
        )
    }
}

/// A complete execution on one register: everything §5.1 needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasHistory {
    /// Register value before any operation.
    pub init: i64,
    /// Register value read after all operations completed.
    pub final_value: i64,
    /// Every operation with its answer.
    pub ops: Vec<CasOp>,
}

impl CasHistory {
    /// Builds a history.
    #[must_use]
    pub fn new(init: i64, final_value: i64, ops: Vec<CasOp>) -> Self {
        CasHistory {
            init,
            final_value,
            ops,
        }
    }

    /// Indices of the successful operations.
    #[must_use]
    pub fn successful(&self) -> Vec<usize> {
        (0..self.ops.len())
            .filter(|&i| self.ops[i].success)
            .collect()
    }

    /// Indices of the failed operations.
    #[must_use]
    pub fn failed(&self) -> Vec<usize> {
        (0..self.ops.len())
            .filter(|&i| !self.ops[i].success)
            .collect()
    }
}

/// A [`CasOp`] with its real-time interval, for linearizability
/// checking. Timestamps come from a monotonic global counter; the
/// operation was in flight from `invoked` to `returned`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOp {
    /// The operation and its answer.
    pub op: CasOp,
    /// Invocation timestamp.
    pub invoked: u64,
    /// Response timestamp (must be `> invoked`).
    pub returned: u64,
}

/// A timed execution for the linearizability checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedHistory {
    /// Register value before any operation.
    pub init: i64,
    /// Every operation with its interval.
    pub ops: Vec<TimedOp>,
}

impl TimedHistory {
    /// Builds a timed history.
    #[must_use]
    pub fn new(init: i64, ops: Vec<TimedOp>) -> Self {
        TimedHistory { init, ops }
    }

    /// Drops the timing information, producing the serializability view
    /// (the final value must be supplied: a linearizability history
    /// does not record a terminal read).
    #[must_use]
    pub fn untimed(&self, final_value: i64) -> CasHistory {
        CasHistory {
            init: self.init,
            final_value,
            ops: self.ops.iter().map(|t| t.op).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_and_failed_partition() {
        let h = CasHistory::new(
            0,
            1,
            vec![
                CasOp {
                    pid: 0,
                    old: 0,
                    new: 1,
                    success: true,
                },
                CasOp {
                    pid: 1,
                    old: 5,
                    new: 6,
                    success: false,
                },
            ],
        );
        assert_eq!(h.successful(), vec![0]);
        assert_eq!(h.failed(), vec![1]);
    }

    #[test]
    fn display_mentions_operands() {
        let op = CasOp {
            pid: 2,
            old: 1,
            new: 3,
            success: true,
        };
        let s = op.to_string();
        assert!(s.contains("p2"));
        assert!(s.contains("1 -> 3"));
    }

    #[test]
    fn untimed_preserves_ops() {
        let t = TimedHistory::new(
            0,
            vec![TimedOp {
                op: CasOp {
                    pid: 0,
                    old: 0,
                    new: 1,
                    success: true,
                },
                invoked: 1,
                returned: 2,
            }],
        );
        let h = t.untimed(1);
        assert_eq!(h.ops.len(), 1);
        assert_eq!(h.final_value, 1);
        assert_eq!(h.init, 0);
    }
}
