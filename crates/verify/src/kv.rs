//! KV verifier — the key-value analogue of the §5.1 methodology, built
//! the same way as the FIFO checker: instead of searching for a legal
//! linearization (NP-hard from answers alone), extract the
//! linearization **witness** from the object itself and validate every
//! recorded answer against it in linear time.
//!
//! The `pstack-kv` store never overwrites an effect: each mutation
//! publishes an immutable version record by CASing a bucket's chain
//! head, so a bucket chain in publish order *is* the real-time order of
//! the linearization points of every mutation on that bucket's keys.
//! [`check_kv`] replays each chain, oldest record first, against the
//! sequential map specification [`KvSpec`] and checks:
//!
//! * every record belongs to exactly one operation of the history, with
//!   matching key, kind and value (no phantom or torn records);
//! * no operation's tag appears on two records (double application —
//!   the §5.2 recovery-bug signature);
//! * every answered effectful operation (`put → stored`,
//!   `delete → true`, `cas → true`) owns exactly one record (no lost
//!   updates), and every answered no-effect operation (`cas → false`,
//!   `delete → false`, capacity-rejected `put`) owns none;
//! * at each record's position in the replay, the sequential spec
//!   agrees the operation takes effect there — a `cas` record's
//!   expected value matches the key's current value, a `delete` record
//!   removes a present key;
//! * every `get` that returned a value is explained by some version of
//!   its key (gets take no locks and leave no evidence, so — like the
//!   per-process program order in the FIFO checker's note — their exact
//!   linearization point is not reconstructable from the quiescent
//!   state; value membership is the checkable projection).
//!
//! Chains may span **generation boundaries** (the store's log
//! compaction rewrites live heads into a fresh generation and swaps
//! the root): records carry a generation stamp and a `compacted` flag,
//! and the generation-aware entry points ([`check_kv_gen`],
//! [`check_kv_sharded_gen`]) additionally validate that every
//! carry-over reproduces exactly the live state at its boundary, that
//! generation stamps are monotone, and that no live key was dropped by
//! a swap (its newest record must sit in the active generation). The
//! plain entry points infer each scope's active generation from the
//! records — sufficient for uncompacted stores, fooled by a
//! drop-everything compaction, so campaigns pass the store's real
//! generation numbers.

use std::collections::{HashMap, HashSet};

/// The kind of a KV operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOpKind {
    /// `put(key, value)`.
    Put,
    /// `get(key)`.
    Get,
    /// `delete(key)`.
    Delete,
    /// `cas(key, expected, new)`.
    Cas,
}

/// The recorded answer of a KV operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvAnswer {
    /// A put's answer: `true` if stored, `false` if the store's
    /// lifetime version-log capacity was exhausted.
    Stored(bool),
    /// A get's answer.
    Got(Option<i64>),
    /// A delete's answer: `true` if the key was present.
    Deleted(bool),
    /// A cas's answer: `true` if the expected value matched.
    Swapped(bool),
}

/// One operation of a KV execution, with its recorded answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvOp {
    /// Executing process.
    pub pid: u64,
    /// The operation's unique tag (unique per `(pid, seq)` pair).
    pub seq: u64,
    /// Which operation this is.
    pub kind: KvOpKind,
    /// The key operated on.
    pub key: u64,
    /// The put value / cas replacement value (ignored for get/delete).
    pub value: i64,
    /// The cas expected value (ignored for the other kinds).
    pub expected: i64,
    /// The recorded answer.
    pub answer: KvAnswer,
}

/// One published version record of the quiescent store, as reported by
/// the store's snapshot: the witness the answers are checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvWitnessRecord {
    /// The key the record belongs to.
    pub key: u64,
    /// The value stored (for a delete record: the value removed).
    pub value: i64,
    /// Writer's process id.
    pub pid: u64,
    /// Writer's operation tag.
    pub seq: u64,
    /// `true` for a delete record.
    pub is_delete: bool,
    /// `true` for a compaction carry-over — a copy (original tag
    /// preserved) of a record that was live at a generation boundary,
    /// **not** a new application of its operation. The checker
    /// validates it reproduces exactly the live state at its position
    /// in the chain.
    pub compacted: bool,
    /// The generation whose log holds the record. A chain that spans a
    /// generation boundary carries non-decreasing `gen` values; the
    /// newest record of every live key must sit in the active
    /// generation, or compaction dropped the key.
    pub gen: u64,
}

/// A complete KV execution: every operation with its answer, plus the
/// per-bucket chain witness (each chain oldest record first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvHistory {
    /// All operations, in any order.
    pub ops: Vec<KvOp>,
    /// Per-bucket published chains, each oldest record first.
    pub chains: Vec<Vec<KvWitnessRecord>>,
}

/// A complete **sharded** KV execution: every operation with its
/// answer, plus one per-bucket chain witness per shard
/// (`shards[s][b]` = shard `s`'s bucket `b`, oldest record first).
///
/// Checked by [`check_kv_sharded`]: each shard's chains are a local
/// linearization witness, keys are disjoint across shards (the router
/// is a pure function of the key), and operation tags are global — so
/// the global check is the per-shard replay plus cross-shard tag
/// uniqueness plus key-routing validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvShardedHistory {
    /// All operations across every shard, in any order.
    pub ops: Vec<KvOp>,
    /// Per-shard, per-bucket published chains.
    pub shards: Vec<Vec<Vec<KvWitnessRecord>>>,
}

/// The sequential specification of the store: an ordinary map with the
/// exact answer semantics `PKvStore` promises. The checker replays the
/// witness through this model; tests can use it as a reference
/// implementation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvSpec {
    map: HashMap<u64, i64>,
}

impl KvSpec {
    /// An empty map — the store's initial state.
    #[must_use]
    pub fn new() -> Self {
        KvSpec::default()
    }

    /// Sequential `put`: always stores (the spec has no capacity).
    pub fn put(&mut self, key: u64, value: i64) -> bool {
        self.map.insert(key, value);
        true
    }

    /// Sequential `get`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<i64> {
        self.map.get(&key).copied()
    }

    /// Sequential `delete`: `true` iff the key was present.
    pub fn delete(&mut self, key: u64) -> bool {
        self.map.remove(&key).is_some()
    }

    /// Sequential `cas`: replaces and returns `true` iff the key holds
    /// exactly `expected`.
    pub fn cas(&mut self, key: u64, expected: i64, new: i64) -> bool {
        if self.map.get(&key) == Some(&expected) {
            self.map.insert(key, new);
            true
        } else {
            false
        }
    }

    /// The spec's current contents.
    #[must_use]
    pub fn contents(&self) -> &HashMap<u64, i64> {
        &self.map
    }
}

/// Why a KV execution failed the check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvViolation {
    /// An operation's tag appears on more than one record (double
    /// application).
    DuplicateApplication {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A record is owned by a tag no operation in the history owns.
    PhantomRecord {
        /// The unaccounted `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A record's key differs from its operation's key.
    KeyMismatch {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// Key in the record.
        record_key: u64,
        /// Key the operation submitted.
        op_key: u64,
    },
    /// A record's kind cannot result from its operation (e.g. a delete
    /// record owned by a put).
    WrongRecordKind {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A put/cas record's value differs from what the operation
    /// submitted.
    ValueMismatch {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// Value in the record.
        record_value: i64,
        /// Value the operation submitted.
        op_value: i64,
    },
    /// A cas record took effect although the key did not hold the
    /// expected value at that point of the chain.
    CasExpectationViolated {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// The value the operation expected.
        expected: i64,
        /// The value the key actually held (`None` = absent).
        found: Option<i64>,
    },
    /// A delete record took effect although the key was absent at that
    /// point of the chain.
    DeleteOfAbsentKey {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A delete record's value differs from the value the key held at
    /// that point of the chain (torn or misattributed record).
    DeletedValueMismatch {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// Value in the record.
        record_value: i64,
        /// Value the key actually held.
        held: i64,
    },
    /// An answered effectful operation owns no record (lost update).
    LostUpdate {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// An operation that answered "no effect" nevertheless owns a
    /// record.
    RejectedButApplied {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A get returned a value that no version of its key ever held.
    UnexplainedGet {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// The value the get reported.
        reported: i64,
    },
    /// A record landed in a shard the router does not map its key to —
    /// the striping invariant (each key lives in exactly one shard) is
    /// broken, so per-key chain order no longer witnesses the global
    /// per-key linearization order.
    MisroutedKey {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// The key the record carries.
        key: u64,
        /// The shard the record was found in.
        shard: usize,
        /// The shard the router maps the key to.
        home: usize,
    },
    /// A delete record is marked as a compaction carry-over — the
    /// compactor only ever carries live values; a carried delete means
    /// the rewrite invented history.
    CarriedDelete {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A carry-over's tag was never applied earlier in the replay: the
    /// compactor "carried" a record that no generation ever published.
    CarriedWithoutOrigin {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A carry-over disagrees with the live state at its generation
    /// boundary: the key did not hold the carried value there (or was
    /// not live at all), so the rewrite corrupted or invented state.
    CarriedValueMismatch {
        /// The carried record's `(pid, seq)` tag.
        tag: (u64, u64),
        /// The key in question.
        key: u64,
        /// The value the carry-over claims.
        carried: i64,
        /// The value the key actually held at the boundary (`None` =
        /// absent).
        held: Option<i64>,
    },
    /// A live key's newest record sits in an older generation than the
    /// active one: a compaction swapped the root without carrying the
    /// key — the update silently vanished from the live store even
    /// though its history survives in a retired generation.
    DroppedByCompaction {
        /// The tag of the key's newest record.
        tag: (u64, u64),
        /// The dropped key.
        key: u64,
        /// The generation holding the key's newest record.
        last_gen: u64,
        /// The active generation the key should have been carried into.
        active_gen: u64,
    },
    /// A chain's generation stamps are inconsistent: a record's
    /// generation decreases along the chain, or exceeds the active
    /// generation — the witness is not a valid multi-generation chain.
    GenerationOutOfOrder {
        /// The offending record's `(pid, seq)` tag.
        tag: (u64, u64),
        /// The record's generation stamp.
        gen: u64,
        /// The previous record's generation stamp.
        prev_gen: u64,
        /// The chain's active generation.
        active_gen: u64,
    },
}

impl std::fmt::Display for KvViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvViolation::DuplicateApplication { tag } => {
                write!(f, "operation {tag:?} applied more than once")
            }
            KvViolation::PhantomRecord { tag } => {
                write!(f, "record owned by unknown operation tag {tag:?}")
            }
            KvViolation::KeyMismatch {
                tag,
                record_key,
                op_key,
            } => write!(
                f,
                "operation {tag:?} on key {op_key} left a record on key {record_key}"
            ),
            KvViolation::WrongRecordKind { tag } => {
                write!(f, "operation {tag:?} left a record of the wrong kind")
            }
            KvViolation::ValueMismatch {
                tag,
                record_value,
                op_value,
            } => write!(
                f,
                "operation {tag:?} submitted {op_value} but its record holds {record_value}"
            ),
            KvViolation::CasExpectationViolated {
                tag,
                expected,
                found,
            } => write!(
                f,
                "cas {tag:?} expected {expected} but the key held {found:?} at its \
                 linearization point"
            ),
            KvViolation::DeleteOfAbsentKey { tag } => {
                write!(f, "delete {tag:?} linearized on an absent key")
            }
            KvViolation::DeletedValueMismatch {
                tag,
                record_value,
                held,
            } => write!(
                f,
                "delete {tag:?} recorded removing {record_value} but the key held {held}"
            ),
            KvViolation::LostUpdate { tag } => {
                write!(f, "operation {tag:?} answered success but left no record")
            }
            KvViolation::RejectedButApplied { tag } => {
                write!(f, "operation {tag:?} answered no-effect yet owns a record")
            }
            KvViolation::UnexplainedGet { tag, reported } => write!(
                f,
                "get {tag:?} reported {reported}, a value its key never held"
            ),
            KvViolation::MisroutedKey {
                tag,
                key,
                shard,
                home,
            } => write!(
                f,
                "operation {tag:?} left a record for key {key} in shard {shard}, but the \
                 router homes that key in shard {home}"
            ),
            KvViolation::CarriedDelete { tag } => {
                write!(f, "compaction carried a delete record for {tag:?}")
            }
            KvViolation::CarriedWithoutOrigin { tag } => write!(
                f,
                "compaction carried a record for {tag:?} that no generation ever published"
            ),
            KvViolation::CarriedValueMismatch {
                tag,
                key,
                carried,
                held,
            } => write!(
                f,
                "compaction carried {carried} for key {key} ({tag:?}) but the key held \
                 {held:?} at the generation boundary"
            ),
            KvViolation::DroppedByCompaction {
                tag,
                key,
                last_gen,
                active_gen,
            } => write!(
                f,
                "live key {key} (newest record {tag:?}) was left behind in generation \
                 {last_gen} — compaction to generation {active_gen} dropped it"
            ),
            KvViolation::GenerationOutOfOrder {
                tag,
                gen,
                prev_gen,
                active_gen,
            } => write!(
                f,
                "record {tag:?} carries generation {gen} after generation {prev_gen} in a \
                 chain whose active generation is {active_gen}"
            ),
        }
    }
}

/// Verdict of the KV check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvVerdict {
    /// The answers are consistent with the chain-order linearization.
    Linearizable,
    /// The execution violates the sequential map specification.
    NotLinearizable {
        /// The first violation found.
        violation: KvViolation,
    },
}

impl KvVerdict {
    /// `true` for [`KvVerdict::Linearizable`].
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        matches!(self, KvVerdict::Linearizable)
    }

    /// The violation behind a non-linearizable verdict — what negative
    /// controls assert on (a skipped recovery scan must surface as
    /// *this particular* violation, not merely as "not linearizable").
    #[must_use]
    pub fn violation(&self) -> Option<&KvViolation> {
        match self {
            KvVerdict::Linearizable => None,
            KvVerdict::NotLinearizable { violation } => Some(violation),
        }
    }
}

impl KvViolation {
    /// The offending operation's `(pid, seq)` tag — every violation
    /// kind carries one, so campaign logs can name the operation.
    #[must_use]
    pub fn tag(&self) -> (u64, u64) {
        match *self {
            KvViolation::DuplicateApplication { tag }
            | KvViolation::PhantomRecord { tag }
            | KvViolation::KeyMismatch { tag, .. }
            | KvViolation::WrongRecordKind { tag }
            | KvViolation::ValueMismatch { tag, .. }
            | KvViolation::CasExpectationViolated { tag, .. }
            | KvViolation::DeleteOfAbsentKey { tag }
            | KvViolation::DeletedValueMismatch { tag, .. }
            | KvViolation::LostUpdate { tag }
            | KvViolation::RejectedButApplied { tag }
            | KvViolation::UnexplainedGet { tag, .. }
            | KvViolation::MisroutedKey { tag, .. }
            | KvViolation::CarriedDelete { tag }
            | KvViolation::CarriedWithoutOrigin { tag }
            | KvViolation::CarriedValueMismatch { tag, .. }
            | KvViolation::DroppedByCompaction { tag, .. }
            | KvViolation::GenerationOutOfOrder { tag, .. } => tag,
        }
    }
}

fn fail(violation: KvViolation) -> KvVerdict {
    KvVerdict::NotLinearizable { violation }
}

/// Checks a KV execution against the sequential map specification,
/// using the per-bucket chains as the linearization witness. Runs in
/// `O(ops + records)`.
///
/// See the module header of `kv.rs` for the exact conditions.
///
/// # Example
///
/// ```
/// use pstack_verify::{
///     check_kv, KvAnswer, KvHistory, KvOp, KvOpKind, KvWitnessRecord,
/// };
///
/// let history = KvHistory {
///     ops: vec![
///         KvOp {
///             pid: 0,
///             seq: 1,
///             kind: KvOpKind::Put,
///             key: 7,
///             value: 70,
///             expected: 0,
///             answer: KvAnswer::Stored(true),
///         },
///         KvOp {
///             pid: 1,
///             seq: 2,
///             kind: KvOpKind::Get,
///             key: 7,
///             value: 0,
///             expected: 0,
///             answer: KvAnswer::Got(Some(70)),
///         },
///     ],
///     chains: vec![vec![KvWitnessRecord {
///         key: 7,
///         value: 70,
///         pid: 0,
///         seq: 1,
///         is_delete: false,
///         compacted: false,
///         gen: 0,
///     }]],
/// };
/// assert!(check_kv(&history).is_linearizable());
/// ```
#[must_use]
pub fn check_kv(history: &KvHistory) -> KvVerdict {
    check_kv_gen(history, infer_active_gen(&history.chains))
}

/// [`check_kv`] for a store whose chains span **generation
/// boundaries**: `active_gen` is the store's active generation number
/// (`PKvStore::generation()` in `pstack-kv`), which the plain
/// [`check_kv`] can only infer from the records (an inference a
/// drop-everything compaction bug could fool — always pass the real
/// number when the store compacted).
///
/// On top of the chain-replay conditions, the generation-aware check
/// validates the compaction invariants:
///
/// * carried records (`compacted`) are copies, not applications — each
///   must reproduce exactly the live value of its key at its position
///   in the replay, must originate from an earlier published record,
///   and is never a delete;
/// * generation stamps are non-decreasing along each chain and never
///   exceed `active_gen`;
/// * every key the replay ends with as *live* has its newest record in
///   the active generation — a live key left behind in an older
///   generation was dropped by a root swap.
#[must_use]
pub fn check_kv_gen(history: &KvHistory, active_gen: u64) -> KvVerdict {
    check_ops_against_chains(
        &history.ops,
        history
            .chains
            .iter()
            .map(|chain| (active_gen, chain.as_slice())),
    )
}

/// The most conservative generation inference available to the
/// non-generational entry points: the newest generation any record
/// mentions (0 for an empty witness).
fn infer_active_gen(chains: &[Vec<KvWitnessRecord>]) -> u64 {
    chains.iter().flatten().map(|r| r.gen).max().unwrap_or(0)
}

/// Checks a **sharded** KV execution: validates that every record sits
/// in its key's home shard under `router`, then runs the chain-replay
/// check of [`check_kv`] over the union of all shards' chains (valid
/// because routed shards, like buckets, hold disjoint key sets, while
/// the operation-tag bookkeeping stays global — a double application
/// across two shards is still caught). Runs in `O(ops + records)`.
///
/// `router` must be the same pure key→shard function the store used
/// (`pstack_kv::shard_of` partially applied with the shard count).
///
/// # Example
///
/// ```
/// use pstack_verify::{
///     check_kv_sharded, KvAnswer, KvOp, KvOpKind, KvShardedHistory, KvWitnessRecord,
/// };
///
/// let history = KvShardedHistory {
///     ops: vec![KvOp {
///         pid: 0,
///         seq: 1,
///         kind: KvOpKind::Put,
///         key: 7,
///         value: 70,
///         expected: 0,
///         answer: KvAnswer::Stored(true),
///     }],
///     shards: vec![
///         vec![vec![]],
///         vec![vec![KvWitnessRecord {
///             key: 7,
///             value: 70,
///             pid: 0,
///             seq: 1,
///             is_delete: false,
///             compacted: false,
///             gen: 0,
///         }]],
///     ],
/// };
/// // Key 7's home shard is 1 under this (toy) router.
/// assert!(check_kv_sharded(&history, |key| (key % 2) as usize).is_linearizable());
/// ```
#[must_use]
pub fn check_kv_sharded(history: &KvShardedHistory, router: impl Fn(u64) -> usize) -> KvVerdict {
    let generations: Vec<u64> = history
        .shards
        .iter()
        .map(|chains| infer_active_gen(chains))
        .collect();
    check_kv_sharded_gen(history, router, &generations)
}

/// [`check_kv_sharded`] for stores whose shards compact independently:
/// `generations[s]` is shard `s`'s active generation number. See
/// [`check_kv_gen`] for the extra invariants this validates — each
/// shard's chains are checked against that shard's own active
/// generation (shards swap roots independently).
///
/// # Panics
///
/// Panics if `generations.len()` differs from the history's shard
/// count (a harness-construction bug, not an execution property).
#[must_use]
pub fn check_kv_sharded_gen(
    history: &KvShardedHistory,
    router: impl Fn(u64) -> usize,
    generations: &[u64],
) -> KvVerdict {
    assert_eq!(
        generations.len(),
        history.shards.len(),
        "one active generation per shard"
    );
    for (shard, chains) in history.shards.iter().enumerate() {
        for rec in chains.iter().flatten() {
            let home = router(rec.key);
            if home != shard {
                return fail(KvViolation::MisroutedKey {
                    tag: (rec.pid, rec.seq),
                    key: rec.key,
                    shard,
                    home,
                });
            }
        }
    }
    check_ops_against_chains(
        &history.ops,
        history
            .shards
            .iter()
            .zip(generations)
            .flat_map(|(chains, &gen)| chains.iter().map(move |chain| (gen, chain.as_slice()))),
    )
}

fn check_ops_against_chains<'a>(
    ops: &[KvOp],
    chains: impl IntoIterator<Item = (u64, &'a [KvWitnessRecord])>,
) -> KvVerdict {
    // Index operations by tag.
    let ops_by_tag: HashMap<(u64, u64), &KvOp> =
        ops.iter().map(|op| ((op.pid, op.seq), op)).collect();

    // Which values each key ever held (for explaining gets).
    let mut values_of_key: HashMap<u64, Vec<i64>> = HashMap::new();

    // Each key's newest record: (generation, its chain's active
    // generation, owning tag) — the input of the dropped-key check.
    let mut newest_of_key: HashMap<u64, (u64, u64, (u64, u64))> = HashMap::new();

    // Replay every chain through the sequential spec. Chains of
    // different buckets hold disjoint key sets, so their relative
    // interleaving cannot matter; one spec instance replays them all.
    let mut spec = KvSpec::new();
    let mut applied_tags: HashSet<(u64, u64)> = HashSet::new();
    for (active_gen, chain) in chains {
        let mut prev_gen = 0u64;
        for rec in chain {
            let tag = (rec.pid, rec.seq);
            if rec.gen < prev_gen || rec.gen > active_gen {
                return fail(KvViolation::GenerationOutOfOrder {
                    tag,
                    gen: rec.gen,
                    prev_gen,
                    active_gen,
                });
            }
            prev_gen = rec.gen;
            newest_of_key.insert(rec.key, (rec.gen, active_gen, tag));
            if rec.compacted {
                // A carry-over is a copy, not an application: it must
                // originate from an earlier published record and must
                // reproduce exactly the live state at the boundary.
                if rec.is_delete {
                    return fail(KvViolation::CarriedDelete { tag });
                }
                if !applied_tags.contains(&tag) {
                    return fail(KvViolation::CarriedWithoutOrigin { tag });
                }
                if let Some(op) = ops_by_tag.get(&tag) {
                    if op.key != rec.key {
                        return fail(KvViolation::KeyMismatch {
                            tag,
                            record_key: rec.key,
                            op_key: op.key,
                        });
                    }
                }
                let held = spec.get(rec.key);
                if held != Some(rec.value) {
                    return fail(KvViolation::CarriedValueMismatch {
                        tag,
                        key: rec.key,
                        carried: rec.value,
                        held,
                    });
                }
                continue;
            }
            if !applied_tags.insert(tag) {
                return fail(KvViolation::DuplicateApplication { tag });
            }
            let Some(op) = ops_by_tag.get(&tag) else {
                return fail(KvViolation::PhantomRecord { tag });
            };
            if op.key != rec.key {
                return fail(KvViolation::KeyMismatch {
                    tag,
                    record_key: rec.key,
                    op_key: op.key,
                });
            }
            match (op.kind, rec.is_delete) {
                (KvOpKind::Put, false) => {
                    if rec.value != op.value {
                        return fail(KvViolation::ValueMismatch {
                            tag,
                            record_value: rec.value,
                            op_value: op.value,
                        });
                    }
                    spec.put(rec.key, rec.value);
                }
                (KvOpKind::Cas, false) => {
                    if rec.value != op.value {
                        return fail(KvViolation::ValueMismatch {
                            tag,
                            record_value: rec.value,
                            op_value: op.value,
                        });
                    }
                    let found = spec.get(rec.key);
                    if !spec.cas(rec.key, op.expected, rec.value) {
                        return fail(KvViolation::CasExpectationViolated {
                            tag,
                            expected: op.expected,
                            found,
                        });
                    }
                }
                (KvOpKind::Delete, true) => {
                    let held = spec.get(rec.key);
                    match held {
                        None => return fail(KvViolation::DeleteOfAbsentKey { tag }),
                        Some(held) if held != rec.value => {
                            return fail(KvViolation::DeletedValueMismatch {
                                tag,
                                record_value: rec.value,
                                held,
                            })
                        }
                        Some(_) => {
                            spec.delete(rec.key);
                        }
                    }
                }
                _ => return fail(KvViolation::WrongRecordKind { tag }),
            }
            if !rec.is_delete {
                values_of_key.entry(rec.key).or_default().push(rec.value);
            }
        }
    }

    // The dropped-key check: every key the replay ends with as live
    // must have its newest record in its chain's active generation —
    // written there or carried there. A live key whose newest record
    // sits in an older generation was silently dropped by a root swap.
    for (&key, &(gen, active_gen, tag)) in &newest_of_key {
        if gen != active_gen && spec.get(key).is_some() {
            return fail(KvViolation::DroppedByCompaction {
                tag,
                key,
                last_gen: gen,
                active_gen,
            });
        }
    }

    // Check every operation's answer against the witness.
    for op in ops {
        let tag = (op.pid, op.seq);
        let applied = applied_tags.contains(&tag);
        let effectful = match (op.kind, op.answer) {
            (KvOpKind::Put, KvAnswer::Stored(ok)) => ok,
            (KvOpKind::Delete, KvAnswer::Deleted(ok)) => ok,
            (KvOpKind::Cas, KvAnswer::Swapped(ok)) => ok,
            (KvOpKind::Get, KvAnswer::Got(reported)) => {
                if let Some(v) = reported {
                    let explained = values_of_key.get(&op.key).is_some_and(|vs| vs.contains(&v));
                    if !explained {
                        return fail(KvViolation::UnexplainedGet { tag, reported: v });
                    }
                }
                // Gets never own records.
                if applied {
                    return fail(KvViolation::PhantomRecord { tag });
                }
                continue;
            }
            // A kind/answer mismatch is a harness-construction bug;
            // surface it as a wrong-kind violation.
            _ => return fail(KvViolation::WrongRecordKind { tag }),
        };
        match (effectful, applied) {
            (true, false) => return fail(KvViolation::LostUpdate { tag }),
            (false, true) => return fail(KvViolation::RejectedButApplied { tag }),
            _ => {}
        }
    }

    KvVerdict::Linearizable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(pid: u64, seq: u64, key: u64, value: i64, ok: bool) -> KvOp {
        KvOp {
            pid,
            seq,
            kind: KvOpKind::Put,
            key,
            value,
            expected: 0,
            answer: KvAnswer::Stored(ok),
        }
    }

    fn get(pid: u64, seq: u64, key: u64, got: Option<i64>) -> KvOp {
        KvOp {
            pid,
            seq,
            kind: KvOpKind::Get,
            key,
            value: 0,
            expected: 0,
            answer: KvAnswer::Got(got),
        }
    }

    fn del(pid: u64, seq: u64, key: u64, ok: bool) -> KvOp {
        KvOp {
            pid,
            seq,
            kind: KvOpKind::Delete,
            key,
            value: 0,
            expected: 0,
            answer: KvAnswer::Deleted(ok),
        }
    }

    fn cas(pid: u64, seq: u64, key: u64, expected: i64, new: i64, ok: bool) -> KvOp {
        KvOp {
            pid,
            seq,
            kind: KvOpKind::Cas,
            key,
            value: new,
            expected,
            answer: KvAnswer::Swapped(ok),
        }
    }

    fn rec(pid: u64, seq: u64, key: u64, value: i64) -> KvWitnessRecord {
        KvWitnessRecord {
            key,
            value,
            pid,
            seq,
            is_delete: false,
            compacted: false,
            gen: 0,
        }
    }

    fn drec(pid: u64, seq: u64, key: u64, value: i64) -> KvWitnessRecord {
        KvWitnessRecord {
            key,
            value,
            pid,
            seq,
            is_delete: true,
            compacted: false,
            gen: 0,
        }
    }

    /// A compaction carry-over in generation `gen`.
    fn carry(pid: u64, seq: u64, key: u64, value: i64, gen: u64) -> KvWitnessRecord {
        KvWitnessRecord {
            key,
            value,
            pid,
            seq,
            is_delete: false,
            compacted: true,
            gen,
        }
    }

    /// `rec` stamped into generation `gen`.
    fn rec_gen(pid: u64, seq: u64, key: u64, value: i64, gen: u64) -> KvWitnessRecord {
        KvWitnessRecord {
            gen,
            ..rec(pid, seq, key, value)
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h = KvHistory {
            ops: vec![],
            chains: vec![vec![], vec![]],
        };
        assert!(check_kv(&h).is_linearizable());
    }

    #[test]
    fn put_cas_delete_get_round_trip_is_linearizable() {
        let h = KvHistory {
            ops: vec![
                put(0, 1, 7, 70, true),
                cas(1, 2, 7, 70, 71, true),
                get(2, 3, 7, Some(71)),
                del(0, 4, 7, true),
                get(1, 5, 7, None),
                cas(2, 6, 7, 71, 72, false),
            ],
            chains: vec![vec![rec(0, 1, 7, 70), rec(1, 2, 7, 71), drec(0, 4, 7, 71)]],
        };
        assert!(check_kv(&h).is_linearizable());
    }

    #[test]
    fn duplicate_application_is_flagged() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec(0, 1, 7, 70), rec(0, 1, 7, 70)]],
        };
        assert_eq!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::DuplicateApplication { tag: (0, 1) }
            }
        );
    }

    #[test]
    fn duplicate_across_chains_is_flagged() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec(0, 1, 7, 70)], vec![rec(0, 1, 8, 70)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::DuplicateApplication { .. }
            }
        ));
    }

    #[test]
    fn lost_update_is_flagged() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![]],
        };
        assert_eq!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::LostUpdate { tag: (0, 1) }
            }
        );
    }

    #[test]
    fn phantom_record_is_flagged() {
        let h = KvHistory {
            ops: vec![],
            chains: vec![vec![rec(9, 9, 7, 70)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::PhantomRecord { .. }
            }
        ));
    }

    #[test]
    fn value_and_key_mismatches_are_flagged() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec(0, 1, 7, 99)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::ValueMismatch { .. }
            }
        ));
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec(0, 1, 8, 70)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::KeyMismatch { .. }
            }
        ));
    }

    #[test]
    fn cas_expectation_violation_is_flagged() {
        // The cas record claims effect although the key held 99, not 70.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 99, true), cas(1, 2, 7, 70, 71, true)],
            chains: vec![vec![rec(0, 1, 7, 99), rec(1, 2, 7, 71)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::CasExpectationViolated { .. }
            }
        ));
    }

    #[test]
    fn cas_false_with_record_is_flagged() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), cas(1, 2, 7, 70, 71, false)],
            chains: vec![vec![rec(0, 1, 7, 70), rec(1, 2, 7, 71)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::RejectedButApplied { .. }
            }
        ));
    }

    #[test]
    fn delete_violations_are_flagged() {
        // Delete record on an absent key.
        let h = KvHistory {
            ops: vec![del(0, 1, 7, true)],
            chains: vec![vec![drec(0, 1, 7, 0)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::DeleteOfAbsentKey { .. }
            }
        ));
        // Delete record carrying the wrong removed value.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), del(1, 2, 7, true)],
            chains: vec![vec![rec(0, 1, 7, 70), drec(1, 2, 7, 71)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::DeletedValueMismatch { .. }
            }
        ));
        // Delete answered false yet owns a record.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), del(1, 2, 7, false)],
            chains: vec![vec![rec(0, 1, 7, 70), drec(1, 2, 7, 70)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::RejectedButApplied { .. }
            }
        ));
    }

    #[test]
    fn unexplained_get_is_flagged() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), get(1, 2, 7, Some(71))],
            chains: vec![vec![rec(0, 1, 7, 70)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::UnexplainedGet { .. }
            }
        ));
        // Got(None) is always explainable (the key starts absent).
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), get(1, 2, 7, None)],
            chains: vec![vec![rec(0, 1, 7, 70)]],
        };
        assert!(check_kv(&h).is_linearizable());
    }

    #[test]
    fn wrong_record_kind_is_flagged() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![drec(0, 1, 7, 70)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::WrongRecordKind { .. }
            }
        ));
    }

    #[test]
    fn rejected_put_must_leave_no_record() {
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, false)],
            chains: vec![vec![]],
        };
        assert!(check_kv(&h).is_linearizable());
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, false)],
            chains: vec![vec![rec(0, 1, 7, 70)]],
        };
        assert!(matches!(
            check_kv(&h),
            KvVerdict::NotLinearizable {
                violation: KvViolation::RejectedButApplied { .. }
            }
        ));
    }

    /// Toy router for the sharded tests: shard = key parity.
    fn parity(key: u64) -> usize {
        (key % 2) as usize
    }

    #[test]
    fn sharded_history_with_routed_chains_is_linearizable() {
        let h = KvShardedHistory {
            ops: vec![
                put(0, 1, 2, 20, true),
                put(1, 2, 3, 30, true),
                cas(0, 3, 3, 30, 31, true),
                del(1, 4, 2, true),
                get(2, 5, 3, Some(31)),
            ],
            shards: vec![
                vec![vec![rec(0, 1, 2, 20), drec(1, 4, 2, 20)]],
                vec![vec![rec(1, 2, 3, 30), rec(0, 3, 3, 31)]],
            ],
        };
        assert!(check_kv_sharded(&h, parity).is_linearizable());
    }

    #[test]
    fn misrouted_record_is_flagged() {
        // Key 3 is odd → home shard 1, but its record sits in shard 0.
        let h = KvShardedHistory {
            ops: vec![put(0, 1, 3, 30, true)],
            shards: vec![vec![vec![rec(0, 1, 3, 30)]], vec![vec![]]],
        };
        assert_eq!(
            check_kv_sharded(&h, parity),
            KvVerdict::NotLinearizable {
                violation: KvViolation::MisroutedKey {
                    tag: (0, 1),
                    key: 3,
                    shard: 0,
                    home: 1,
                }
            }
        );
    }

    #[test]
    fn duplicate_application_across_shards_is_flagged() {
        // The same tag published in two shards (a recovery bug that
        // re-executed in the wrong shard would produce this after a
        // router change): global tag bookkeeping must catch it even
        // though each shard's local replay looks fine.
        let h = KvShardedHistory {
            ops: vec![put(0, 1, 2, 20, true), put(0, 2, 3, 20, true)],
            shards: vec![
                vec![vec![rec(0, 1, 2, 20)]],
                vec![vec![KvWitnessRecord {
                    key: 3,
                    value: 20,
                    pid: 0,
                    seq: 1,
                    is_delete: false,
                    compacted: false,
                    gen: 0,
                }]],
            ],
        };
        assert!(matches!(
            check_kv_sharded(&h, parity),
            KvVerdict::NotLinearizable {
                violation: KvViolation::DuplicateApplication { .. }
            }
        ));
    }

    #[test]
    fn sharded_lost_update_and_unexplained_get_are_flagged() {
        let h = KvShardedHistory {
            ops: vec![put(0, 1, 2, 20, true)],
            shards: vec![vec![vec![]], vec![vec![]]],
        };
        assert!(matches!(
            check_kv_sharded(&h, parity),
            KvVerdict::NotLinearizable {
                violation: KvViolation::LostUpdate { .. }
            }
        ));
        let h = KvShardedHistory {
            ops: vec![put(0, 1, 2, 20, true), get(1, 2, 2, Some(99))],
            shards: vec![vec![vec![rec(0, 1, 2, 20)]], vec![vec![]]],
        };
        assert!(matches!(
            check_kv_sharded(&h, parity),
            KvVerdict::NotLinearizable {
                violation: KvViolation::UnexplainedGet { .. }
            }
        ));
    }

    #[test]
    fn empty_sharded_history_is_linearizable() {
        let h = KvShardedHistory {
            ops: vec![],
            shards: vec![vec![vec![], vec![]], vec![vec![]]],
        };
        assert!(check_kv_sharded(&h, parity).is_linearizable());
    }

    // ---- generation boundaries (compaction) ----------------------------

    #[test]
    fn chains_spanning_a_generation_boundary_are_linearizable() {
        // Generation 0 history, a compaction carrying the one live key,
        // then fresh generation-1 traffic — all in one bucket chain.
        let h = KvHistory {
            ops: vec![
                put(0, 1, 7, 70, true),
                cas(1, 2, 7, 70, 71, true),
                put(0, 3, 8, 80, true),
                del(1, 4, 8, true),
                put(2, 5, 9, 90, true),
            ],
            chains: vec![vec![
                rec(0, 1, 7, 70),
                rec(1, 2, 7, 71),
                rec(0, 3, 8, 80),
                drec(1, 4, 8, 80),
                carry(1, 2, 7, 71, 1),
                rec_gen(2, 5, 9, 90, 1),
            ]],
        };
        assert!(check_kv_gen(&h, 1).is_linearizable());
        assert!(check_kv(&h).is_linearizable(), "inference agrees");
    }

    #[test]
    fn carried_records_do_not_count_as_applications() {
        // The carry repeats the original's tag; that is a copy, not a
        // double application — and the answered op still owns exactly
        // one real record.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec(0, 1, 7, 70), carry(0, 1, 7, 70, 1)]],
        };
        assert!(check_kv_gen(&h, 1).is_linearizable());
        // Carried twice (two consecutive compactions): still fine.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![
                rec(0, 1, 7, 70),
                carry(0, 1, 7, 70, 1),
                carry(0, 1, 7, 70, 2),
            ]],
        };
        assert!(check_kv_gen(&h, 2).is_linearizable());
    }

    #[test]
    fn dropped_live_key_is_flagged() {
        // Key 7 was live at the boundary but has no record in the
        // active generation: the swap dropped it.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), put(0, 2, 9, 90, true)],
            chains: vec![vec![rec(0, 1, 7, 70), rec_gen(0, 2, 9, 90, 1)]],
        };
        match check_kv_gen(&h, 1).violation() {
            Some(KvViolation::DroppedByCompaction {
                key,
                last_gen,
                active_gen,
                ..
            }) => {
                assert_eq!((*key, *last_gen, *active_gen), (7, 0, 1));
            }
            other => panic!("expected DroppedByCompaction, got {other:?}"),
        }
        // A key *deleted* before the boundary is legitimately absent.
        let h = KvHistory {
            ops: vec![
                put(0, 1, 7, 70, true),
                del(0, 2, 7, true),
                put(0, 3, 9, 90, true),
            ],
            chains: vec![vec![
                rec(0, 1, 7, 70),
                drec(0, 2, 7, 70),
                rec_gen(0, 3, 9, 90, 1),
            ]],
        };
        assert!(check_kv_gen(&h, 1).is_linearizable());
    }

    #[test]
    fn explicit_generation_catches_what_inference_cannot() {
        // A drop-everything compaction leaves no generation-1 records
        // at all: the inferred active generation is 0 and the plain
        // check passes, but the store's real generation number exposes
        // the drop — why campaigns must use the _gen entry points.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec(0, 1, 7, 70)]],
        };
        assert!(check_kv(&h).is_linearizable());
        assert!(matches!(
            check_kv_gen(&h, 1).violation(),
            Some(KvViolation::DroppedByCompaction { .. })
        ));
    }

    #[test]
    fn carried_value_mismatch_is_flagged() {
        // Carry claims 99 but the key held 70 at the boundary.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec(0, 1, 7, 70), carry(0, 1, 7, 99, 1)]],
        };
        match check_kv_gen(&h, 1).violation() {
            Some(KvViolation::CarriedValueMismatch { carried, held, .. }) => {
                assert_eq!((*carried, *held), (99, Some(70)));
            }
            other => panic!("expected CarriedValueMismatch, got {other:?}"),
        }
        // Carry of a key that was dead at the boundary (held = None).
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), del(1, 2, 7, true)],
            chains: vec![vec![
                rec(0, 1, 7, 70),
                drec(1, 2, 7, 70),
                carry(0, 1, 7, 70, 1),
            ]],
        };
        assert!(matches!(
            check_kv_gen(&h, 1).violation(),
            Some(KvViolation::CarriedValueMismatch { held: None, .. })
        ));
    }

    #[test]
    fn carried_delete_and_carried_without_origin_are_flagged() {
        let bad_carry = KvWitnessRecord {
            is_delete: true,
            ..carry(0, 1, 7, 70, 1)
        };
        let h = KvHistory {
            ops: vec![del(0, 1, 7, true)],
            chains: vec![vec![bad_carry]],
        };
        assert!(matches!(
            check_kv_gen(&h, 1).violation(),
            Some(KvViolation::CarriedDelete { .. })
        ));
        // A carry whose tag no generation ever published: the compactor
        // invented a record.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![carry(0, 1, 7, 70, 1)]],
        };
        assert!(matches!(
            check_kv_gen(&h, 1).violation(),
            Some(KvViolation::CarriedWithoutOrigin { .. })
        ));
    }

    #[test]
    fn generation_stamps_must_be_ordered_and_in_range() {
        // Regression along the chain.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true), put(0, 2, 9, 90, true)],
            chains: vec![vec![rec_gen(0, 1, 7, 70, 1), rec(0, 2, 9, 90)]],
        };
        assert!(matches!(
            check_kv_gen(&h, 1).violation(),
            Some(KvViolation::GenerationOutOfOrder { .. })
        ));
        // A record from the future.
        let h = KvHistory {
            ops: vec![put(0, 1, 7, 70, true)],
            chains: vec![vec![rec_gen(0, 1, 7, 70, 2)]],
        };
        assert!(matches!(
            check_kv_gen(&h, 1).violation(),
            Some(KvViolation::GenerationOutOfOrder { .. })
        ));
    }

    #[test]
    fn sharded_generations_are_checked_per_shard() {
        // Shard 0 compacted to generation 1 (live key carried); shard 1
        // never compacted. Per-shard generation numbers make both pass.
        let h = KvShardedHistory {
            ops: vec![put(0, 1, 2, 20, true), put(1, 2, 3, 30, true)],
            shards: vec![
                vec![vec![rec(0, 1, 2, 20), carry(0, 1, 2, 20, 1)]],
                vec![vec![rec(1, 2, 3, 30)]],
            ],
        };
        assert!(check_kv_sharded_gen(&h, parity, &[1, 0]).is_linearizable());
        assert!(check_kv_sharded(&h, parity).is_linearizable(), "inference");
        // Claiming shard 1 is also at generation 1 exposes its live key
        // as dropped.
        assert!(matches!(
            check_kv_sharded_gen(&h, parity, &[1, 1]).violation(),
            Some(KvViolation::DroppedByCompaction { key: 3, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "one active generation per shard")]
    fn sharded_generation_count_mismatch_panics() {
        let h = KvShardedHistory {
            ops: vec![],
            shards: vec![vec![vec![]], vec![vec![]]],
        };
        let _ = check_kv_sharded_gen(&h, parity, &[0]);
    }

    #[test]
    fn kv_spec_matches_map_semantics() {
        let mut spec = KvSpec::new();
        assert_eq!(spec.get(1), None);
        assert!(spec.put(1, 10));
        assert_eq!(spec.get(1), Some(10));
        assert!(!spec.cas(1, 99, 11));
        assert!(spec.cas(1, 10, 11));
        assert!(spec.delete(1));
        assert!(!spec.delete(1));
        assert!(!spec.cas(1, 11, 12), "cas on absent key fails");
        assert!(spec.contents().is_empty());
    }

    #[test]
    fn interleaved_multi_mutator_shard_histories_pass() {
        // Lock-free shards publish records from several mutators
        // directly onto the bucket chains, so one chain freely
        // interleaves pids and their seqs arrive in publication order,
        // not per-pid program order. The checker must accept any such
        // interleaving — it keys everything on the (pid, seq) tags,
        // never on per-pid ordering within a chain.
        let history = KvShardedHistory {
            ops: vec![
                put(1, 1, 0, 10, true),
                put(2, 1, 0, 20, true),
                put(1, 2, 0, 30, true),
                put(3, 1, 2, 5, true),
                put(2, 2, 2, 6, true),
                put(2, 3, 1, 7, true),
                put(1, 3, 1, 8, true),
                get(4, 1, 0, Some(30)),
            ],
            shards: vec![
                vec![
                    // Two mutators alternating on one key, a third
                    // racing them on another key of the same shard.
                    vec![rec(1, 1, 0, 10), rec(2, 1, 0, 20), rec(1, 2, 0, 30)],
                    vec![rec(3, 1, 2, 5), rec(2, 2, 2, 6)],
                ],
                vec![vec![rec(2, 3, 1, 7), rec(1, 3, 1, 8)]],
            ],
        };
        assert!(check_kv_sharded(&history, |key| (key % 2) as usize).is_linearizable());

        // The tag bookkeeping stays global across the interleaving: a
        // record double-published by two racing mutators is caught.
        let mut dup = history;
        dup.shards[0][1].push(rec(1, 1, 2, 10));
        let verdict = check_kv_sharded(&dup, |key| (key % 2) as usize);
        assert_eq!(
            verdict.violation().unwrap().tag(),
            (1, 1),
            "duplicate application across chains must be named: {verdict:?}"
        );
    }

    #[test]
    fn violations_display_nonempty() {
        let violations = [
            KvViolation::DuplicateApplication { tag: (0, 1) },
            KvViolation::PhantomRecord { tag: (0, 1) },
            KvViolation::KeyMismatch {
                tag: (0, 1),
                record_key: 1,
                op_key: 2,
            },
            KvViolation::WrongRecordKind { tag: (0, 1) },
            KvViolation::ValueMismatch {
                tag: (0, 1),
                record_value: 1,
                op_value: 2,
            },
            KvViolation::CasExpectationViolated {
                tag: (0, 1),
                expected: 1,
                found: None,
            },
            KvViolation::DeleteOfAbsentKey { tag: (0, 1) },
            KvViolation::DeletedValueMismatch {
                tag: (0, 1),
                record_value: 1,
                held: 2,
            },
            KvViolation::LostUpdate { tag: (0, 1) },
            KvViolation::RejectedButApplied { tag: (0, 1) },
            KvViolation::UnexplainedGet {
                tag: (0, 1),
                reported: 3,
            },
            KvViolation::MisroutedKey {
                tag: (0, 1),
                key: 3,
                shard: 0,
                home: 1,
            },
            KvViolation::CarriedDelete { tag: (0, 1) },
            KvViolation::CarriedWithoutOrigin { tag: (0, 1) },
            KvViolation::CarriedValueMismatch {
                tag: (0, 1),
                key: 3,
                carried: 1,
                held: Some(2),
            },
            KvViolation::DroppedByCompaction {
                tag: (0, 1),
                key: 3,
                last_gen: 0,
                active_gen: 1,
            },
            KvViolation::GenerationOutOfOrder {
                tag: (0, 1),
                gen: 2,
                prev_gen: 0,
                active_gen: 1,
            },
        ];
        for v in violations {
            assert!(!v.to_string().is_empty());
            assert_eq!(v.tag(), (0, 1));
            let verdict = KvVerdict::NotLinearizable {
                violation: v.clone(),
            };
            assert_eq!(verdict.violation(), Some(&v));
        }
        assert_eq!(KvVerdict::Linearizable.violation(), None);
    }
}
