//! Execution verifiers for recoverable-CAS histories (§5 of the paper).
//!
//! Given an execution — initial register value, final register value,
//! and every `CAS(old → new)` operation with its answer — the paper
//! (§5.1) verifies **serializability** in polynomial time: build a
//! multigraph whose edges are the successful CAS transitions and look
//! for an Eulerian path from the initial to the final value; failed
//! operations serialize at any moment when the register differs from
//! their expected value.
//!
//! This crate implements that checker ([`check_serializability`]),
//! returning either a complete serial **witness order** (validated by
//! [`replay_witness`]) or a machine-readable reason for rejection. As
//! extensions addressing the paper's future-work direction 2, a
//! [`check_linearizability`] decision procedure (Wing–Gong style DFS
//! with memoization) handles small timed histories, a
//! [`check_sequential_consistency`] procedure handles per-process
//! program orders, and [`brute_force_serializable`] cross-checks the
//! polynomial checker on tiny inputs. Two further object-specific
//! witness checkers follow the same extract-the-witness strategy:
//! [`check_fifo`] for recoverable-queue executions and [`check_kv`]
//! for key-value executions against the sequential map spec
//! ([`KvSpec`]).

mod brute;
mod fifo;
mod history;
mod kv;
mod linearizability;
mod sequential;
mod serializability;
mod witness;

pub use brute::brute_force_serializable;
pub use fifo::{
    check_fifo, FifoVerdict, FifoViolation, QueueAnswer, QueueHistory, QueueOp, QueueOpKind,
    SlotWitness,
};
pub use history::{CasHistory, CasOp, TimedHistory, TimedOp};
pub use kv::{
    check_kv, check_kv_gen, check_kv_sharded, check_kv_sharded_gen, KvAnswer, KvHistory, KvOp,
    KvOpKind, KvShardedHistory, KvSpec, KvVerdict, KvViolation, KvWitnessRecord,
};
pub use linearizability::{check_linearizability, LinVerdict};
pub use sequential::{check_sequential_consistency, ProgramOrderHistory, ScVerdict};
pub use serializability::{check_serializability, NonSerializableReason, SerialVerdict};
pub use witness::{replay_witness, WitnessError};
