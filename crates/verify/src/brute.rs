//! Brute-force serializability for tiny histories.
//!
//! Tries every permutation of the operations; usable only for a handful
//! of operations, but an ideal cross-check oracle for the polynomial
//! checker (property tests compare the two on random small histories).

use crate::history::CasHistory;
use crate::witness::replay_witness;

/// Decides serializability by exhaustive permutation search.
///
/// # Panics
///
/// Panics if the history has more than 9 operations (the search is
/// factorial; use [`check_serializability`](crate::check_serializability)
/// for real inputs).
#[must_use]
pub fn brute_force_serializable(history: &CasHistory) -> bool {
    assert!(
        history.ops.len() <= 9,
        "brute force is factorial; {} ops is too many",
        history.ops.len()
    );
    let mut order: Vec<usize> = (0..history.ops.len()).collect();
    permute(history, &mut order, 0)
}

fn permute(history: &CasHistory, order: &mut Vec<usize>, k: usize) -> bool {
    if k == order.len() {
        return replay_witness(history, order).is_ok();
    }
    for i in k..order.len() {
        order.swap(k, i);
        if permute(history, order, k + 1) {
            return true;
        }
        order.swap(k, i);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::CasOp;
    use crate::serializability::check_serializability;

    fn op(old: i64, new: i64, success: bool) -> CasOp {
        CasOp {
            pid: 0,
            old,
            new,
            success,
        }
    }

    #[test]
    fn agrees_on_simple_cases() {
        let yes = CasHistory::new(0, 2, vec![op(1, 2, true), op(0, 1, true)]);
        let no = CasHistory::new(0, 5, vec![op(0, 5, true), op(0, 5, true)]);
        assert!(brute_force_serializable(&yes));
        assert!(!brute_force_serializable(&no));
    }

    #[test]
    #[should_panic(expected = "too many")]
    fn too_many_ops_panics() {
        let ops = vec![op(0, 1, true); 10];
        let _ = brute_force_serializable(&CasHistory::new(0, 1, ops));
    }

    #[test]
    fn cross_check_exhaustive_small_space() {
        // Enumerate every history with values in {0,1,2}, up to 4 ops,
        // success flags exhaustive — compare brute force with the
        // polynomial checker. This is a miniature model check.
        let values = [0i64, 1, 2];
        let mut checked = 0usize;
        // Pre-build the op universe: (old, new, success).
        let mut universe = Vec::new();
        for &o in &values {
            for &n in &values {
                universe.push(op(o, n, true));
                universe.push(op(o, n, false));
            }
        }
        // Sample the space deterministically rather than fully (it is
        // 18^4 ≈ 105k with 4 ops): stride through it.
        let m = universe.len();
        for a in 0..m {
            for b in (a % 3..m).step_by(3) {
                for c in (b % 5..m).step_by(5) {
                    let ops = vec![universe[a], universe[b], universe[c]];
                    for &init in &values {
                        for &fin in &values {
                            let h = CasHistory::new(init, fin, ops.clone());
                            let fast = check_serializability(&h).is_serializable();
                            let slow = brute_force_serializable(&h);
                            assert_eq!(
                                fast, slow,
                                "checkers disagree on {h:?} (fast={fast}, slow={slow})"
                            );
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 3_000, "only {checked} cases covered");
    }
}
