//! FIFO verifier for recoverable-queue executions — the queue analogue
//! of the §5.1 CAS serializability check.
//!
//! Deciding FIFO serializability of a queue history from per-operation
//! answers alone is NP-hard in general (unlike the CAS case, where the
//! Eulerian-path structure makes it polynomial). The recoverable queue
//! sidesteps the search the same way §5.1 sidesteps it for CAS — by
//! extracting a **witness** from the object itself: slots are never
//! recycled, they fill and tombstone in strictly increasing index
//! order, so the quiescent slot array *is* the linearization order of
//! all enqueues and all dequeues. [`check_fifo`] validates the recorded
//! answers against that witness in linear time:
//!
//! * every accepted enqueue appears in exactly one slot with its tag,
//!   value intact; rejected (queue-full) enqueues appear in none;
//! * every value-returning dequeue owns exactly one tombstone with its
//!   dequeuer tag, carrying the value it reported; empty-returning
//!   dequeues own none;
//! * no slot or tombstone is unaccounted for (phantom effects);
//! * tombstones form a prefix of the filled slots (FIFO discipline at
//!   quiescence);
//! * each process's accepted enqueues occupy slots in its program
//!   order (per-producer FIFO).
//!
//! The recovery bugs the §5.2 methodology hunts for — double
//! application after a lost answer, dropped operations — all surface as
//! violations of these conditions: the `NoScan` queue variant leaves
//! two slots (or two tombstones) with one tag.

use std::collections::HashMap;

/// The kind of a queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOpKind {
    /// `enqueue(value)`.
    Enqueue,
    /// `dequeue()`.
    Dequeue,
}

/// The recorded answer of a queue operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueAnswer {
    /// An enqueue's answer: `true` if accepted, `false` if the queue's
    /// lifetime capacity was exhausted.
    Accepted(bool),
    /// A dequeue's answer: the value removed, or `None` for an empty
    /// queue.
    Dequeued(Option<i64>),
}

/// One operation of a queue execution, with its recorded answer.
///
/// Operations sharing a `pid` are in program order when they appear in
/// ascending order in [`QueueHistory::ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueOp {
    /// Executing process.
    pub pid: u64,
    /// The operation's unique tag (unique per `(pid, seq)` pair).
    pub seq: u64,
    /// Enqueue or dequeue.
    pub kind: QueueOpKind,
    /// The enqueued value (ignored for dequeues).
    pub value: i64,
    /// The recorded answer.
    pub answer: QueueAnswer,
}

/// One touched slot of the quiescent queue, in slot (= linearization)
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotWitness {
    /// The value the slot holds.
    pub value: i64,
    /// Enqueuer tag.
    pub pid: u64,
    /// Enqueuer sequence.
    pub seq: u64,
    /// `Some((pid, seq))` of the dequeuer if the slot is tombstoned.
    pub dequeued_by: Option<(u64, u64)>,
}

/// A complete queue execution: every operation with its answer, plus
/// the quiescent slot-array witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueHistory {
    /// All operations; same-`pid` operations are in program order.
    pub ops: Vec<QueueOp>,
    /// The queue's touched slots in slot order.
    pub snapshot: Vec<SlotWitness>,
}

/// Why a queue execution failed the FIFO check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FifoViolation {
    /// An enqueue tag occupies more than one slot (double application).
    DuplicateEnqueue {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A dequeuer tag owns more than one tombstone (double
    /// application).
    DuplicateDequeue {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// An accepted enqueue appears in no slot (lost operation).
    LostEnqueue {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A rejected (queue-full) enqueue nevertheless occupies a slot.
    RejectedButApplied {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A slot's value differs from what its enqueue operation submitted.
    EnqueueValueMismatch {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// Value recorded in the slot.
        slot_value: i64,
        /// Value the operation submitted.
        op_value: i64,
    },
    /// A slot is occupied by a tag no operation in the history owns.
    PhantomEnqueue {
        /// The unaccounted `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A dequeue reported a value but owns no tombstone (lost answer
    /// evidence).
    LostDequeue {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A dequeue reported "empty" yet owns a tombstone.
    EmptyButConsumed {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A dequeue's reported value differs from its tombstone's value.
    DequeueValueMismatch {
        /// The offending `(pid, seq)` tag.
        tag: (u64, u64),
        /// Value in the tombstoned slot.
        slot_value: i64,
        /// Value the operation reported.
        reported: i64,
    },
    /// A tombstone is owned by a dequeuer tag no operation in the
    /// history owns.
    PhantomDequeue {
        /// The unaccounted `(pid, seq)` tag.
        tag: (u64, u64),
    },
    /// A filled slot precedes a tombstoned slot: the FIFO discipline
    /// (head advances monotonically) was violated.
    TombstonesNotPrefix {
        /// Index of the first still-full slot.
        full_at: usize,
        /// Index of a later tombstoned slot.
        tombstone_at: usize,
    },
    /// A producer's accepted enqueues occupy slots out of its program
    /// order.
    ProducerOrderViolated {
        /// The offending producer.
        pid: u64,
    },
}

impl std::fmt::Display for FifoViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FifoViolation::DuplicateEnqueue { tag } => {
                write!(f, "enqueue {tag:?} applied more than once")
            }
            FifoViolation::DuplicateDequeue { tag } => {
                write!(f, "dequeue {tag:?} applied more than once")
            }
            FifoViolation::LostEnqueue { tag } => {
                write!(f, "accepted enqueue {tag:?} missing from the queue")
            }
            FifoViolation::RejectedButApplied { tag } => {
                write!(f, "rejected enqueue {tag:?} nevertheless occupies a slot")
            }
            FifoViolation::EnqueueValueMismatch {
                tag,
                slot_value,
                op_value,
            } => write!(
                f,
                "enqueue {tag:?} slot holds {slot_value} but the operation submitted {op_value}"
            ),
            FifoViolation::PhantomEnqueue { tag } => {
                write!(f, "slot owned by unknown enqueue tag {tag:?}")
            }
            FifoViolation::LostDequeue { tag } => {
                write!(f, "dequeue {tag:?} reported a value but owns no tombstone")
            }
            FifoViolation::EmptyButConsumed { tag } => {
                write!(f, "dequeue {tag:?} reported empty yet owns a tombstone")
            }
            FifoViolation::DequeueValueMismatch {
                tag,
                slot_value,
                reported,
            } => write!(
                f,
                "dequeue {tag:?} reported {reported} but its tombstone holds {slot_value}"
            ),
            FifoViolation::PhantomDequeue { tag } => {
                write!(f, "tombstone owned by unknown dequeuer tag {tag:?}")
            }
            FifoViolation::TombstonesNotPrefix {
                full_at,
                tombstone_at,
            } => write!(
                f,
                "slot {full_at} is still full but later slot {tombstone_at} is tombstoned"
            ),
            FifoViolation::ProducerOrderViolated { pid } => {
                write!(
                    f,
                    "producer {pid}'s enqueues occupy slots out of program order"
                )
            }
        }
    }
}

/// Verdict of the FIFO check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FifoVerdict {
    /// The answers are consistent with the slot-order linearization.
    Fifo,
    /// The execution violates FIFO queue semantics.
    NotFifo {
        /// The first violation found.
        violation: FifoViolation,
    },
}

impl FifoVerdict {
    /// `true` for [`FifoVerdict::Fifo`].
    #[must_use]
    pub fn is_fifo(&self) -> bool {
        matches!(self, FifoVerdict::Fifo)
    }
}

fn fail(violation: FifoViolation) -> FifoVerdict {
    FifoVerdict::NotFifo { violation }
}

/// Checks a queue execution against FIFO semantics using the quiescent
/// slot array as the linearization witness. Runs in `O(ops + slots)`.
///
/// See the module header of `fifo.rs` for the exact conditions.
///
/// # Example
///
/// ```
/// use pstack_verify::{
///     check_fifo, QueueAnswer, QueueHistory, QueueOp, QueueOpKind, SlotWitness,
/// };
///
/// let history = QueueHistory {
///     ops: vec![
///         QueueOp {
///             pid: 0,
///             seq: 1,
///             kind: QueueOpKind::Enqueue,
///             value: 7,
///             answer: QueueAnswer::Accepted(true),
///         },
///         QueueOp {
///             pid: 1,
///             seq: 1,
///             kind: QueueOpKind::Dequeue,
///             value: 0,
///             answer: QueueAnswer::Dequeued(Some(7)),
///         },
///     ],
///     snapshot: vec![SlotWitness {
///         value: 7,
///         pid: 0,
///         seq: 1,
///         dequeued_by: Some((1, 1)),
///     }],
/// };
/// assert!(check_fifo(&history).is_fifo());
/// ```
#[must_use]
pub fn check_fifo(history: &QueueHistory) -> FifoVerdict {
    // Index the witness: enqueue tag → (slot index, value), dequeuer
    // tag → (slot index, value); duplicates fail immediately.
    let mut slot_of_enq: HashMap<(u64, u64), (usize, i64)> = HashMap::new();
    let mut slot_of_deq: HashMap<(u64, u64), (usize, i64)> = HashMap::new();
    let mut first_full: Option<usize> = None;
    for (i, slot) in history.snapshot.iter().enumerate() {
        if slot_of_enq
            .insert((slot.pid, slot.seq), (i, slot.value))
            .is_some()
        {
            return fail(FifoViolation::DuplicateEnqueue {
                tag: (slot.pid, slot.seq),
            });
        }
        match slot.dequeued_by {
            Some(tag) => {
                if let Some(full_at) = first_full {
                    return fail(FifoViolation::TombstonesNotPrefix {
                        full_at,
                        tombstone_at: i,
                    });
                }
                if slot_of_deq.insert(tag, (i, slot.value)).is_some() {
                    return fail(FifoViolation::DuplicateDequeue { tag });
                }
            }
            None => {
                first_full.get_or_insert(i);
            }
        }
    }

    // Check every operation's answer against the witness.
    let mut enq_seen: HashMap<(u64, u64), ()> = HashMap::new();
    let mut deq_seen: HashMap<(u64, u64), ()> = HashMap::new();
    let mut producer_slots: HashMap<u64, Vec<usize>> = HashMap::new();
    for op in &history.ops {
        let tag = (op.pid, op.seq);
        match (op.kind, op.answer) {
            (QueueOpKind::Enqueue, QueueAnswer::Accepted(true)) => {
                enq_seen.insert(tag, ());
                match slot_of_enq.get(&tag) {
                    None => return fail(FifoViolation::LostEnqueue { tag }),
                    Some(&(i, slot_value)) => {
                        if slot_value != op.value {
                            return fail(FifoViolation::EnqueueValueMismatch {
                                tag,
                                slot_value,
                                op_value: op.value,
                            });
                        }
                        producer_slots.entry(op.pid).or_default().push(i);
                    }
                }
            }
            (QueueOpKind::Enqueue, QueueAnswer::Accepted(false)) => {
                enq_seen.insert(tag, ());
                if slot_of_enq.contains_key(&tag) {
                    return fail(FifoViolation::RejectedButApplied { tag });
                }
            }
            (QueueOpKind::Dequeue, QueueAnswer::Dequeued(Some(reported))) => {
                deq_seen.insert(tag, ());
                match slot_of_deq.get(&tag) {
                    None => return fail(FifoViolation::LostDequeue { tag }),
                    Some(&(_, slot_value)) => {
                        if slot_value != reported {
                            return fail(FifoViolation::DequeueValueMismatch {
                                tag,
                                slot_value,
                                reported,
                            });
                        }
                    }
                }
            }
            (QueueOpKind::Dequeue, QueueAnswer::Dequeued(None)) => {
                deq_seen.insert(tag, ());
                if slot_of_deq.contains_key(&tag) {
                    return fail(FifoViolation::EmptyButConsumed { tag });
                }
            }
            // Mismatched kind/answer pairs are constructor bugs in the
            // harness, not execution bugs; treat the enqueue/dequeue
            // evidence check as authoritative.
            (QueueOpKind::Enqueue, QueueAnswer::Dequeued(_))
            | (QueueOpKind::Dequeue, QueueAnswer::Accepted(_)) => {
                return fail(FifoViolation::PhantomEnqueue { tag });
            }
        }
    }

    // Phantom effects: witness entries no operation accounts for.
    for tag in slot_of_enq.keys() {
        if !enq_seen.contains_key(tag) {
            return fail(FifoViolation::PhantomEnqueue { tag: *tag });
        }
    }
    for tag in slot_of_deq.keys() {
        if !deq_seen.contains_key(tag) {
            return fail(FifoViolation::PhantomDequeue { tag: *tag });
        }
    }

    // Per-producer FIFO: ops are in program order per pid, so the slot
    // indexes collected above must be strictly increasing.
    for (pid, slots) in &producer_slots {
        if slots.windows(2).any(|w| w[0] >= w[1]) {
            return fail(FifoViolation::ProducerOrderViolated { pid: *pid });
        }
    }

    FifoVerdict::Fifo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(pid: u64, seq: u64, value: i64, accepted: bool) -> QueueOp {
        QueueOp {
            pid,
            seq,
            kind: QueueOpKind::Enqueue,
            value,
            answer: QueueAnswer::Accepted(accepted),
        }
    }

    fn deq(pid: u64, seq: u64, result: Option<i64>) -> QueueOp {
        QueueOp {
            pid,
            seq,
            kind: QueueOpKind::Dequeue,
            value: 0,
            answer: QueueAnswer::Dequeued(result),
        }
    }

    fn slot(pid: u64, seq: u64, value: i64, dequeued_by: Option<(u64, u64)>) -> SlotWitness {
        SlotWitness {
            value,
            pid,
            seq,
            dequeued_by,
        }
    }

    #[test]
    fn empty_history_is_fifo() {
        let h = QueueHistory {
            ops: vec![],
            snapshot: vec![],
        };
        assert!(check_fifo(&h).is_fifo());
    }

    #[test]
    fn simple_producer_consumer_is_fifo() {
        let h = QueueHistory {
            ops: vec![
                enq(0, 1, 10, true),
                enq(0, 2, 20, true),
                deq(1, 1, Some(10)),
                deq(1, 2, Some(20)),
                deq(1, 3, None),
            ],
            snapshot: vec![slot(0, 1, 10, Some((1, 1))), slot(0, 2, 20, Some((1, 2)))],
        };
        assert!(check_fifo(&h).is_fifo());
    }

    #[test]
    fn duplicate_enqueue_tag_is_flagged() {
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true)],
            snapshot: vec![slot(0, 1, 10, None), slot(0, 1, 10, None)],
        };
        assert_eq!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::DuplicateEnqueue { tag: (0, 1) }
            }
        );
    }

    #[test]
    fn duplicate_dequeue_tag_is_flagged() {
        let h = QueueHistory {
            ops: vec![
                enq(0, 1, 10, true),
                enq(0, 2, 20, true),
                deq(1, 1, Some(10)),
            ],
            snapshot: vec![slot(0, 1, 10, Some((1, 1))), slot(0, 2, 20, Some((1, 1)))],
        };
        assert_eq!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::DuplicateDequeue { tag: (1, 1) }
            }
        );
    }

    #[test]
    fn lost_enqueue_is_flagged() {
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true)],
            snapshot: vec![],
        };
        assert_eq!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::LostEnqueue { tag: (0, 1) }
            }
        );
    }

    #[test]
    fn rejected_but_applied_is_flagged() {
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, false)],
            snapshot: vec![slot(0, 1, 10, None)],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::RejectedButApplied { .. }
            }
        ));
    }

    #[test]
    fn value_mismatches_are_flagged() {
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true)],
            snapshot: vec![slot(0, 1, 99, None)],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::EnqueueValueMismatch { .. }
            }
        ));
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true), deq(1, 1, Some(11))],
            snapshot: vec![slot(0, 1, 10, Some((1, 1)))],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::DequeueValueMismatch { .. }
            }
        ));
    }

    #[test]
    fn phantom_effects_are_flagged() {
        let h = QueueHistory {
            ops: vec![],
            snapshot: vec![slot(0, 1, 10, None)],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::PhantomEnqueue { .. }
            }
        ));
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true)],
            snapshot: vec![slot(0, 1, 10, Some((9, 9)))],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::PhantomDequeue { .. }
            }
        ));
    }

    #[test]
    fn empty_answer_with_tombstone_is_flagged() {
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true), deq(1, 1, None)],
            snapshot: vec![slot(0, 1, 10, Some((1, 1)))],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::EmptyButConsumed { .. }
            }
        ));
    }

    #[test]
    fn lost_dequeue_answer_is_flagged() {
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true), deq(1, 1, Some(10))],
            snapshot: vec![slot(0, 1, 10, None)],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::LostDequeue { .. }
            }
        ));
    }

    #[test]
    fn tombstone_after_full_slot_is_flagged() {
        let h = QueueHistory {
            ops: vec![
                enq(0, 1, 10, true),
                enq(0, 2, 20, true),
                deq(1, 1, Some(20)),
            ],
            snapshot: vec![slot(0, 1, 10, None), slot(0, 2, 20, Some((1, 1)))],
        };
        assert!(matches!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::TombstonesNotPrefix { .. }
            }
        ));
    }

    #[test]
    fn producer_order_violation_is_flagged() {
        // Producer 0 enqueued seq 1 then seq 2, but the slots are
        // swapped in the witness.
        let h = QueueHistory {
            ops: vec![enq(0, 1, 10, true), enq(0, 2, 20, true)],
            snapshot: vec![slot(0, 2, 20, None), slot(0, 1, 10, None)],
        };
        assert_eq!(
            check_fifo(&h),
            FifoVerdict::NotFifo {
                violation: FifoViolation::ProducerOrderViolated { pid: 0 }
            }
        );
    }

    #[test]
    fn interleaved_producers_are_fifo() {
        let h = QueueHistory {
            ops: vec![
                enq(0, 1, 1, true),
                enq(0, 2, 2, true),
                enq(1, 1, 3, true),
                enq(1, 2, 4, true),
                deq(2, 1, Some(1)),
                deq(2, 2, Some(3)),
            ],
            snapshot: vec![
                slot(0, 1, 1, Some((2, 1))),
                slot(1, 1, 3, Some((2, 2))),
                slot(0, 2, 2, None),
                slot(1, 2, 4, None),
            ],
        };
        assert!(check_fifo(&h).is_fifo());
    }

    #[test]
    fn violations_display_nonempty() {
        let violations = [
            FifoViolation::DuplicateEnqueue { tag: (0, 1) },
            FifoViolation::DuplicateDequeue { tag: (0, 1) },
            FifoViolation::LostEnqueue { tag: (0, 1) },
            FifoViolation::RejectedButApplied { tag: (0, 1) },
            FifoViolation::EnqueueValueMismatch {
                tag: (0, 1),
                slot_value: 1,
                op_value: 2,
            },
            FifoViolation::PhantomEnqueue { tag: (0, 1) },
            FifoViolation::LostDequeue { tag: (0, 1) },
            FifoViolation::EmptyButConsumed { tag: (0, 1) },
            FifoViolation::DequeueValueMismatch {
                tag: (0, 1),
                slot_value: 1,
                reported: 2,
            },
            FifoViolation::PhantomDequeue { tag: (0, 1) },
            FifoViolation::TombstonesNotPrefix {
                full_at: 0,
                tombstone_at: 1,
            },
            FifoViolation::ProducerOrderViolated { pid: 0 },
        ];
        for v in violations {
            assert!(!v.to_string().is_empty());
        }
    }
}
