//! The polynomial serializability checker of §5.1.
//!
//! Successful `CAS(a → b)` operations become edges `a → b` of a
//! directed multigraph over register values. The execution is
//! serializable iff:
//!
//! 1. the multigraph has an **Eulerian path** from the initial to the
//!    final register value (each successful CAS is a state transition
//!    that happened exactly once), and
//! 2. every failed `CAS(old → ·)` can be placed at some moment when
//!    the register held a value `≠ old` (footnote 8 of the paper).
//!
//! The checker returns a full serial order (witness) on success; the
//! witness is independently replayable with
//! [`replay_witness`](crate::replay_witness).

use std::collections::HashMap;

use crate::history::CasHistory;

/// Why a history failed the serializability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonSerializableReason {
    /// A value's in/out degree imbalance is impossible for an Eulerian
    /// path from `init` to `final`.
    DegreeMismatch {
        /// The offending register value.
        value: i64,
        /// `out-degree − in-degree` observed for the value.
        imbalance: i64,
        /// The imbalance an Eulerian path would require.
        required: i64,
    },
    /// The successful operations split into disconnected components, so
    /// no single path traverses all of them.
    Disconnected {
        /// A value unreachable from the initial value's component.
        example: i64,
    },
    /// No successful operations exist yet the final value differs from
    /// the initial one.
    FinalMismatch {
        /// The expected final value.
        expected: i64,
        /// The reported final value.
        reported: i64,
    },
    /// A failed `CAS(old → ·)` cannot be placed: the register provably
    /// held `old` at every moment of every serialization.
    FailedOpImpossible {
        /// Index of the failed operation in the history.
        index: usize,
        /// Its expected value.
        old: i64,
    },
}

impl std::fmt::Display for NonSerializableReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonSerializableReason::DegreeMismatch {
                value,
                imbalance,
                required,
            } => write!(
                f,
                "value {value} has out-in imbalance {imbalance}, an eulerian path requires {required}"
            ),
            NonSerializableReason::Disconnected { example } => write!(
                f,
                "successful operations around value {example} are unreachable from the initial value"
            ),
            NonSerializableReason::FinalMismatch { expected, reported } => write!(
                f,
                "final value should be {expected} but {reported} was read"
            ),
            NonSerializableReason::FailedOpImpossible { index, old } => write!(
                f,
                "failed op #{index} expects the register to differ from {old}, but it never does"
            ),
        }
    }
}

/// Result of [`check_serializability`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerialVerdict {
    /// Serializable; `order` lists all operation indices (successful
    /// and failed) in one legal sequential order.
    Serializable {
        /// Operation indices in witness order.
        order: Vec<usize>,
    },
    /// Not serializable, with the first reason found.
    NotSerializable {
        /// Why the history cannot be serialized.
        reason: NonSerializableReason,
    },
}

impl SerialVerdict {
    /// `true` for the serializable verdict.
    #[must_use]
    pub fn is_serializable(&self) -> bool {
        matches!(self, SerialVerdict::Serializable { .. })
    }
}

/// Checks a CAS history for serializability in polynomial time (§5.1).
///
/// # Example
///
/// ```
/// use pstack_verify::{check_serializability, CasHistory, CasOp};
///
/// let h = CasHistory::new(0, 2, vec![
///     CasOp { pid: 0, old: 0, new: 1, success: true },
///     CasOp { pid: 1, old: 1, new: 2, success: true },
///     CasOp { pid: 0, old: 9, new: 5, success: false },
/// ]);
/// assert!(check_serializability(&h).is_serializable());
/// ```
#[must_use]
pub fn check_serializability(history: &CasHistory) -> SerialVerdict {
    // Adjacency with per-edge operation indices, so the witness can
    // name concrete operations.
    let mut adj: HashMap<i64, Vec<(i64, usize)>> = HashMap::new();
    let mut degree: HashMap<i64, i64> = HashMap::new(); // out - in
    let mut edge_count = 0usize;

    for (i, op) in history.ops.iter().enumerate() {
        if op.success {
            adj.entry(op.old).or_default().push((op.new, i));
            *degree.entry(op.old).or_default() += 1;
            *degree.entry(op.new).or_default() -= 1;
            edge_count += 1;
        }
    }

    if edge_count == 0 {
        if history.final_value != history.init {
            return SerialVerdict::NotSerializable {
                reason: NonSerializableReason::FinalMismatch {
                    expected: history.init,
                    reported: history.final_value,
                },
            };
        }
    } else {
        // Degree conditions for an Eulerian path init → final.
        let mut required: HashMap<i64, i64> = HashMap::new();
        if history.init != history.final_value {
            *required.entry(history.init).or_default() += 1;
            *required.entry(history.final_value).or_default() -= 1;
        }
        for (&v, &imbalance) in &degree {
            let req = required.get(&v).copied().unwrap_or(0);
            if imbalance != req {
                return SerialVerdict::NotSerializable {
                    reason: NonSerializableReason::DegreeMismatch {
                        value: v,
                        imbalance,
                        required: req,
                    },
                };
            }
        }
        for (&v, &req) in &required {
            if req != 0 && !degree.contains_key(&v) {
                return SerialVerdict::NotSerializable {
                    reason: NonSerializableReason::DegreeMismatch {
                        value: v,
                        imbalance: 0,
                        required: req,
                    },
                };
            }
        }
        // Weak connectivity of all vertices that carry edges, anchored
        // at the initial value.
        if let Some(example) = disconnected_vertex(&adj, history.init) {
            return SerialVerdict::NotSerializable {
                reason: NonSerializableReason::Disconnected { example },
            };
        }
    }

    // Hierholzer: build the Eulerian path (sequence of edge op indices).
    let path = eulerian_path(&adj, history.init, edge_count)
        .expect("degree and connectivity conditions guarantee a path");

    // States along the path: state[k] is the register value before the
    // k-th successful op; state[m] is the final value.
    let mut states = Vec::with_capacity(path.len() + 1);
    states.push(history.init);
    for &op_idx in &path {
        states.push(history.ops[op_idx].new);
    }
    debug_assert_eq!(*states.last().expect("nonempty"), history.final_value);

    // Place each failed op at the first state differing from `old`.
    let mut placed: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
    for i in history.failed() {
        let old = history.ops[i].old;
        match states.iter().position(|&s| s != old) {
            Some(k) => placed[k].push(i),
            None => {
                return SerialVerdict::NotSerializable {
                    reason: NonSerializableReason::FailedOpImpossible { index: i, old },
                }
            }
        }
    }

    // Interleave: failed ops assigned to state k run before the k-th
    // successful transition.
    let mut order = Vec::with_capacity(history.ops.len());
    for (k, bucket) in placed.iter().enumerate() {
        order.extend_from_slice(bucket);
        if k < path.len() {
            order.push(path[k]);
        }
    }
    SerialVerdict::Serializable { order }
}

/// Returns a vertex with edges that the initial value cannot reach
/// (treating edges as undirected), or `None` if everything is
/// connected.
fn disconnected_vertex(adj: &HashMap<i64, Vec<(i64, usize)>>, init: i64) -> Option<i64> {
    let mut undirected: HashMap<i64, Vec<i64>> = HashMap::new();
    for (&from, outs) in adj {
        for &(to, _) in outs {
            undirected.entry(from).or_default().push(to);
            undirected.entry(to).or_default().push(from);
        }
    }
    let mut visited = std::collections::HashSet::new();
    let mut stack = vec![init];
    while let Some(v) = stack.pop() {
        if !visited.insert(v) {
            continue;
        }
        if let Some(ns) = undirected.get(&v) {
            for &n in ns {
                if !visited.contains(&n) {
                    stack.push(n);
                }
            }
        }
    }
    undirected
        .keys()
        .filter(|v| !visited.contains(v))
        .min()
        .copied()
}

/// Hierholzer's algorithm over the op-indexed multigraph. Returns the
/// op indices of successful operations in path order, or `None` if not
/// all edges are reachable (callers pre-validate, so this is defensive).
fn eulerian_path(
    adj: &HashMap<i64, Vec<(i64, usize)>>,
    start: i64,
    edge_count: usize,
) -> Option<Vec<usize>> {
    let mut iters: HashMap<i64, usize> = HashMap::new();
    let mut stack: Vec<(i64, Option<usize>)> = vec![(start, None)];
    let mut out_rev = Vec::with_capacity(edge_count);
    while let Some(&(v, via)) = stack.last() {
        let cursor = iters.entry(v).or_insert(0);
        match adj.get(&v).and_then(|outs| outs.get(*cursor)) {
            Some(&(to, op_idx)) => {
                *cursor += 1;
                stack.push((to, Some(op_idx)));
            }
            None => {
                stack.pop();
                if let Some(op_idx) = via {
                    out_rev.push(op_idx);
                }
            }
        }
    }
    if out_rev.len() != edge_count {
        return None;
    }
    out_rev.reverse();
    Some(out_rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::CasOp;

    fn op(old: i64, new: i64, success: bool) -> CasOp {
        CasOp {
            pid: 0,
            old,
            new,
            success,
        }
    }

    #[test]
    fn empty_history_is_serializable() {
        let h = CasHistory::new(5, 5, vec![]);
        assert!(check_serializability(&h).is_serializable());
    }

    #[test]
    fn empty_history_with_wrong_final_is_rejected() {
        let h = CasHistory::new(5, 6, vec![]);
        assert_eq!(
            check_serializability(&h),
            SerialVerdict::NotSerializable {
                reason: NonSerializableReason::FinalMismatch {
                    expected: 5,
                    reported: 6
                }
            }
        );
    }

    #[test]
    fn simple_chain_is_serializable_with_correct_witness() {
        let h = CasHistory::new(0, 3, vec![op(1, 2, true), op(0, 1, true), op(2, 3, true)]);
        match check_serializability(&h) {
            SerialVerdict::Serializable { order } => {
                assert_eq!(order, vec![1, 0, 2], "chain must serialize 0→1→2→3");
            }
            other => panic!("expected serializable, got {other:?}"),
        }
    }

    #[test]
    fn cycle_back_to_init_is_serializable() {
        let h = CasHistory::new(0, 0, vec![op(0, 1, true), op(1, 0, true)]);
        assert!(check_serializability(&h).is_serializable());
    }

    #[test]
    fn double_application_is_detected() {
        // The §5.2 bug: one reported success, but the register moved
        // twice — here modelled as two identical successful CAS(0→5)
        // with no way to get back to 0 in between.
        let h = CasHistory::new(0, 5, vec![op(0, 5, true), op(0, 5, true)]);
        assert!(!check_serializability(&h).is_serializable());
    }

    #[test]
    fn lost_success_is_detected() {
        // A CAS that actually moved the register but reported false:
        // the remaining successful ops no longer connect init to final.
        let h = CasHistory::new(0, 2, vec![op(1, 2, true), op(0, 1, false)]);
        assert!(!check_serializability(&h).is_serializable());
    }

    #[test]
    fn disconnected_components_are_detected() {
        // 0→1 and 5→6 cannot be one path.
        let h = CasHistory::new(0, 1, vec![op(0, 1, true), op(5, 6, true)]);
        match check_serializability(&h) {
            SerialVerdict::NotSerializable {
                reason: NonSerializableReason::DegreeMismatch { .. },
            }
            | SerialVerdict::NotSerializable {
                reason: NonSerializableReason::Disconnected { .. },
            } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_cycle_is_detected_by_connectivity() {
        // Degrees all balance (5→6, 6→5 is a cycle) but it is
        // unreachable from init=0's component.
        let h = CasHistory::new(0, 1, vec![op(0, 1, true), op(5, 6, true), op(6, 5, true)]);
        assert_eq!(
            check_serializability(&h),
            SerialVerdict::NotSerializable {
                reason: NonSerializableReason::Disconnected { example: 5 }
            }
        );
    }

    #[test]
    fn failed_op_places_anywhere_register_differs() {
        let h = CasHistory::new(0, 1, vec![op(0, 1, true), op(7, 9, false)]);
        match check_serializability(&h) {
            SerialVerdict::Serializable { order } => {
                assert_eq!(order.len(), 2);
                assert!(order.contains(&0) && order.contains(&1));
            }
            other => panic!("expected serializable, got {other:?}"),
        }
    }

    #[test]
    fn failed_op_that_must_succeed_is_rejected() {
        // Register is always 5; a failed CAS(5→9) is impossible.
        let h = CasHistory::new(5, 5, vec![op(5, 9, false)]);
        assert_eq!(
            check_serializability(&h),
            SerialVerdict::NotSerializable {
                reason: NonSerializableReason::FailedOpImpossible { index: 0, old: 5 }
            }
        );
    }

    #[test]
    fn failed_op_with_self_loop_states_is_rejected() {
        // All states equal 5 (self-loop 5→5): failed CAS(5→1) cannot be
        // placed.
        let h = CasHistory::new(5, 5, vec![op(5, 5, true), op(5, 1, false)]);
        assert_eq!(
            check_serializability(&h),
            SerialVerdict::NotSerializable {
                reason: NonSerializableReason::FailedOpImpossible { index: 1, old: 5 }
            }
        );
    }

    #[test]
    fn failed_op_before_first_transition_when_init_differs() {
        // init=3 differs from old=5 right away.
        let h = CasHistory::new(3, 3, vec![op(5, 9, false)]);
        assert!(check_serializability(&h).is_serializable());
    }

    #[test]
    fn duplicate_values_form_multigraph() {
        // Narrow-range style: the same edge 1→2 occurs twice, connected
        // by a 2→1 edge. Eulerian path: 1→2, 2→1, 1→2.
        let h = CasHistory::new(1, 2, vec![op(1, 2, true), op(1, 2, true), op(2, 1, true)]);
        match check_serializability(&h) {
            SerialVerdict::Serializable { order } => {
                assert_eq!(order.len(), 3);
                // Middle op must be the 2→1 edge (index 2).
                assert_eq!(order[1], 2);
            }
            other => panic!("expected serializable, got {other:?}"),
        }
    }

    #[test]
    fn wrong_final_value_with_edges_is_rejected() {
        let h = CasHistory::new(0, 0, vec![op(0, 1, true)]);
        assert!(!check_serializability(&h).is_serializable());
    }

    #[test]
    fn self_loops_are_handled() {
        let h = CasHistory::new(5, 5, vec![op(5, 5, true), op(5, 5, true)]);
        assert!(check_serializability(&h).is_serializable());
    }

    #[test]
    fn long_random_chain_is_serializable() {
        // A scrambled long chain with interleaved failures.
        let n = 500i64;
        let mut ops: Vec<CasOp> = (0..n).map(|i| op(i, i + 1, true)).collect();
        ops.push(op(-100, -200, false));
        ops.push(op(9999, 1, false));
        // Scramble deterministically.
        ops.reverse();
        ops.rotate_left(7);
        let h = CasHistory::new(0, n, ops);
        assert!(check_serializability(&h).is_serializable());
    }

    #[test]
    fn reasons_display_cleanly() {
        for r in [
            NonSerializableReason::DegreeMismatch {
                value: 1,
                imbalance: 2,
                required: 0,
            },
            NonSerializableReason::Disconnected { example: 5 },
            NonSerializableReason::FinalMismatch {
                expected: 1,
                reported: 2,
            },
            NonSerializableReason::FailedOpImpossible { index: 0, old: 5 },
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}
