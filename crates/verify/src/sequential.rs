//! Sequential-consistency checking for CAS histories.
//!
//! The paper's future-work direction 2 asks about verifying executions
//! against linearizability *and sequential consistency*. Sequential
//! consistency sits between serializability and linearizability: the
//! serial order must respect each process's *program order*, but not
//! real time across processes. This module provides the decision
//! procedure for small histories (DFS over per-process positions with
//! memoization), complementing [`check_linearizability`] and
//! [`check_serializability`].
//!
//! [`check_linearizability`]: crate::check_linearizability
//! [`check_serializability`]: crate::check_serializability

use std::collections::HashSet;

use crate::history::CasOp;

/// A history for sequential-consistency checking: each process's
/// operations in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramOrderHistory {
    /// Register value before any operation.
    pub init: i64,
    /// `per_process[p]` is process `p`'s operations, oldest first.
    pub per_process: Vec<Vec<CasOp>>,
}

impl ProgramOrderHistory {
    /// Builds a history from per-process program orders.
    #[must_use]
    pub fn new(init: i64, per_process: Vec<Vec<CasOp>>) -> Self {
        ProgramOrderHistory { init, per_process }
    }

    /// Groups a flat operation list by `pid`, preserving order — the
    /// common way to build this from a collected execution.
    #[must_use]
    pub fn from_flat(init: i64, ops: &[CasOp]) -> Self {
        let procs = ops.iter().map(|o| o.pid).max().map_or(0, |m| m + 1);
        let mut per_process = vec![Vec::new(); procs];
        for op in ops {
            per_process[op.pid].push(*op);
        }
        ProgramOrderHistory { init, per_process }
    }

    fn total_ops(&self) -> usize {
        self.per_process.iter().map(Vec::len).sum()
    }
}

/// Result of [`check_sequential_consistency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScVerdict {
    /// A witness interleaving exists: `(pid, index-within-process)` in
    /// serial order.
    SequentiallyConsistent {
        /// The witness interleaving.
        order: Vec<(usize, usize)>,
    },
    /// No program-order-respecting interleaving explains the answers.
    NotSequentiallyConsistent,
}

impl ScVerdict {
    /// `true` for the consistent verdict.
    #[must_use]
    pub fn is_sequentially_consistent(&self) -> bool {
        matches!(self, ScVerdict::SequentiallyConsistent { .. })
    }
}

/// Decides sequential consistency of a CAS history (≤ ~30 total
/// operations; the search is exponential in the worst case).
///
/// # Example
///
/// ```
/// use pstack_verify::{check_sequential_consistency, CasOp, ProgramOrderHistory};
///
/// // p0 saw its CAS(1→2) succeed although it ran "before" p1's
/// // CAS(0→1) in real time — legal under SC (p0's op may be ordered
/// // later), illegal under linearizability.
/// let h = ProgramOrderHistory::new(0, vec![
///     vec![CasOp { pid: 0, old: 1, new: 2, success: true }],
///     vec![CasOp { pid: 1, old: 0, new: 1, success: true }],
/// ]);
/// assert!(check_sequential_consistency(&h).is_sequentially_consistent());
/// ```
#[must_use]
pub fn check_sequential_consistency(history: &ProgramOrderHistory) -> ScVerdict {
    let total = history.total_ops();
    assert!(
        total <= 30 && history.per_process.len() <= 8,
        "the SC search is exponential; keep histories small"
    );
    let mut memo: HashSet<(Vec<usize>, i64)> = HashSet::new();
    let mut positions = vec![0usize; history.per_process.len()];
    let mut order = Vec::with_capacity(total);
    if dfs(history, &mut positions, history.init, &mut memo, &mut order) {
        ScVerdict::SequentiallyConsistent { order }
    } else {
        ScVerdict::NotSequentiallyConsistent
    }
}

fn dfs(
    history: &ProgramOrderHistory,
    positions: &mut Vec<usize>,
    register: i64,
    memo: &mut HashSet<(Vec<usize>, i64)>,
    order: &mut Vec<(usize, usize)>,
) -> bool {
    if positions
        .iter()
        .zip(&history.per_process)
        .all(|(&pos, ops)| pos == ops.len())
    {
        return true;
    }
    if !memo.insert((positions.clone(), register)) {
        return false;
    }
    for p in 0..history.per_process.len() {
        let pos = positions[p];
        let Some(op) = history.per_process[p].get(pos) else {
            continue;
        };
        let next_register = if op.success {
            if register != op.old {
                continue;
            }
            op.new
        } else {
            if register == op.old {
                continue;
            }
            register
        };
        positions[p] += 1;
        order.push((p, pos));
        if dfs(history, positions, next_register, memo, order) {
            return true;
        }
        order.pop();
        positions[p] -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::CasHistory;
    use crate::serializability::check_serializability;

    fn op(pid: usize, old: i64, new: i64, success: bool) -> CasOp {
        CasOp {
            pid,
            old,
            new,
            success,
        }
    }

    #[test]
    fn empty_history_is_sc() {
        let h = ProgramOrderHistory::new(3, vec![]);
        assert!(check_sequential_consistency(&h).is_sequentially_consistent());
    }

    #[test]
    fn single_process_respects_program_order() {
        // In program order the ops only work as 0→1 then 1→2.
        let ok = ProgramOrderHistory::new(0, vec![vec![op(0, 0, 1, true), op(0, 1, 2, true)]]);
        assert!(check_sequential_consistency(&ok).is_sequentially_consistent());
        // Reversed program order cannot be fixed by reordering: SC must
        // keep p0's order, so this fails.
        let bad = ProgramOrderHistory::new(0, vec![vec![op(0, 1, 2, true), op(0, 0, 1, true)]]);
        assert!(!check_sequential_consistency(&bad).is_sequentially_consistent());
        // ... although the same multiset is serializable.
        let flat = CasHistory::new(0, 2, vec![op(0, 1, 2, true), op(0, 0, 1, true)]);
        assert!(check_serializability(&flat).is_serializable());
    }

    #[test]
    fn cross_process_reordering_is_allowed() {
        let h = ProgramOrderHistory::new(0, vec![vec![op(0, 1, 2, true)], vec![op(1, 0, 1, true)]]);
        match check_sequential_consistency(&h) {
            ScVerdict::SequentiallyConsistent { order } => {
                assert_eq!(order, vec![(1, 0), (0, 0)]);
            }
            other => panic!("expected SC, got {other:?}"),
        }
    }

    #[test]
    fn failed_ops_constrain_sc() {
        // p0: fail CAS(0→9) then succeed CAS(0→1). The failure needs the
        // register ≠ 0 before p0's success — impossible for a single
        // process alone...
        let alone = ProgramOrderHistory::new(0, vec![vec![op(0, 0, 9, false), op(0, 0, 1, true)]]);
        assert!(!check_sequential_consistency(&alone).is_sequentially_consistent());
        // ...but another process can take the register away and back.
        let helped = ProgramOrderHistory::new(
            0,
            vec![
                vec![op(0, 0, 9, false), op(0, 0, 1, true)],
                vec![op(1, 0, 5, true), op(1, 5, 0, true)],
            ],
        );
        assert!(check_sequential_consistency(&helped).is_sequentially_consistent());
    }

    #[test]
    fn double_application_is_not_sc() {
        let h = ProgramOrderHistory::new(0, vec![vec![op(0, 0, 5, true)], vec![op(1, 0, 5, true)]]);
        assert!(!check_sequential_consistency(&h).is_sequentially_consistent());
    }

    #[test]
    fn from_flat_groups_by_pid() {
        let flat = vec![op(0, 0, 1, true), op(1, 1, 2, true), op(0, 2, 3, true)];
        let h = ProgramOrderHistory::from_flat(0, &flat);
        assert_eq!(h.per_process.len(), 2);
        assert_eq!(h.per_process[0].len(), 2);
        assert_eq!(h.per_process[1].len(), 1);
        assert!(check_sequential_consistency(&h).is_sequentially_consistent());
    }

    #[test]
    fn sc_implies_serializable() {
        // Any SC witness yields a serializable flat history with the
        // final value read off the witness.
        let h = ProgramOrderHistory::new(
            2,
            vec![
                vec![op(0, 2, 4, true), op(0, 9, 9, false)],
                vec![op(1, 4, 2, true)],
            ],
        );
        let ScVerdict::SequentiallyConsistent { order } = check_sequential_consistency(&h) else {
            panic!("expected SC")
        };
        let mut reg = h.init;
        let mut flat = Vec::new();
        for (p, i) in order {
            let o = h.per_process[p][i];
            if o.success {
                reg = o.new;
            }
            flat.push(o);
        }
        let flat_history = CasHistory::new(h.init, reg, flat);
        assert!(check_serializability(&flat_history).is_serializable());
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn oversized_history_panics() {
        let ops = vec![op(0, 0, 0, true); 31];
        let h = ProgramOrderHistory::new(0, vec![ops]);
        let _ = check_sequential_consistency(&h);
    }
}
