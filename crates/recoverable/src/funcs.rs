//! Recoverable functions gluing the NSRL primitives to the persistent
//! stack: the §5.2 CAS task and a counter task.
//!
//! Each worker executes descriptors by index: the function id plus the
//! 8-byte index form the persistent frame, so after a crash the
//! recovery thread knows exactly which descriptor was in flight and
//! calls the CAS *recovery* procedure for it.

use std::sync::Arc;

use pstack_core::{PContext, PError, RecoverableFunction, RetBytes};

use crate::cas::RecoverableCas;
use crate::counter::RecoverableCounter;
use crate::tasks::TaskTable;

/// Function id under which [`CasTaskFunction`] is registered.
pub const CAS_TASK_FUNC_ID: u64 = 0x0CA5;

/// Function id under which [`CounterTaskFunction`] is registered.
pub const COUNTER_TASK_FUNC_ID: u64 = 0xC0C0;

fn parse_index(args: &[u8]) -> Result<usize, PError> {
    let bytes: [u8; 8] = args
        .get(..8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| PError::Task("task arguments must hold an 8-byte index".into()))?;
    Ok(u64::from_le_bytes(bytes) as usize)
}

fn encode_answer(ok: bool) -> Option<RetBytes> {
    let mut b = [0u8; 8];
    b[0] = u8::from(ok);
    Some(b)
}

/// Executes descriptor `idx` of a [`TaskTable`] against a
/// [`RecoverableCas`]: the §5.2 workload item.
///
/// * `call` runs `CAS(old → new)` tagged with the descriptor index and
///   persists the answer in the table;
/// * `recover` first checks the table (the answer may already be
///   durable), then runs the CAS *recovery* procedure and persists its
///   verdict.
#[derive(Clone)]
pub struct CasTaskFunction {
    cas: RecoverableCas,
    table: TaskTable,
}

impl CasTaskFunction {
    /// Bundles a CAS object and its descriptor table.
    #[must_use]
    pub fn new(cas: RecoverableCas, table: TaskTable) -> Self {
        CasTaskFunction { cas, table }
    }

    /// Convenience: wraps into the `Arc<dyn RecoverableFunction>` shape
    /// the registry wants.
    #[must_use]
    pub fn into_arc(self) -> Arc<dyn RecoverableFunction> {
        Arc::new(self)
    }

    fn seq_of(idx: usize) -> u64 {
        idx as u64 + 1
    }
}

impl RecoverableFunction for CasTaskFunction {
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = parse_index(args)?;
        if let Some(answer) = self.table.result(idx)? {
            // Re-enqueued after completion (e.g. the completion raced a
            // crash with the queue refill): keep the original answer.
            return Ok(encode_answer(answer));
        }
        let (old, new) = self.table.op(idx)?;
        let ok = self.cas.cas(ctx.pid, old, new, Self::seq_of(idx))?;
        self.table.mark_done(idx, ok)?;
        Ok(encode_answer(ok))
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = parse_index(args)?;
        if let Some(answer) = self.table.result(idx)? {
            return Ok(encode_answer(answer));
        }
        let (old, new) = self.table.op(idx)?;
        let ok = self.cas.recover(ctx.pid, old, new, Self::seq_of(idx))?;
        self.table.mark_done(idx, ok)?;
        Ok(encode_answer(ok))
    }
}

/// Executes increment `idx` against a [`RecoverableCounter`]; the
/// sequence tag makes call and recover share one idempotent body.
#[derive(Clone)]
pub struct CounterTaskFunction {
    counter: RecoverableCounter,
}

impl CounterTaskFunction {
    /// Wraps a counter.
    #[must_use]
    pub fn new(counter: RecoverableCounter) -> Self {
        CounterTaskFunction { counter }
    }

    /// Convenience: wraps into the `Arc<dyn RecoverableFunction>` shape
    /// the registry wants.
    #[must_use]
    pub fn into_arc(self) -> Arc<dyn RecoverableFunction> {
        Arc::new(self)
    }
}

impl RecoverableFunction for CounterTaskFunction {
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = parse_index(args)?;
        self.counter.increment(ctx.pid, idx as u64 + 1)?;
        Ok(None)
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = parse_index(args)?;
        self.counter.recover_increment(ctx.pid, idx as u64 + 1)?;
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cas::CasVariant;
    use pstack_core::{FunctionRegistry, Runtime, RuntimeConfig, Task};
    use pstack_heap::PHeap;
    use pstack_nvram::{PMemBuilder, POffset};

    fn encode_idx(i: usize) -> Vec<u8> {
        (i as u64).to_le_bytes().to_vec()
    }

    #[test]
    fn cas_tasks_run_on_the_runtime() {
        let pmem = PMemBuilder::new()
            .len(1 << 20)
            .eager_flush(true)
            .build_in_memory();
        let mut registry = FunctionRegistry::new();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &registry).unwrap();
        let cas = RecoverableCas::format(pmem.clone(), rt.heap(), 2, 0, CasVariant::Nsrl).unwrap();
        // A chain 0→1→2→3: all succeed when executed in order by one
        // worker each... but workers race, so use a single worker for
        // determinism here.
        let table = TaskTable::format(pmem.clone(), rt.heap(), &[(0, 1), (1, 2), (2, 3)]).unwrap();
        registry
            .register(
                CAS_TASK_FUNC_ID,
                CasTaskFunction::new(cas.clone(), table.clone()).into_arc(),
            )
            .unwrap();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(1), &registry).unwrap();
        // Reformatting wiped the heap; recreate objects on the fresh heap.
        let cas = RecoverableCas::format(pmem.clone(), rt.heap(), 1, 0, CasVariant::Nsrl).unwrap();
        let table = TaskTable::format(pmem.clone(), rt.heap(), &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut registry = FunctionRegistry::new();
        registry
            .register(
                CAS_TASK_FUNC_ID,
                CasTaskFunction::new(cas.clone(), table.clone()).into_arc(),
            )
            .unwrap();
        let rt = Runtime::open(pmem, &registry).unwrap();
        let report = rt.run_tasks((0..3).map(|i| Task::new(CAS_TASK_FUNC_ID, encode_idx(i))));
        assert_eq!(report.completed, 3);
        assert_eq!(cas.read().unwrap(), 3);
        assert_eq!(
            table.results().unwrap(),
            vec![Some(true), Some(true), Some(true)]
        );
    }

    #[test]
    fn completed_descriptor_is_not_reexecuted() {
        let pmem = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(4096), (1 << 18) - 4096).unwrap();
        let cas = RecoverableCas::format(pmem.clone(), &heap, 1, 0, CasVariant::Nsrl).unwrap();
        let table = TaskTable::format(pmem.clone(), &heap, &[(0, 1)]).unwrap();
        let f = CasTaskFunction::new(cas.clone(), table.clone());

        // Run once through the runtime-free path: fabricate a context.
        let mut registry = FunctionRegistry::new();
        registry
            .register(CAS_TASK_FUNC_ID, f.clone().into_arc())
            .unwrap();
        let mut stack =
            pstack_core::FixedStack::format(pmem.clone(), POffset::new(0), 2048).unwrap();
        let mut ctx = PContext::new(
            pmem.clone(),
            heap.clone(),
            &registry,
            &mut stack,
            0,
            POffset::new(64),
        );
        let r1 = ctx.call(CAS_TASK_FUNC_ID, &encode_idx(0)).unwrap();
        assert_eq!(r1.unwrap()[0], 1);
        assert_eq!(cas.read().unwrap(), 1);
        // Second run of the same descriptor: answer replayed, CAS not
        // re-applied (value unchanged).
        let r2 = ctx.call(CAS_TASK_FUNC_ID, &encode_idx(0)).unwrap();
        assert_eq!(r2.unwrap()[0], 1);
        assert_eq!(cas.read().unwrap(), 1);
    }

    #[test]
    fn counter_tasks_survive_crash_recover_loop() {
        let pmem = PMemBuilder::new()
            .len(1 << 20)
            .eager_flush(true)
            .build_in_memory();
        let registry_for = |counter: &RecoverableCounter| {
            let mut r = FunctionRegistry::new();
            r.register(
                COUNTER_TASK_FUNC_ID,
                CounterTaskFunction::new(counter.clone()).into_arc(),
            )
            .unwrap();
            r
        };
        let stub = FunctionRegistry::new();
        let rt = Runtime::format(pmem.clone(), RuntimeConfig::new(2), &stub).unwrap();
        let counter = RecoverableCounter::format(pmem.clone(), rt.heap(), 2).unwrap();
        rt.set_user_root(counter.base()).unwrap();
        let registry = registry_for(&counter);
        let rt = Runtime::open(pmem.clone(), &registry).unwrap();

        pmem.arm_failpoint(pstack_nvram::FailPlan::after_events(60));
        let report = rt.run_tasks((0..40).map(|i| Task::new(COUNTER_TASK_FUNC_ID, encode_idx(i))));
        assert!(report.crashed);

        let pmem2 = pmem.reopen().unwrap();
        let rt2 = Runtime::open(
            pmem2.clone(),
            &registry_for(&RecoverableCounter::open(pmem2.clone(), counter.base(), 2)),
        )
        .unwrap();
        rt2.recover(pstack_core::RecoveryMode::Parallel).unwrap();
        // Counter value equals completed + recovered increments; all
        // per-worker stacks balanced.
        for pid in 0..2 {
            assert_eq!(rt2.open_stack(pid).unwrap().depth(), 0);
        }
        let c2 = RecoverableCounter::open(pmem2, counter.base(), 2);
        let v = c2.read().unwrap();
        assert!(v >= report.completed as u64, "no completed increment lost");
        assert!(v <= 40, "no increment duplicated");
    }
}
