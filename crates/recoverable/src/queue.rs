//! A recoverable bounded FIFO queue — the "other NVRAM algorithms"
//! direction of the paper's future work (§6, item 1), built in the same
//! NSRL style as the recoverable CAS (§5).
//!
//! # Design
//!
//! The queue is a bounded, log-structured array of `capacity` slots.
//! A slot moves through exactly three states, monotonically:
//!
//! ```text
//! EMPTY ──enqueue──▶ FULL ──dequeue──▶ TOMBSTONE
//! ```
//!
//! * `enqueue` installs `(FULL, value, pid, seq)` into the slot at the
//!   tail with one hardware CAS over the whole 48-byte record (the slot
//!   is 64-byte aligned, so the record never crosses a cache line and
//!   persists atomically), then helps advance the tail counter.
//! * `dequeue` CASes the head slot from `FULL` to
//!   `(TOMBSTONE, …, deq_pid, deq_seq)`, recording **who** consumed the
//!   item in the slot itself, then helps advance the head counter.
//!
//! Because slots are never recycled, each operation's effect is
//! *self-evidencing*: an interrupted `enqueue(pid, seq)` linearized iff
//! some slot carries its `(pid, seq)` tag, and an interrupted
//! `dequeue(pid, seq)` linearized iff some tombstone carries its
//! `(deq_pid, deq_seq)` tag. Recovery is a scan — no helping matrix is
//! needed (contrast with the CAS of §5, where successful values are
//! overwritten and the matrix `R` must preserve the evidence).
//! [`QueueVariant::NoScan`] removes the scan, the exact analogue of the
//! paper removing the matrix `R`: recovery then re-executes operations
//! that already linearized, and the FIFO verifier catches the duplicate
//! tags.
//!
//! Head and tail counters are only *hints* (they lag by at most the
//! number of in-flight operations and every operation helps repair
//! them); the slot array is the durable truth. The queue requires an
//! `eager_flush` region, like every §5 object: the algorithms are
//! specified for cache-less NVRAM.
//!
//! # Example
//!
//! ```
//! use pstack_nvram::PMemBuilder;
//! use pstack_heap::PHeap;
//! use pstack_recoverable::{QueueVariant, RecoverableQueue};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pmem = PMemBuilder::new().len(1 << 16).eager_flush(true).build_in_memory();
//! let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 16)?;
//! let q = RecoverableQueue::format(pmem, &heap, 8, QueueVariant::Nsrl)?;
//! assert!(q.enqueue(0, 1, 42)?);
//! assert_eq!(q.dequeue(1, 2)?, Some(42));
//! assert_eq!(q.dequeue(1, 3)?, None);
//! # Ok(())
//! # }
//! ```

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

const QUEUE_MAGIC: u64 = 0x5053_5155_4555_4531; // "PSQUEUE1"
const HEADER_LEN: u64 = 64;
const SLOT_STRIDE: u64 = 64;
/// Bytes of a slot record that participate in CAS updates.
const SLOT_RECORD_LEN: usize = 48;

const ST_EMPTY: u8 = 0;
const ST_FULL: u8 = 1;
const ST_TOMBSTONE: u8 = 2;

/// Sentinel for "no dequeuer yet" in a slot's dequeuer fields.
pub const NO_DEQ: u64 = u64::MAX;

const OFF_MAGIC: u64 = 0;
const OFF_CAPACITY: u64 = 8;
const OFF_HEAD: u64 = 16;
const OFF_TAIL: u64 = 24;

/// Which recovery procedure the queue runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueVariant {
    /// Correct NSRL recovery: scan the slot array for the interrupted
    /// operation's tag before re-executing.
    #[default]
    Nsrl,
    /// Injected bug mirroring §5.2's matrix removal: recovery skips the
    /// evidence scan and always re-executes — operations that already
    /// linearized are applied twice.
    NoScan,
}

impl QueueVariant {
    /// One-byte encoding for persistent configuration records.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            QueueVariant::Nsrl => 0,
            QueueVariant::NoScan => 1,
        }
    }

    /// Decodes [`QueueVariant::as_u8`].
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for unknown encodings.
    pub fn from_u8(v: u8) -> Result<Self, PError> {
        match v {
            0 => Ok(QueueVariant::Nsrl),
            1 => Ok(QueueVariant::NoScan),
            other => Err(PError::InvalidConfig(format!(
                "unknown queue variant encoding {other}"
            ))),
        }
    }
}

/// One slot's decoded content (see the module docs for the protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSlot {
    /// `EMPTY`, `FULL` or `TOMBSTONE` (exposed for diagnostics through
    /// the state predicate methods).
    state: u8,
    /// The enqueued value (meaningful unless empty).
    pub value: i64,
    /// Enqueuer process id.
    pub pid: u64,
    /// Enqueuer operation tag.
    pub seq: u64,
    /// Dequeuer process id ([`NO_DEQ`] until tombstoned).
    pub deq_pid: u64,
    /// Dequeuer operation tag ([`NO_DEQ`] until tombstoned).
    pub deq_seq: u64,
}

impl QueueSlot {
    fn empty() -> Self {
        QueueSlot {
            state: ST_EMPTY,
            value: 0,
            pid: 0,
            seq: 0,
            deq_pid: 0,
            deq_seq: 0,
        }
    }

    fn full(value: i64, pid: u64, seq: u64) -> Self {
        QueueSlot {
            state: ST_FULL,
            value,
            pid,
            seq,
            deq_pid: NO_DEQ,
            deq_seq: NO_DEQ,
        }
    }

    fn tombstoned(self, deq_pid: u64, deq_seq: u64) -> Self {
        QueueSlot {
            state: ST_TOMBSTONE,
            deq_pid,
            deq_seq,
            ..self
        }
    }

    /// `true` if no enqueue has touched the slot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.state == ST_EMPTY
    }

    /// `true` if the slot holds a value not yet dequeued.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.state == ST_FULL
    }

    /// `true` if the slot's value has been dequeued.
    #[must_use]
    pub fn is_tombstone(&self) -> bool {
        self.state == ST_TOMBSTONE
    }

    fn encode(&self) -> [u8; SLOT_RECORD_LEN] {
        let mut b = [0u8; SLOT_RECORD_LEN];
        b[0] = self.state;
        b[8..16].copy_from_slice(&self.value.to_le_bytes());
        b[16..24].copy_from_slice(&self.pid.to_le_bytes());
        b[24..32].copy_from_slice(&self.seq.to_le_bytes());
        b[32..40].copy_from_slice(&self.deq_pid.to_le_bytes());
        b[40..48].copy_from_slice(&self.deq_seq.to_le_bytes());
        b
    }

    fn decode(b: &[u8; SLOT_RECORD_LEN]) -> Self {
        QueueSlot {
            state: b[0],
            value: i64::from_le_bytes(b[8..16].try_into().expect("slice length")),
            pid: u64::from_le_bytes(b[16..24].try_into().expect("slice length")),
            seq: u64::from_le_bytes(b[24..32].try_into().expect("slice length")),
            deq_pid: u64::from_le_bytes(b[32..40].try_into().expect("slice length")),
            deq_seq: u64::from_le_bytes(b[40..48].try_into().expect("slice length")),
        }
    }
}

/// A recoverable bounded FIFO queue of `i64` values for any number of
/// processes. See the type-level docs above and the `queue` module
/// source header for the full protocol.
#[derive(Debug, Clone)]
pub struct RecoverableQueue {
    pmem: PMem,
    base: POffset,
    capacity: u64,
    variant: QueueVariant,
}

impl RecoverableQueue {
    /// Bytes of NVRAM the queue needs for `capacity` slots.
    #[must_use]
    pub fn required_len(capacity: u64) -> usize {
        (HEADER_LEN + capacity * SLOT_STRIDE) as usize
    }

    /// Allocates and persists an empty queue with room for `capacity`
    /// lifetime enqueues (slots are never recycled — the queue is a
    /// bounded log, which is what makes recovery a scan).
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for zero capacity or a region without
    /// `eager_flush`; heap/NVRAM errors otherwise.
    pub fn format(
        pmem: PMem,
        heap: &PHeap,
        capacity: u64,
        variant: QueueVariant,
    ) -> Result<Self, PError> {
        if capacity == 0 {
            return Err(PError::InvalidConfig(
                "queue capacity must be positive".into(),
            ));
        }
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "recoverable queue requires an eager-flush region (the algorithm assumes \
                 cache-less NVRAM, like §5's CAS)"
                    .into(),
            ));
        }
        let len = Self::required_len(capacity);
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.write_u64(base + OFF_MAGIC, QUEUE_MAGIC)?;
        pmem.write_u64(base + OFF_CAPACITY, capacity)?;
        pmem.flush(base, len)?;
        Ok(RecoverableQueue {
            pmem,
            base,
            capacity,
            variant,
        })
    }

    /// Re-attaches to a queue previously created at `base` (recovery
    /// boot).
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word,
    /// [`PError::InvalidConfig`] without `eager_flush`.
    pub fn open(pmem: PMem, base: POffset, variant: QueueVariant) -> Result<Self, PError> {
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "recoverable queue requires an eager-flush region".into(),
            ));
        }
        let magic = pmem.read_u64(base + OFF_MAGIC)?;
        if magic != QUEUE_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad queue magic {magic:#x} at {base}"
            )));
        }
        let capacity = pmem.read_u64(base + OFF_CAPACITY)?;
        Ok(RecoverableQueue {
            pmem,
            base,
            capacity,
            variant,
        })
    }

    /// The queue's base offset (persist it to find the queue again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Lifetime slot capacity.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The recovery variant this handle runs.
    #[must_use]
    pub fn variant(&self) -> QueueVariant {
        self.variant
    }

    fn slot_off(&self, i: u64) -> POffset {
        self.base + (HEADER_LEN + i * SLOT_STRIDE)
    }

    /// Reads slot `i`'s record.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn slot(&self, i: u64) -> Result<QueueSlot, PError> {
        assert!(
            i < self.capacity,
            "slot {i} out of range ({} slots)",
            self.capacity
        );
        let mut b = [0u8; SLOT_RECORD_LEN];
        self.pmem.read(self.slot_off(i), &mut b)?;
        Ok(QueueSlot::decode(&b))
    }

    fn cas_slot(&self, i: u64, expected: &QueueSlot, new: &QueueSlot) -> Result<bool, PError> {
        Ok(self
            .pmem
            .compare_exchange(self.slot_off(i), &expected.encode(), &new.encode())?)
    }

    fn counter(&self, off: u64) -> Result<u64, PError> {
        Ok(self.pmem.read_u64(self.base + off)?)
    }

    fn help_advance(&self, off: u64, from: u64) -> Result<(), PError> {
        // Failure means someone else already advanced it — fine.
        let _ = self.pmem.compare_exchange(
            self.base + off,
            &from.to_le_bytes(),
            &(from + 1).to_le_bytes(),
        )?;
        Ok(())
    }

    /// Tail hint (lags by at most the number of in-flight enqueues).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn tail_hint(&self) -> Result<u64, PError> {
        self.counter(OFF_TAIL)
    }

    /// Head hint (lags by at most the number of in-flight dequeues).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn head_hint(&self) -> Result<u64, PError> {
        self.counter(OFF_HEAD)
    }

    /// Enqueues `value` as process `pid` with unique tag `seq`. Returns
    /// `false` if the queue's lifetime capacity is exhausted.
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with
    /// [`RecoverableQueue::recover_enqueue`] after restart).
    pub fn enqueue(&self, pid: u64, seq: u64, value: i64) -> Result<bool, PError> {
        loop {
            let t = self.counter(OFF_TAIL)?;
            if t >= self.capacity {
                return Ok(false);
            }
            let s = self.slot(t)?;
            if s.is_empty() {
                if self.cas_slot(t, &QueueSlot::empty(), &QueueSlot::full(value, pid, seq))? {
                    self.help_advance(OFF_TAIL, t)?;
                    return Ok(true);
                }
                // Lost the slot race; the winner (or we) will advance
                // the tail — retry from a fresh read.
            } else {
                // Tail hint lags behind an installed slot: help.
                self.help_advance(OFF_TAIL, t)?;
            }
        }
    }

    /// Dequeues the oldest value as process `pid` with unique tag
    /// `seq`; `None` if the queue is empty (or fully drained).
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with
    /// [`RecoverableQueue::recover_dequeue`] after restart).
    pub fn dequeue(&self, pid: u64, seq: u64) -> Result<Option<i64>, PError> {
        loop {
            let h = self.counter(OFF_HEAD)?;
            if h >= self.capacity {
                return Ok(None);
            }
            let s = self.slot(h)?;
            if s.is_empty() {
                // Slots fill without gaps, so an empty head slot means
                // an empty queue at this moment.
                return Ok(None);
            }
            if s.is_full() {
                let tomb = s.tombstoned(pid, seq);
                if self.cas_slot(h, &s, &tomb)? {
                    self.help_advance(OFF_HEAD, h)?;
                    return Ok(Some(s.value));
                }
                // Lost the race for this item; retry.
            } else {
                // Tombstone at the head hint: help advance.
                self.help_advance(OFF_HEAD, h)?;
            }
        }
    }

    /// Completes an interrupted `enqueue(pid, seq, value)`: scans for
    /// the operation's tag (the slot array is the evidence) and
    /// re-executes only if it never linearized.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_enqueue(&self, pid: u64, seq: u64, value: i64) -> Result<bool, PError> {
        if self.variant == QueueVariant::Nsrl {
            for i in 0..self.capacity {
                let s = self.slot(i)?;
                if s.is_empty() {
                    break; // slots fill without gaps
                }
                if s.pid == pid && s.seq == seq {
                    return Ok(true);
                }
            }
        }
        self.enqueue(pid, seq, value)
    }

    /// Completes an interrupted `dequeue(pid, seq)`: scans the
    /// tombstones for the operation's dequeuer tag and re-executes only
    /// if it never linearized a removal.
    ///
    /// Note the asymmetry with CAS: a dequeue that observed an empty
    /// queue and crashed before reporting leaves no evidence — recovery
    /// re-executes it, which is correct because an "empty" answer that
    /// was never persisted is indistinguishable from the operation not
    /// having run (the same argument the paper makes for a frame lost
    /// before the marker flip).
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover_dequeue(&self, pid: u64, seq: u64) -> Result<Option<i64>, PError> {
        if self.variant == QueueVariant::Nsrl {
            for i in 0..self.capacity {
                let s = self.slot(i)?;
                if s.is_empty() {
                    break;
                }
                if s.is_tombstone() && s.deq_pid == pid && s.deq_seq == seq {
                    return Ok(Some(s.value));
                }
            }
        }
        self.dequeue(pid, seq)
    }

    /// Snapshot of every touched slot in linearization order (slot
    /// order *is* both the enqueue and the dequeue order — slots fill
    /// and tombstone monotonically). Used by the FIFO verifier.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn snapshot(&self) -> Result<Vec<QueueSlot>, PError> {
        let mut out = Vec::new();
        for i in 0..self.capacity {
            let s = self.slot(i)?;
            if s.is_empty() {
                break;
            }
            out.push(s);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn fixture(capacity: u64, variant: QueueVariant) -> (PMem, PHeap, RecoverableQueue) {
        let pmem = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 18).unwrap();
        let q = RecoverableQueue::format(pmem.clone(), &heap, capacity, variant).unwrap();
        (pmem, heap, q)
    }

    #[test]
    fn fifo_order_single_process() {
        let (_, _, q) = fixture(8, QueueVariant::Nsrl);
        for (i, v) in [10, 20, 30].iter().enumerate() {
            assert!(q.enqueue(0, i as u64 + 1, *v).unwrap());
        }
        assert_eq!(q.dequeue(0, 10).unwrap(), Some(10));
        assert_eq!(q.dequeue(0, 11).unwrap(), Some(20));
        assert_eq!(q.dequeue(0, 12).unwrap(), Some(30));
        assert_eq!(q.dequeue(0, 13).unwrap(), None);
    }

    #[test]
    fn capacity_is_lifetime_bounded() {
        let (_, _, q) = fixture(2, QueueVariant::Nsrl);
        assert!(q.enqueue(0, 1, 1).unwrap());
        assert!(q.enqueue(0, 2, 2).unwrap());
        assert!(
            !q.enqueue(0, 3, 3).unwrap(),
            "third enqueue must report full"
        );
        // Dequeuing does not free capacity: slots are never recycled.
        assert_eq!(q.dequeue(0, 4).unwrap(), Some(1));
        assert!(!q.enqueue(0, 5, 5).unwrap());
    }

    #[test]
    fn eager_flush_region_is_required() {
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        assert!(matches!(
            RecoverableQueue::format(pmem, &heap, 4, QueueVariant::Nsrl),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn open_round_trips_and_rejects_garbage() {
        let (pmem, heap, q) = fixture(4, QueueVariant::Nsrl);
        q.enqueue(0, 1, 7).unwrap();
        let q2 = RecoverableQueue::open(pmem.clone(), q.base(), QueueVariant::Nsrl).unwrap();
        assert_eq!(q2.capacity(), 4);
        assert_eq!(q2.dequeue(1, 2).unwrap(), Some(7));
        let junk = heap.alloc_zeroed(128).unwrap();
        assert!(matches!(
            RecoverableQueue::open(pmem, junk, QueueVariant::Nsrl),
            Err(PError::CorruptStack(_))
        ));
    }

    #[test]
    fn recover_enqueue_sees_linearized_op() {
        let (_, _, q) = fixture(4, QueueVariant::Nsrl);
        assert!(q.enqueue(3, 9, 77).unwrap());
        // Crash "happened" after the slot CAS: recovery confirms without
        // enqueueing again.
        assert!(q.recover_enqueue(3, 9, 77).unwrap());
        assert_eq!(q.snapshot().unwrap().len(), 1);
    }

    #[test]
    fn recover_enqueue_reexecutes_unlinearized_op() {
        let (_, _, q) = fixture(4, QueueVariant::Nsrl);
        assert!(q.recover_enqueue(3, 9, 77).unwrap());
        assert_eq!(q.dequeue(0, 1).unwrap(), Some(77));
    }

    #[test]
    fn recover_dequeue_sees_tombstone_evidence() {
        let (_, _, q) = fixture(4, QueueVariant::Nsrl);
        q.enqueue(0, 1, 5).unwrap();
        assert_eq!(q.dequeue(2, 8).unwrap(), Some(5));
        // The answer was lost with the crash; the tombstone restores it.
        assert_eq!(q.recover_dequeue(2, 8).unwrap(), Some(5));
        // And nothing was double-consumed.
        assert_eq!(q.dequeue(2, 9).unwrap(), None);
    }

    #[test]
    fn recover_dequeue_on_empty_queue_reexecutes_to_none() {
        let (_, _, q) = fixture(4, QueueVariant::Nsrl);
        assert_eq!(q.recover_dequeue(1, 1).unwrap(), None);
    }

    #[test]
    fn noscan_variant_double_enqueues() {
        // The §5.2-style negative control: without the evidence scan an
        // already-linearized enqueue is re-executed, leaving two slots
        // with the same (pid, seq) tag.
        let (_, _, q) = fixture(4, QueueVariant::NoScan);
        assert!(q.enqueue(0, 1, 42).unwrap());
        assert!(q.recover_enqueue(0, 1, 42).unwrap());
        let snap = q.snapshot().unwrap();
        assert_eq!(snap.len(), 2, "double application must be visible");
        assert_eq!(snap[0].pid, snap[1].pid);
        assert_eq!(snap[0].seq, snap[1].seq);
        // The correct variant does not duplicate.
        let (_, _, q) = fixture(4, QueueVariant::Nsrl);
        assert!(q.enqueue(0, 1, 42).unwrap());
        assert!(q.recover_enqueue(0, 1, 42).unwrap());
        assert_eq!(q.snapshot().unwrap().len(), 1);
    }

    #[test]
    fn noscan_variant_double_dequeues() {
        let (_, _, q) = fixture(4, QueueVariant::NoScan);
        q.enqueue(0, 1, 1).unwrap();
        q.enqueue(0, 2, 2).unwrap();
        assert_eq!(q.dequeue(1, 3).unwrap(), Some(1));
        // Recovery re-executes and wrongly consumes a second item under
        // the same tag.
        assert_eq!(q.recover_dequeue(1, 3).unwrap(), Some(2));
        let snap = q.snapshot().unwrap();
        let tags: Vec<(u64, u64)> = snap
            .iter()
            .filter(|s| s.is_tombstone())
            .map(|s| (s.deq_pid, s.deq_seq))
            .collect();
        assert_eq!(tags, vec![(1, 3), (1, 3)], "duplicate dequeuer tag");
    }

    #[test]
    fn crash_point_enumeration_enqueue_recovery_is_exact() {
        // For every crash point inside an enqueue, recovery must
        // complete the operation exactly once.
        let probe = || fixture(4, QueueVariant::Nsrl);
        let (pmem, _, q) = probe();
        let e0 = pmem.events();
        assert!(q.enqueue(0, 1, 11).unwrap());
        let total = pmem.events() - e0;
        assert!(total >= 1);

        for k in 0..total {
            let (pmem, _, q) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = q.enqueue(0, 1, 11).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let q2 = RecoverableQueue::open(pmem2, q.base(), QueueVariant::Nsrl).unwrap();
            assert!(q2.recover_enqueue(0, 1, 11).unwrap(), "crash at event {k}");
            let snap = q2.snapshot().unwrap();
            assert_eq!(snap.len(), 1, "crash at event {k}: exactly one slot");
            assert_eq!(snap[0].value, 11);
        }
    }

    #[test]
    fn crash_point_enumeration_dequeue_recovery_is_exact() {
        let probe = || {
            let (pmem, heap, q) = fixture(4, QueueVariant::Nsrl);
            q.enqueue(0, 1, 21).unwrap();
            q.enqueue(0, 2, 22).unwrap();
            (pmem, heap, q)
        };
        let (pmem, _, q) = probe();
        let e0 = pmem.events();
        assert_eq!(q.dequeue(1, 5).unwrap(), Some(21));
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, _, q) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = q.dequeue(1, 5).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let q2 = RecoverableQueue::open(pmem2, q.base(), QueueVariant::Nsrl).unwrap();
            let v = q2.recover_dequeue(1, 5).unwrap();
            assert_eq!(v, Some(21), "crash at event {k}: FIFO answer");
            // The second item is untouched and dequeues next.
            assert_eq!(q2.dequeue(1, 6).unwrap(), Some(22), "crash at event {k}");
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let (_, _, q) = fixture(256, QueueVariant::Nsrl);
        let producers = 4u64;
        let per = 32u64;
        let consumed = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..producers {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let v = (p * 1000 + i) as i64;
                        assert!(q.enqueue(p, i + 1, v).unwrap());
                    }
                });
            }
            for c in 0..2u64 {
                let q = q.clone();
                let consumed = &consumed;
                s.spawn(move || {
                    let mut got = Vec::new();
                    let mut seq = 0;
                    while got.len() < (producers * per / 2) as usize {
                        seq += 1;
                        if let Some(v) = q.dequeue(100 + c, seq).unwrap() {
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    consumed.lock().unwrap().extend(got);
                });
            }
        });
        let mut all = consumed.into_inner().unwrap();
        assert_eq!(all.len(), (producers * per) as usize);
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            (producers * per) as usize,
            "no item lost or duplicated"
        );
        // Per-producer FIFO: slot order must preserve each producer's
        // program order.
        let snap = q.snapshot().unwrap();
        for p in 0..producers {
            let seqs: Vec<u64> = snap.iter().filter(|s| s.pid == p).map(|s| s.seq).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "producer {p} order violated");
        }
    }

    #[test]
    fn slot_codec_round_trips() {
        let s = QueueSlot::full(-42, 3, 99).tombstoned(7, 123);
        assert_eq!(QueueSlot::decode(&s.encode()), s);
        assert!(s.is_tombstone());
        assert!(QueueSlot::empty().is_empty());
    }

    #[test]
    fn required_len_covers_slots() {
        assert_eq!(RecoverableQueue::required_len(1), 64 + 64);
        assert_eq!(RecoverableQueue::required_len(8), 64 + 8 * 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_bounds_are_enforced() {
        let (_, _, q) = fixture(2, QueueVariant::Nsrl);
        let _ = q.slot(2);
    }
}
