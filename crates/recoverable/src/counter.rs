//! A recoverable counter with per-process slots.
//!
//! Each process owns a 64-aligned slot holding `(count, last_seq)`;
//! an increment persists both words with one atomic line flush. The
//! recover dual re-runs the increment, and the sequence tag makes it
//! idempotent: if the slot already records `seq`, the increment took
//! effect before the crash and is not applied again. The counter value
//! is the sum of all slots, as in classic shared counters.

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

const SLOT_STRIDE: u64 = 64;

/// A crash-recoverable counter for `n` processes.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_recoverable::RecoverableCounter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 14).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 14)?;
/// let counter = RecoverableCounter::format(pmem, &heap, 2)?;
/// counter.increment(0, 1)?;
/// counter.increment(1, 2)?;
/// counter.recover_increment(1, 2)?; // already applied: no-op
/// assert_eq!(counter.read()?, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RecoverableCounter {
    pmem: PMem,
    base: POffset,
    n: usize,
}

impl RecoverableCounter {
    /// Bytes of NVRAM needed for `n` processes.
    #[must_use]
    pub fn required_len(n: usize) -> usize {
        (n as u64 * SLOT_STRIDE) as usize
    }

    /// Allocates and zeroes the per-process slots.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for zero processes; heap or NVRAM
    /// errors otherwise.
    pub fn format(pmem: PMem, heap: &PHeap, n: usize) -> Result<Self, PError> {
        if n == 0 {
            return Err(PError::InvalidConfig("need at least one process".into()));
        }
        let len = Self::required_len(n);
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.flush(base, len)?;
        Ok(RecoverableCounter { pmem, base, n })
    }

    /// Re-attaches to a counter created at `base` for `n` processes.
    #[must_use]
    pub fn open(pmem: PMem, base: POffset, n: usize) -> Self {
        RecoverableCounter { pmem, base, n }
    }

    /// The counter's base offset.
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    fn slot(&self, pid: usize) -> POffset {
        self.base + pid as u64 * SLOT_STRIDE
    }

    /// Increments process `pid`'s slot, tagged with the operation's
    /// unique `seq`. Calling it again with the same `seq` (as the
    /// recover dual does) has no further effect.
    ///
    /// # Errors
    ///
    /// A propagated crash.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n` or `seq` is zero (zero marks "no operation
    /// yet").
    pub fn increment(&self, pid: usize, seq: u64) -> Result<(), PError> {
        assert!(
            pid < self.n,
            "pid {pid} out of range ({} processes)",
            self.n
        );
        assert_ne!(seq, 0, "sequence tags start at 1");
        let slot = self.slot(pid);
        let count = self.pmem.read_u64(slot)?;
        let last_seq = self.pmem.read_u64(slot + 8u64)?;
        if last_seq == seq {
            return Ok(()); // already applied before the crash
        }
        let mut buf = [0u8; 16];
        buf[..8].copy_from_slice(&(count + 1).to_le_bytes());
        buf[8..].copy_from_slice(&seq.to_le_bytes());
        self.pmem.write(slot, &buf)?;
        self.pmem.flush(slot, 16)?;
        Ok(())
    }

    /// Recover dual of [`RecoverableCounter::increment`].
    ///
    /// # Errors
    ///
    /// A propagated crash.
    pub fn recover_increment(&self, pid: usize, seq: u64) -> Result<(), PError> {
        self.increment(pid, seq)
    }

    /// Sums the per-process slots.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn read(&self) -> Result<u64, PError> {
        let mut total = 0u64;
        for pid in 0..self.n {
            total += self.pmem.read_u64(self.slot(pid))?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn fixture(n: usize) -> (PMem, RecoverableCounter) {
        let pmem = PMemBuilder::new()
            .len(1 << 14)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 14).unwrap();
        let c = RecoverableCounter::format(pmem.clone(), &heap, n).unwrap();
        (pmem, c)
    }

    #[test]
    fn increments_sum_across_processes() {
        let (_, c) = fixture(3);
        c.increment(0, 1).unwrap();
        c.increment(1, 1).unwrap();
        c.increment(2, 1).unwrap();
        c.increment(0, 2).unwrap();
        assert_eq!(c.read().unwrap(), 4);
    }

    #[test]
    fn same_seq_is_applied_once() {
        let (_, c) = fixture(1);
        c.increment(0, 7).unwrap();
        c.recover_increment(0, 7).unwrap();
        c.recover_increment(0, 7).unwrap();
        assert_eq!(c.read().unwrap(), 1);
    }

    #[test]
    fn crash_point_enumeration_increment_recovers_exactly_once() {
        let probe = || fixture(1);
        let (pmem, c) = probe();
        let e0 = pmem.events();
        c.increment(0, 1).unwrap();
        let total = pmem.events() - e0;

        for k in 0..total {
            let (pmem, c) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = c.increment(0, 1).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let c2 = RecoverableCounter::open(pmem2, c.base(), 1);
            c2.recover_increment(0, 1).unwrap();
            assert_eq!(c2.read().unwrap(), 1, "crash at event {k}");
        }
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let (_, c) = fixture(4);
        std::thread::scope(|s| {
            for pid in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for seq in 1..=100u64 {
                        c.increment(pid, seq).unwrap();
                    }
                });
            }
        });
        assert_eq!(c.read().unwrap(), 400);
    }

    #[test]
    #[should_panic(expected = "sequence tags start at 1")]
    fn zero_seq_is_rejected() {
        let (_, c) = fixture(1);
        let _ = c.increment(0, 0);
    }
}
