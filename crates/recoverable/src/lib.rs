//! Recoverable (NSRL) primitives built on the persistent-stack runtime.
//!
//! §5 of *"Execution of NVRAM Programs with Persistent Stack"* uses the
//! runtime to implement and verify the **recoverable CAS** algorithm of
//! Attiya, Ben-Baruch and Hendler (PODC'18, reference 8 of the
//! paper). This crate provides:
//!
//! * [`RecoverableCas`] — the CAS algorithm with its N×N matrix `R` of
//!   overwrite evidence, plus the paper's deliberately *buggy* variant
//!   with the matrix removed ([`CasVariant::NoMatrix`]), which §5.2
//!   shows produces non-serializable executions;
//! * [`RecoverableCounter`], [`RecoverableRegister`],
//!   [`RecoverableQueue`] and [`RecoverableTas`] — further NSRL-style
//!   primitives (the paper's future-work direction 1), including the
//!   queue's own injected-bug variant ([`QueueVariant::NoScan`]) for
//!   the §5.2-style negative control;
//! * [`TaskTable`] — the persistent table of operation descriptors and
//!   answers that lets the §5.2 experiment re-enqueue unfinished
//!   operations after every restart;
//! * [`CasTaskFunction`] / [`CounterTaskFunction`] — glue registering
//!   these operations as recoverable functions on the persistent stack.
//!
//! The CAS algorithm assumes NVRAM **without** a volatile cache (§5:
//! "we should flush each written cache line immediately after the
//! corresponding write"), so [`RecoverableCas`] insists on a region
//! built with `eager_flush(true)`; every value it writes is placed so
//! that it never crosses a cache-line border.

mod cas;
mod cell;
mod counter;
mod funcs;
mod queue;
mod queue_funcs;
mod register;
mod tas;
mod tasks;

pub use cas::{CasVariant, RecoverableCas};
pub use cell::{TaggedValue, INIT_PID, TAGGED_LEN};
pub use counter::RecoverableCounter;
pub use funcs::{CasTaskFunction, CounterTaskFunction, CAS_TASK_FUNC_ID, COUNTER_TASK_FUNC_ID};
pub use queue::{QueueSlot, QueueVariant, RecoverableQueue, NO_DEQ};
pub use queue_funcs::{
    QueueOpTable, QueueTaskAnswer, QueueTaskFunction, QueueTaskOp, QueueTaskResult,
    QUEUE_TASK_FUNC_ID,
};
pub use register::RecoverableRegister;
pub use tas::{RecoverableTas, NO_WINNER};
pub use tasks::TaskTable;
