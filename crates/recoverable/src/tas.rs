//! A recoverable one-shot test-and-set — the simplest NSRL primitive,
//! included as the counterpoint to the CAS of §5.
//!
//! The object is a single padded cell holding the winner's process id
//! (initially [`NO_WINNER`]). `test_and_set` CASes the cell from
//! [`NO_WINNER`] to the caller's id; whoever lands the CAS wins, every
//! other caller loses.
//!
//! **Why no matrix?** The CAS register of §5 needs the N×N matrix `R`
//! because a successful CAS's value can be *overwritten* by the next
//! CAS — the evidence disappears from the register, so the overwriter
//! must preserve it. A TAS winner is never overwritten: the win is
//! permanently legible in the cell itself, so recovery is a single
//! read. This is exactly the design note the queue module makes about
//! self-evidencing state (there via never-recycled slots), reduced to
//! its smallest possible example.

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

/// Cell content before any process wins.
pub const NO_WINNER: u64 = u64::MAX;

/// A recoverable one-shot test-and-set object.
///
/// Requires an `eager_flush` region like every §5 object (the
/// algorithms are specified for cache-less NVRAM).
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_recoverable::RecoverableTas;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 12).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 12)?;
/// let tas = RecoverableTas::format(pmem, &heap)?;
/// assert!(tas.test_and_set(3)?);
/// assert!(!tas.test_and_set(5)?);
/// assert_eq!(tas.winner()?, Some(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RecoverableTas {
    pmem: PMem,
    base: POffset,
}

impl RecoverableTas {
    /// Bytes of NVRAM the object needs (one padded cell).
    #[must_use]
    pub fn required_len() -> usize {
        64
    }

    /// Allocates and persists an unclaimed TAS cell.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] without `eager_flush`; heap/NVRAM
    /// errors otherwise.
    pub fn format(pmem: PMem, heap: &PHeap) -> Result<Self, PError> {
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "recoverable TAS requires an eager-flush region".into(),
            ));
        }
        let base = heap.alloc_aligned(Self::required_len(), 64)?;
        pmem.write_u64(base, NO_WINNER)?;
        pmem.flush(base, 8)?;
        Ok(RecoverableTas { pmem, base })
    }

    /// Re-attaches to a cell previously created at `base`.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] without `eager_flush`.
    pub fn open(pmem: PMem, base: POffset) -> Result<Self, PError> {
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "recoverable TAS requires an eager-flush region".into(),
            ));
        }
        Ok(RecoverableTas { pmem, base })
    }

    /// The object's base offset (persist it to find the cell again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Attempts to win the TAS as process `pid`. Returns `true` iff
    /// this call (or an earlier call by the same process — the
    /// operation is idempotent per process) claimed the cell.
    ///
    /// # Errors
    ///
    /// A propagated crash (complete with
    /// [`RecoverableTas::recover`] after restart).
    ///
    /// # Panics
    ///
    /// Panics if `pid` equals the [`NO_WINNER`] sentinel.
    pub fn test_and_set(&self, pid: u64) -> Result<bool, PError> {
        assert_ne!(pid, NO_WINNER, "pid collides with the NO_WINNER sentinel");
        if self
            .pmem
            .compare_exchange(self.base, &NO_WINNER.to_le_bytes(), &pid.to_le_bytes())?
        {
            return Ok(true);
        }
        // Lost — or already won earlier (idempotence).
        Ok(self.pmem.read_u64(self.base)? == pid)
    }

    /// Completes an interrupted `test_and_set(pid)`. A single read
    /// suffices: if the cell holds `pid`, the operation won; if it
    /// holds another id, it lost; if it is unclaimed, it never
    /// linearized and is re-executed.
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    pub fn recover(&self, pid: u64) -> Result<bool, PError> {
        match self.pmem.read_u64(self.base)? {
            w if w == pid => Ok(true),
            NO_WINNER => self.test_and_set(pid),
            _ => Ok(false),
        }
    }

    /// The winning process id, if the cell has been claimed.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn winner(&self) -> Result<Option<u64>, PError> {
        match self.pmem.read_u64(self.base)? {
            NO_WINNER => Ok(None),
            w => Ok(Some(w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn fixture() -> (PMem, PHeap, RecoverableTas) {
        let pmem = PMemBuilder::new()
            .len(1 << 14)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 14).unwrap();
        let tas = RecoverableTas::format(pmem.clone(), &heap).unwrap();
        (pmem, heap, tas)
    }

    #[test]
    fn first_caller_wins_rest_lose() {
        let (_, _, tas) = fixture();
        assert_eq!(tas.winner().unwrap(), None);
        assert!(tas.test_and_set(1).unwrap());
        assert!(!tas.test_and_set(2).unwrap());
        assert!(!tas.test_and_set(3).unwrap());
        assert_eq!(tas.winner().unwrap(), Some(1));
    }

    #[test]
    fn winner_retry_is_idempotent() {
        let (_, _, tas) = fixture();
        assert!(tas.test_and_set(1).unwrap());
        assert!(tas.test_and_set(1).unwrap(), "winner re-running still wins");
    }

    #[test]
    fn recover_reports_win_loss_or_reexecutes() {
        let (_, _, tas) = fixture();
        // Never ran: recovery re-executes and wins.
        assert!(tas.recover(4).unwrap());
        // A loser's recovery reports the loss.
        assert!(!tas.recover(5).unwrap());
        // The winner's recovery keeps reporting the win.
        assert!(tas.recover(4).unwrap());
    }

    #[test]
    fn eager_flush_region_is_required() {
        let pmem = PMemBuilder::new().len(1 << 12).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 12).unwrap();
        assert!(matches!(
            RecoverableTas::format(pmem.clone(), &heap),
            Err(PError::InvalidConfig(_))
        ));
        assert!(matches!(
            RecoverableTas::open(pmem, POffset::new(0)),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn crash_point_enumeration_recovery_is_exact() {
        let (pmem, _, tas) = fixture();
        let e0 = pmem.events();
        assert!(tas.test_and_set(1).unwrap());
        let total = pmem.events() - e0;
        assert!(total >= 1);
        for k in 0..total {
            let (pmem, _, tas) = fixture();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = tas.test_and_set(1).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let tas2 = RecoverableTas::open(pmem2, tas.base()).unwrap();
            assert!(tas2.recover(1).unwrap(), "crash at event {k}");
            assert_eq!(tas2.winner().unwrap(), Some(1));
        }
    }

    #[test]
    fn concurrent_racers_produce_exactly_one_winner() {
        let (_, _, tas) = fixture();
        let wins = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for pid in 0..8u64 {
                let tas = tas.clone();
                let wins = &wins;
                s.spawn(move || {
                    if tas.test_and_set(pid).unwrap() {
                        wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert!(tas.winner().unwrap().is_some());
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_pid_is_rejected() {
        let (_, _, tas) = fixture();
        let _ = tas.test_and_set(NO_WINNER);
    }
}
