//! Tagged values: making CAS writes distinguishable.
//!
//! The recoverable-CAS recovery procedure must decide whether *its own*
//! write is (or was) in the register. Logical values can repeat — the
//! paper's narrow-range experiment draws from `[-10, 10]` precisely to
//! force duplicates — so every write is tagged with the writing process
//! and a per-operation sequence number, making the written *pair*
//! unique. The serializability verifier later strips the tags and works
//! on logical values.

use pstack_nvram::{MemError, PMem, POffset};

/// Encoded byte length of a [`TaggedValue`].
pub const TAGGED_LEN: usize = 24;

/// Process-id tag of the initial register value (written by no process).
pub const INIT_PID: u64 = u64::MAX;

/// A logical value tagged with its writer and operation sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TaggedValue {
    /// The logical register value.
    pub value: i64,
    /// Writing process id, or [`INIT_PID`] for the initial value.
    pub pid: u64,
    /// Writer-chosen sequence number making the pair unique.
    pub seq: u64,
}

impl TaggedValue {
    /// The initial register content.
    #[must_use]
    pub fn initial(value: i64) -> Self {
        TaggedValue {
            value,
            pid: INIT_PID,
            seq: 0,
        }
    }

    /// Encodes to [`TAGGED_LEN`] little-endian bytes.
    #[must_use]
    pub fn encode(&self) -> [u8; TAGGED_LEN] {
        let mut buf = [0u8; TAGGED_LEN];
        buf[..8].copy_from_slice(&self.value.to_le_bytes());
        buf[8..16].copy_from_slice(&self.pid.to_le_bytes());
        buf[16..24].copy_from_slice(&self.seq.to_le_bytes());
        buf
    }

    /// Decodes from [`TAGGED_LEN`] little-endian bytes.
    #[must_use]
    pub fn decode(buf: &[u8; TAGGED_LEN]) -> Self {
        TaggedValue {
            value: i64::from_le_bytes(buf[..8].try_into().expect("slice length 8")),
            pid: u64::from_le_bytes(buf[8..16].try_into().expect("slice length 8")),
            seq: u64::from_le_bytes(buf[16..24].try_into().expect("slice length 8")),
        }
    }

    /// Reads a tagged value from NVRAM.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn read_from(pmem: &PMem, off: POffset) -> Result<Self, MemError> {
        let mut buf = [0u8; TAGGED_LEN];
        pmem.read(off, &mut buf)?;
        Ok(Self::decode(&buf))
    }

    /// Writes and flushes a tagged value to NVRAM.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn write_to(&self, pmem: &PMem, off: POffset) -> Result<(), MemError> {
        pmem.write(off, &self.encode())?;
        pmem.flush(off, TAGGED_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::PMemBuilder;

    #[test]
    fn encode_decode_round_trip() {
        let v = TaggedValue {
            value: -42,
            pid: 3,
            seq: 17,
        };
        assert_eq!(TaggedValue::decode(&v.encode()), v);
    }

    #[test]
    fn initial_value_uses_sentinel_pid() {
        let v = TaggedValue::initial(5);
        assert_eq!(v.pid, INIT_PID);
        assert_eq!(v.value, 5);
        assert_eq!(v.seq, 0);
    }

    #[test]
    fn nvram_round_trip() {
        let pmem = PMemBuilder::new().len(1024).build_in_memory();
        let v = TaggedValue {
            value: i64::MIN,
            pid: 1,
            seq: u64::MAX,
        };
        v.write_to(&pmem, POffset::new(64)).unwrap();
        assert_eq!(TaggedValue::read_from(&pmem, POffset::new(64)).unwrap(), v);
    }

    #[test]
    fn same_logical_value_different_tags_differ() {
        let a = TaggedValue {
            value: 7,
            pid: 0,
            seq: 1,
        };
        let b = TaggedValue {
            value: 7,
            pid: 0,
            seq: 2,
        };
        assert_ne!(a.encode(), b.encode());
    }
}
