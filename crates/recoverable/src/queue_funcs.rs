//! Queue workload descriptors and the recoverable function gluing the
//! [`RecoverableQueue`] to the persistent-stack runtime — the queue
//! analogue of the §5.2 CAS machinery ([`crate::TaskTable`] +
//! [`crate::CasTaskFunction`]).

use std::sync::Arc;

use pstack_core::{PContext, PError, RecoverableFunction, RetBytes};
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::queue::RecoverableQueue;

/// Function id under which [`QueueTaskFunction`] is registered.
pub const QUEUE_TASK_FUNC_ID: u64 = 0x0FFE;

const TABLE_MAGIC: u64 = 0x5053_5155_5441_4231; // "PSQUTAB1"
const HEADER_LEN: u64 = 16;
const ENTRY_STRIDE: u64 = 32;

const KIND_ENQ: u8 = 0;
const KIND_DEQ: u8 = 1;

const ST_DONE: u8 = 1;

/// One queue operation descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueTaskOp {
    /// Enqueue the given value.
    Enqueue(i64),
    /// Dequeue one value.
    Dequeue,
}

/// A completed descriptor's answer, with the worker that executed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueTaskAnswer {
    /// Worker (process) id that completed the operation — together with
    /// the descriptor index this is the operation's `(pid, seq)` tag.
    pub executor: u32,
    /// The operation's result.
    pub result: QueueTaskResult,
}

/// The result payload of a completed queue descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueTaskResult {
    /// Enqueue answer: accepted, or rejected because the queue's
    /// lifetime capacity was exhausted.
    Accepted(bool),
    /// Dequeue answer.
    Dequeued(Option<i64>),
}

/// A persistent table of queue operation descriptors and answers,
/// driving re-enqueue after restarts exactly like the §5.2 CAS table.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_recoverable::{QueueOpTable, QueueTaskOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 14).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 14)?;
/// let ops = [QueueTaskOp::Enqueue(5), QueueTaskOp::Dequeue];
/// let table = QueueOpTable::format(pmem, &heap, &ops)?;
/// assert_eq!(table.pending()?, vec![0, 1]);
/// assert_eq!(table.op(1)?, QueueTaskOp::Dequeue);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QueueOpTable {
    pmem: PMem,
    base: POffset,
    len: usize,
}

impl QueueOpTable {
    /// Bytes of NVRAM needed for `n` descriptors.
    #[must_use]
    pub fn required_len(n: usize) -> usize {
        (HEADER_LEN + n as u64 * ENTRY_STRIDE) as usize
    }

    /// Allocates and persists a table holding `ops`, all pending.
    ///
    /// # Errors
    ///
    /// Heap or NVRAM errors, or [`PError::InvalidConfig`] for an empty
    /// op list.
    pub fn format(pmem: PMem, heap: &PHeap, ops: &[QueueTaskOp]) -> Result<Self, PError> {
        if ops.is_empty() {
            return Err(PError::InvalidConfig(
                "queue op table needs at least one descriptor".into(),
            ));
        }
        let len = Self::required_len(ops.len());
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.write_u64(base, TABLE_MAGIC)?;
        pmem.write_u64(base + 8u64, ops.len() as u64)?;
        for (i, op) in ops.iter().enumerate() {
            let e = Self::entry_off(base, i);
            match op {
                QueueTaskOp::Enqueue(v) => {
                    pmem.write_u8(e, KIND_ENQ)?;
                    pmem.write_i64(e + 8u64, *v)?;
                }
                QueueTaskOp::Dequeue => {
                    pmem.write_u8(e, KIND_DEQ)?;
                }
            }
        }
        pmem.flush(base, len)?;
        Ok(QueueOpTable {
            pmem,
            base,
            len: ops.len(),
        })
    }

    /// Re-attaches to a table created at `base`.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word.
    pub fn open(pmem: PMem, base: POffset) -> Result<Self, PError> {
        let magic = pmem.read_u64(base)?;
        if magic != TABLE_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad queue-op-table magic {magic:#x} at {base}"
            )));
        }
        let len = pmem.read_u64(base + 8u64)? as usize;
        Ok(QueueOpTable { pmem, base, len })
    }

    fn entry_off(base: POffset, idx: usize) -> POffset {
        base + (HEADER_LEN + idx as u64 * ENTRY_STRIDE)
    }

    fn entry(&self, idx: usize) -> Result<POffset, PError> {
        if idx >= self.len {
            return Err(PError::InvalidConfig(format!(
                "descriptor index {idx} out of range ({} descriptors)",
                self.len
            )));
        }
        Ok(Self::entry_off(self.base, idx))
    }

    /// The table's base offset (persist it to find the table again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the table holds no descriptors (never happens for
    /// tables built through [`QueueOpTable::format`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads descriptor `idx`'s operation.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn op(&self, idx: usize) -> Result<QueueTaskOp, PError> {
        let e = self.entry(idx)?;
        match self.pmem.read_u8(e)? {
            KIND_ENQ => Ok(QueueTaskOp::Enqueue(self.pmem.read_i64(e + 8u64)?)),
            KIND_DEQ => Ok(QueueTaskOp::Dequeue),
            other => Err(PError::CorruptStack(format!(
                "descriptor {idx} has unknown kind {other}"
            ))),
        }
    }

    /// Reads descriptor `idx`'s answer, if it completed.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn result(&self, idx: usize) -> Result<Option<QueueTaskAnswer>, PError> {
        let e = self.entry(idx)?;
        if self.pmem.read_u8(e + 1u64)? != ST_DONE {
            return Ok(None);
        }
        let executor = self.pmem.read_u32(e + 4u64)?;
        let result = match self.pmem.read_u8(e)? {
            KIND_ENQ => QueueTaskResult::Accepted(self.pmem.read_u8(e + 3u64)? != 0),
            _ => {
                if self.pmem.read_u8(e + 2u64)? != 0 {
                    QueueTaskResult::Dequeued(Some(self.pmem.read_i64(e + 16u64)?))
                } else {
                    QueueTaskResult::Dequeued(None)
                }
            }
        };
        Ok(Some(QueueTaskAnswer { executor, result }))
    }

    /// Persists descriptor `idx`'s answer. The answer payload is
    /// persisted before the one-byte done flag, so a crash in between
    /// leaves the descriptor pending and recovery recomputes the
    /// answer — the same discipline as the stack's marker flips.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn mark_done(
        &self,
        idx: usize,
        executor: u32,
        result: QueueTaskResult,
    ) -> Result<(), PError> {
        let e = self.entry(idx)?;
        self.pmem.write_u32(e + 4u64, executor)?;
        match result {
            QueueTaskResult::Accepted(ok) => {
                self.pmem.write_u8(e + 3u64, u8::from(ok))?;
            }
            QueueTaskResult::Dequeued(None) => {
                self.pmem.write_u8(e + 2u64, 0)?;
            }
            QueueTaskResult::Dequeued(Some(v)) => {
                self.pmem.write_i64(e + 16u64, v)?;
                self.pmem.write_u8(e + 2u64, 1)?;
            }
        }
        self.pmem.flush(e, ENTRY_STRIDE as usize)?;
        self.pmem.write_u8(e + 1u64, ST_DONE)?;
        self.pmem.flush(e + 1u64, 1)?;
        Ok(())
    }

    /// Indexes of descriptors that have not completed, in table order.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn pending(&self) -> Result<Vec<usize>, PError> {
        let mut out = Vec::new();
        for i in 0..self.len {
            if self.pmem.read_u8(self.entry(i)? + 1u64)? != ST_DONE {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// All answers, `None` for still-pending descriptors.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn results(&self) -> Result<Vec<Option<QueueTaskAnswer>>, PError> {
        (0..self.len).map(|i| self.result(i)).collect()
    }
}

/// Executes descriptor `idx` of a [`QueueOpTable`] against a
/// [`RecoverableQueue`].
///
/// * `call` runs the enqueue/dequeue tagged `(worker pid, idx + 1)` and
///   persists the answer in the table;
/// * `recover` first checks the table (the answer may already be
///   durable), then runs the queue's *recovery* procedure — which scans
///   the slot evidence before re-executing — and persists its verdict.
#[derive(Clone)]
pub struct QueueTaskFunction {
    queue: RecoverableQueue,
    table: QueueOpTable,
}

impl QueueTaskFunction {
    /// Bundles a queue and its descriptor table.
    #[must_use]
    pub fn new(queue: RecoverableQueue, table: QueueOpTable) -> Self {
        QueueTaskFunction { queue, table }
    }

    /// Convenience: wraps into the `Arc<dyn RecoverableFunction>` shape
    /// the registry wants.
    #[must_use]
    pub fn into_arc(self) -> Arc<dyn RecoverableFunction> {
        Arc::new(self)
    }

    fn seq_of(idx: usize) -> u64 {
        idx as u64 + 1
    }

    fn parse_index(args: &[u8]) -> Result<usize, PError> {
        let bytes: [u8; 8] = args
            .get(..8)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| PError::Task("queue task arguments must hold an 8-byte index".into()))?;
        Ok(u64::from_le_bytes(bytes) as usize)
    }

    fn encode_answer(result: QueueTaskResult) -> Option<RetBytes> {
        let mut b = [0u8; 8];
        match result {
            QueueTaskResult::Accepted(ok) => {
                b[0] = 1;
                b[1] = u8::from(ok);
            }
            QueueTaskResult::Dequeued(None) => b[0] = 2,
            QueueTaskResult::Dequeued(Some(v)) => {
                b[0] = 3;
                // Squeeze the low 7 bytes through the small-return slot;
                // the authoritative full answer lives in the table.
                b[1..8].copy_from_slice(&v.to_le_bytes()[..7]);
            }
        }
        Some(b)
    }

    fn run(
        &self,
        ctx: &mut PContext<'_>,
        idx: usize,
        recovery: bool,
    ) -> Result<Option<RetBytes>, PError> {
        if let Some(answer) = self.table.result(idx)? {
            return Ok(Self::encode_answer(answer.result));
        }
        let pid = ctx.pid as u64;
        let seq = Self::seq_of(idx);
        let result = match self.table.op(idx)? {
            QueueTaskOp::Enqueue(v) => {
                let ok = if recovery {
                    self.queue.recover_enqueue(pid, seq, v)?
                } else {
                    self.queue.enqueue(pid, seq, v)?
                };
                QueueTaskResult::Accepted(ok)
            }
            QueueTaskOp::Dequeue => {
                let v = if recovery {
                    self.queue.recover_dequeue(pid, seq)?
                } else {
                    self.queue.dequeue(pid, seq)?
                };
                QueueTaskResult::Dequeued(v)
            }
        };
        self.table.mark_done(idx, ctx.pid as u32, result)?;
        Ok(Self::encode_answer(result))
    }
}

impl RecoverableFunction for QueueTaskFunction {
    fn call(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = Self::parse_index(args)?;
        self.run(ctx, idx, false)
    }

    fn recover(&self, ctx: &mut PContext<'_>, args: &[u8]) -> Result<Option<RetBytes>, PError> {
        let idx = Self::parse_index(args)?;
        self.run(ctx, idx, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueVariant;
    use pstack_core::{FixedStack, FunctionRegistry};
    use pstack_nvram::PMemBuilder;

    fn fixture(
        capacity: u64,
        ops: &[QueueTaskOp],
    ) -> (PMem, PHeap, RecoverableQueue, QueueOpTable) {
        let pmem = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(8192), (1 << 18) - 8192).unwrap();
        let q =
            RecoverableQueue::format(pmem.clone(), &heap, capacity, QueueVariant::Nsrl).unwrap();
        let table = QueueOpTable::format(pmem.clone(), &heap, ops).unwrap();
        (pmem, heap, q, table)
    }

    #[test]
    fn table_round_trips_ops_and_answers() {
        let ops = [
            QueueTaskOp::Enqueue(-5),
            QueueTaskOp::Dequeue,
            QueueTaskOp::Enqueue(7),
        ];
        let (pmem, _, _, table) = fixture(4, &ops);
        assert_eq!(table.len(), 3);
        assert_eq!(table.op(0).unwrap(), QueueTaskOp::Enqueue(-5));
        assert_eq!(table.op(1).unwrap(), QueueTaskOp::Dequeue);
        assert_eq!(table.pending().unwrap(), vec![0, 1, 2]);

        table
            .mark_done(0, 2, QueueTaskResult::Accepted(true))
            .unwrap();
        table
            .mark_done(1, 3, QueueTaskResult::Dequeued(Some(-5)))
            .unwrap();
        assert_eq!(table.pending().unwrap(), vec![2]);
        assert_eq!(
            table.result(0).unwrap(),
            Some(QueueTaskAnswer {
                executor: 2,
                result: QueueTaskResult::Accepted(true)
            })
        );
        assert_eq!(
            table.result(1).unwrap(),
            Some(QueueTaskAnswer {
                executor: 3,
                result: QueueTaskResult::Dequeued(Some(-5))
            })
        );
        // Reopen sees the same state.
        let t2 = QueueOpTable::open(pmem, table.base()).unwrap();
        assert_eq!(t2.pending().unwrap(), vec![2]);
    }

    #[test]
    fn table_rejects_bad_magic_and_empty_ops() {
        let (pmem, heap, _, _) = fixture(2, &[QueueTaskOp::Dequeue]);
        let junk = heap.alloc_zeroed(64).unwrap();
        assert!(matches!(
            QueueOpTable::open(pmem.clone(), junk),
            Err(PError::CorruptStack(_))
        ));
        assert!(matches!(
            QueueOpTable::format(pmem, &heap, &[]),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn dequeued_none_round_trips() {
        let (_, _, _, table) = fixture(2, &[QueueTaskOp::Dequeue]);
        table
            .mark_done(0, 1, QueueTaskResult::Dequeued(None))
            .unwrap();
        assert_eq!(
            table.result(0).unwrap().unwrap().result,
            QueueTaskResult::Dequeued(None)
        );
    }

    #[test]
    fn task_function_runs_and_replays_answers() {
        let ops = [
            QueueTaskOp::Enqueue(10),
            QueueTaskOp::Enqueue(20),
            QueueTaskOp::Dequeue,
        ];
        let (pmem, heap, q, table) = fixture(4, &ops);
        let f = QueueTaskFunction::new(q.clone(), table.clone());
        let mut registry = FunctionRegistry::new();
        registry.register(QUEUE_TASK_FUNC_ID, f.into_arc()).unwrap();
        let mut stack = FixedStack::format(pmem.clone(), POffset::new(0), 4096).unwrap();
        let mut ctx = PContext::new(
            pmem.clone(),
            heap.clone(),
            &registry,
            &mut stack,
            0,
            POffset::new(64),
        );
        for i in 0..3u64 {
            ctx.call(QUEUE_TASK_FUNC_ID, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(
            table.result(2).unwrap().unwrap().result,
            QueueTaskResult::Dequeued(Some(10)),
            "FIFO: first enqueued value dequeued"
        );
        // Re-running a completed descriptor replays the answer without
        // touching the queue.
        let before = q.snapshot().unwrap();
        ctx.call(QUEUE_TASK_FUNC_ID, &0u64.to_le_bytes()).unwrap();
        assert_eq!(q.snapshot().unwrap(), before);
    }

    #[test]
    fn crash_between_queue_op_and_mark_done_recovers_exactly_once() {
        // The critical §5.2-style window: the queue CAS landed but the
        // answer never persisted. Recovery must find the evidence and
        // not double-apply.
        use pstack_nvram::FailPlan;
        let ops = [QueueTaskOp::Enqueue(42)];
        let (pmem, heap, q, table) = fixture(4, &ops);
        let f = QueueTaskFunction::new(q.clone(), table.clone());
        let mut registry = FunctionRegistry::new();
        registry
            .register(QUEUE_TASK_FUNC_ID, f.clone().into_arc())
            .unwrap();

        // Count events for a full run to know the crash range (the
        // stack format happens before the countdown starts, exactly as
        // in the per-crash-point runs below).
        let mut stack = FixedStack::format(pmem.clone(), POffset::new(0), 4096).unwrap();
        let e0 = pmem.events();
        {
            let mut ctx = PContext::new(
                pmem.clone(),
                heap.clone(),
                &registry,
                &mut stack,
                0,
                POffset::new(64),
            );
            ctx.call(QUEUE_TASK_FUNC_ID, &0u64.to_le_bytes()).unwrap();
        }
        let total = pmem.events() - e0;

        for k in 0..total {
            let ops = [QueueTaskOp::Enqueue(42)];
            let (pmem, heap, q, table) = fixture(4, &ops);
            let f = QueueTaskFunction::new(q.clone(), table.clone());
            let mut registry = FunctionRegistry::new();
            registry.register(QUEUE_TASK_FUNC_ID, f.into_arc()).unwrap();
            let mut stack = FixedStack::format(pmem.clone(), POffset::new(0), 4096).unwrap();
            pmem.arm_failpoint(FailPlan::after_events(k));
            {
                let mut ctx = PContext::new(
                    pmem.clone(),
                    heap.clone(),
                    &registry,
                    &mut stack,
                    0,
                    POffset::new(64),
                );
                let err = ctx
                    .call(QUEUE_TASK_FUNC_ID, &0u64.to_le_bytes())
                    .unwrap_err();
                assert!(err.is_crash(), "crash at event {k}");
            }
            let pmem2 = pmem.reopen().unwrap();
            let heap2 = PHeap::open(pmem2.clone(), POffset::new(8192)).unwrap();
            let q2 = RecoverableQueue::open(pmem2.clone(), q.base(), QueueVariant::Nsrl).unwrap();
            let t2 = QueueOpTable::open(pmem2.clone(), table.base()).unwrap();
            let mut registry2 = FunctionRegistry::new();
            registry2
                .register(
                    QUEUE_TASK_FUNC_ID,
                    QueueTaskFunction::new(q2.clone(), t2.clone()).into_arc(),
                )
                .unwrap();
            let mut stack2 =
                pstack_core::FixedStack::open(pmem2.clone(), POffset::new(0), 4096).unwrap();
            let mut ctx2 =
                PContext::new(pmem2, heap2, &registry2, &mut stack2, 0, POffset::new(64));
            pstack_core::recover_stack(&mut ctx2).unwrap();
            // Whether or not the frame linearized before the crash, the
            // final state must hold the value at most once; if the
            // descriptor is marked done, it must be exactly once.
            let snap = q2.snapshot().unwrap();
            assert!(snap.len() <= 1, "crash at event {k}: duplicate slot");
            if let Some(ans) = t2.result(0).unwrap() {
                assert_eq!(ans.result, QueueTaskResult::Accepted(true));
                assert_eq!(snap.len(), 1, "crash at event {k}: answer without slot");
            }
        }
    }
}
