//! The persistent operation-descriptor table of §5.2.
//!
//! The experiment loop needs to know, across restarts, which CAS
//! operations already completed and what they answered (step 7:
//! "restart the system in the normal mode, add all remaining
//! descriptors to the queue"; step 9: "get answers of all CAS
//! operations"). Each descriptor records its operands and a
//! status/answer pair that is persisted with a single atomic two-byte
//! flush when the operation completes.

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

const TABLE_MAGIC: u64 = 0x5053_5441_534B_5442; // "PSTASKTB"
const HEADER_LEN: u64 = 16;
const ENTRY_STRIDE: u64 = 32;

const ST_PENDING: u8 = 0;
const ST_DONE: u8 = 1;

/// A persistent table of `CAS(old → new)` operation descriptors.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_recoverable::TaskTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 14).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 14)?;
/// let table = TaskTable::format(pmem, &heap, &[(0, 1), (1, 2)])?;
/// assert_eq!(table.pending()?, vec![0, 1]);
/// table.mark_done(0, true)?;
/// assert_eq!(table.pending()?, vec![1]);
/// assert_eq!(table.result(0)?, Some(true));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TaskTable {
    pmem: PMem,
    base: POffset,
    len: usize,
}

impl TaskTable {
    /// Bytes of NVRAM needed for `n` descriptors.
    #[must_use]
    pub fn required_len(n: usize) -> usize {
        (HEADER_LEN + n as u64 * ENTRY_STRIDE) as usize
    }

    /// Allocates and persists a table holding `ops` (pairs of
    /// `(old, new)`), all pending.
    ///
    /// # Errors
    ///
    /// Heap or NVRAM errors, or [`PError::InvalidConfig`] for an empty
    /// op list.
    pub fn format(pmem: PMem, heap: &PHeap, ops: &[(i64, i64)]) -> Result<Self, PError> {
        if ops.is_empty() {
            return Err(PError::InvalidConfig(
                "task table needs at least one op".into(),
            ));
        }
        let len = Self::required_len(ops.len());
        let base = heap.alloc_aligned(len, 64)?;
        pmem.write_u64(base, TABLE_MAGIC)?;
        pmem.write_u64(base + 8u64, ops.len() as u64)?;
        for (i, (old, new)) in ops.iter().enumerate() {
            let e = Self::entry_off(base, i);
            pmem.write_i64(e, *old)?;
            pmem.write_i64(e + 8u64, *new)?;
            pmem.write(e + 16u64, &[ST_PENDING, 0])?;
        }
        pmem.flush(base, len)?;
        Ok(TaskTable {
            pmem,
            base,
            len: ops.len(),
        })
    }

    /// Re-attaches to a table created at `base`.
    ///
    /// # Errors
    ///
    /// [`PError::CorruptStack`] on a bad magic word.
    pub fn open(pmem: PMem, base: POffset) -> Result<Self, PError> {
        let magic = pmem.read_u64(base)?;
        if magic != TABLE_MAGIC {
            return Err(PError::CorruptStack(format!(
                "bad task-table magic {magic:#x} at {base}"
            )));
        }
        let len = pmem.read_u64(base + 8u64)? as usize;
        Ok(TaskTable { pmem, base, len })
    }

    fn entry_off(base: POffset, idx: usize) -> POffset {
        base + (HEADER_LEN + idx as u64 * ENTRY_STRIDE)
    }

    fn entry(&self, idx: usize) -> Result<POffset, PError> {
        if idx >= self.len {
            return Err(PError::InvalidConfig(format!(
                "descriptor index {idx} out of range ({} descriptors)",
                self.len
            )));
        }
        Ok(Self::entry_off(self.base, idx))
    }

    /// The table's base offset (persist it to find the table again).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of descriptors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the table has no descriptors (never happens
    /// for tables built by [`TaskTable::format`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `(old, new)` operands of descriptor `idx`.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn op(&self, idx: usize) -> Result<(i64, i64), PError> {
        let e = self.entry(idx)?;
        Ok((self.pmem.read_i64(e)?, self.pmem.read_i64(e + 8u64)?))
    }

    /// Whether descriptor `idx` has completed.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn is_done(&self, idx: usize) -> Result<bool, PError> {
        let e = self.entry(idx)?;
        Ok(self.pmem.read_u8(e + 16u64)? == ST_DONE)
    }

    /// The answer of descriptor `idx`, if it has completed.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn result(&self, idx: usize) -> Result<Option<bool>, PError> {
        let e = self.entry(idx)?;
        let mut st = [0u8; 2];
        self.pmem.read(e + 16u64, &mut st)?;
        Ok(if st[0] == ST_DONE {
            Some(st[1] != 0)
        } else {
            None
        })
    }

    /// Persists the completion of descriptor `idx` with its answer —
    /// one atomic two-byte flush.
    ///
    /// # Errors
    ///
    /// Out-of-range index or NVRAM errors.
    pub fn mark_done(&self, idx: usize, result: bool) -> Result<(), PError> {
        let e = self.entry(idx)?;
        self.pmem.write(e + 16u64, &[ST_DONE, u8::from(result)])?;
        self.pmem.flush(e + 16u64, 2)?;
        Ok(())
    }

    /// Indices of descriptors that have not completed.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn pending(&self) -> Result<Vec<usize>, PError> {
        let mut out = Vec::new();
        for i in 0..self.len {
            if !self.is_done(i)? {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// All answers: `None` for descriptors still pending.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn results(&self) -> Result<Vec<Option<bool>>, PError> {
        (0..self.len).map(|i| self.result(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::PMemBuilder;

    fn fixture(ops: &[(i64, i64)]) -> (PMem, TaskTable) {
        let pmem = PMemBuilder::new()
            .len(1 << 16)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        let t = TaskTable::format(pmem.clone(), &heap, ops).unwrap();
        (pmem, t)
    }

    #[test]
    fn operands_round_trip() {
        let (_, t) = fixture(&[(1, 2), (-3, 4), (i64::MIN, i64::MAX)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.op(0).unwrap(), (1, 2));
        assert_eq!(t.op(1).unwrap(), (-3, 4));
        assert_eq!(t.op(2).unwrap(), (i64::MIN, i64::MAX));
    }

    #[test]
    fn status_lifecycle() {
        let (_, t) = fixture(&[(0, 1), (1, 2)]);
        assert!(!t.is_done(0).unwrap());
        assert_eq!(t.result(0).unwrap(), None);
        t.mark_done(0, false).unwrap();
        assert_eq!(t.result(0).unwrap(), Some(false));
        t.mark_done(1, true).unwrap();
        assert_eq!(t.results().unwrap(), vec![Some(false), Some(true)]);
        assert!(t.pending().unwrap().is_empty());
    }

    #[test]
    fn statuses_survive_crash_and_reopen() {
        let (pmem, t) = fixture(&[(0, 1), (1, 2), (2, 3)]);
        t.mark_done(1, true).unwrap();
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let t2 = TaskTable::open(pmem2, t.base()).unwrap();
        assert_eq!(t2.pending().unwrap(), vec![0, 2]);
        assert_eq!(t2.result(1).unwrap(), Some(true));
        assert_eq!(t2.op(1).unwrap(), (1, 2));
    }

    #[test]
    fn open_rejects_garbage() {
        let pmem = PMemBuilder::new().len(1024).build_in_memory();
        assert!(TaskTable::open(pmem, POffset::new(0)).is_err());
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let (_, t) = fixture(&[(0, 1)]);
        assert!(t.op(1).is_err());
        assert!(t.mark_done(1, true).is_err());
    }

    #[test]
    fn empty_table_is_rejected() {
        let pmem = PMemBuilder::new()
            .len(1 << 14)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 14).unwrap();
        assert!(TaskTable::format(pmem, &heap, &[]).is_err());
    }
}
