//! A recoverable read/write register.
//!
//! Writes are idempotent, so the recover dual of a write simply
//! re-executes it — the simplest NSRL primitive, included as one of
//! the paper's "other NVRAM algorithms" (future-work direction 1).

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::cell::TaggedValue;

/// A single-word recoverable register storing a tagged value in its own
/// cache line.
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_recoverable::RecoverableRegister;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 14).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 14)?;
/// let reg = RecoverableRegister::format(pmem, &heap, 7)?;
/// reg.write(0, 42, 1)?;
/// assert_eq!(reg.read()?, 42);
/// reg.recover_write(0, 42, 1)?; // idempotent
/// assert_eq!(reg.read()?, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RecoverableRegister {
    pmem: PMem,
    base: POffset,
}

impl RecoverableRegister {
    /// Allocates a register from `heap` initialized to `init`.
    ///
    /// # Errors
    ///
    /// Heap or NVRAM errors.
    pub fn format(pmem: PMem, heap: &PHeap, init: i64) -> Result<Self, PError> {
        let base = heap.alloc_aligned(64, 64)?;
        TaggedValue::initial(init).write_to(&pmem, base)?;
        Ok(RecoverableRegister { pmem, base })
    }

    /// Re-attaches to a register created at `base`.
    #[must_use]
    pub fn open(pmem: PMem, base: POffset) -> Self {
        RecoverableRegister { pmem, base }
    }

    /// The register's base offset.
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Reads the logical value.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn read(&self) -> Result<i64, PError> {
        Ok(TaggedValue::read_from(&self.pmem, self.base)?.value)
    }

    /// Writes `value` (tagged with the caller's identity) and flushes.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn write(&self, pid: usize, value: i64, seq: u64) -> Result<(), PError> {
        let v = TaggedValue {
            value,
            pid: pid as u64,
            seq,
        };
        v.write_to(&self.pmem, self.base)?;
        Ok(())
    }

    /// Recover dual of [`RecoverableRegister::write`]: re-executes the
    /// write (idempotent).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn recover_write(&self, pid: usize, value: i64, seq: u64) -> Result<(), PError> {
        self.write(pid, value, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::PMemBuilder;

    fn fixture() -> (PMem, RecoverableRegister) {
        let pmem = PMemBuilder::new()
            .len(1 << 14)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 14).unwrap();
        let reg = RecoverableRegister::format(pmem.clone(), &heap, 7).unwrap();
        (pmem, reg)
    }

    #[test]
    fn read_write_round_trip() {
        let (_, reg) = fixture();
        assert_eq!(reg.read().unwrap(), 7);
        reg.write(1, -5, 1).unwrap();
        assert_eq!(reg.read().unwrap(), -5);
    }

    #[test]
    fn writes_survive_crash() {
        let (pmem, reg) = fixture();
        reg.write(0, 123, 1).unwrap();
        pmem.crash_now(0, 0.0);
        let pmem2 = pmem.reopen().unwrap();
        let reg2 = RecoverableRegister::open(pmem2, reg.base());
        assert_eq!(reg2.read().unwrap(), 123);
    }

    #[test]
    fn recover_write_is_idempotent() {
        let (_, reg) = fixture();
        reg.write(0, 9, 1).unwrap();
        reg.recover_write(0, 9, 1).unwrap();
        reg.recover_write(0, 9, 1).unwrap();
        assert_eq!(reg.read().unwrap(), 9);
    }
}
