//! The recoverable CAS algorithm (paper §5; algorithm from Attiya,
//! Ben-Baruch & Hendler, PODC'18 — the paper's reference 8).
//!
//! The register `C` holds a [`TaggedValue`] — the logical value plus
//! the writer's process id and operation sequence number. Alongside it
//! lives an N×N matrix `R`. To `CAS(old → new)`, process `p`:
//!
//! 1. reads `C = (v, q, s)`; if `v ≠ old`, returns *false*;
//! 2. writes the pair it is about to overwrite into `R[q][p]` and
//!    flushes it — this is the *evidence* that `q`'s write was in the
//!    register and got overwritten;
//! 3. attempts the hardware CAS `C: (v,q,s) → (new,p,seq)`; on success
//!    flushes `C` and returns *true*, otherwise retries from step 1.
//!
//! Recovery for an interrupted `CAS(old → new)` by `p` with tag `seq`:
//! if `C` still holds `(new, p, seq)` the CAS took effect; if any
//! `R[p][j]` holds `(new, p, seq)`, it took effect and was later
//! overwritten (the overwriter saved the evidence *before* its own
//! CAS); otherwise it **cannot** have taken effect, and is safely
//! re-executed.
//!
//! [`CasVariant::NoMatrix`] omits steps 2 and the row scan — the bug
//! the paper injects in §5.2. Recovery then re-executes CAS operations
//! that already took effect (double application) or reports *false* for
//! operations that succeeded, and the serializability verifier catches
//! the resulting histories.

use pstack_core::PError;
use pstack_heap::PHeap;
use pstack_nvram::{PMem, POffset};

use crate::cell::{TaggedValue, INIT_PID};

/// Byte stride between matrix cells (padded so a cell never crosses a
/// cache-line border).
const CELL_STRIDE: u64 = 32;

/// Offset of the matrix relative to the object base (the register cell
/// occupies its own cache line).
const MATRIX_OFF: u64 = 64;

/// Which CAS algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CasVariant {
    /// The correct algorithm with the evidence matrix `R`.
    #[default]
    Nsrl,
    /// §5.2's injected bug: "we have removed the matrix R from the CAS
    /// algorithm". Recovery can double-apply or drop operations.
    NoMatrix,
}

impl CasVariant {
    /// One-byte encoding for persistent configuration records.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            CasVariant::Nsrl => 0,
            CasVariant::NoMatrix => 1,
        }
    }

    /// Decodes [`CasVariant::as_u8`].
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] for unknown encodings.
    pub fn from_u8(v: u8) -> Result<Self, PError> {
        match v {
            0 => Ok(CasVariant::Nsrl),
            1 => Ok(CasVariant::NoMatrix),
            other => Err(PError::InvalidConfig(format!(
                "unknown CAS variant encoding {other}"
            ))),
        }
    }
}

/// A recoverable compare-and-swap register for `n` processes.
///
/// Requires an `eager_flush` NVRAM region (the algorithm is specified
/// for cache-less NVRAM; see the crate docs).
///
/// # Example
///
/// ```
/// use pstack_nvram::PMemBuilder;
/// use pstack_heap::PHeap;
/// use pstack_recoverable::{CasVariant, RecoverableCas};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pmem = PMemBuilder::new().len(1 << 16).eager_flush(true).build_in_memory();
/// let heap = PHeap::format(pmem.clone(), 0u64.into(), 1 << 16)?;
/// let cas = RecoverableCas::format(pmem, &heap, 4, 100, CasVariant::Nsrl)?;
/// assert!(cas.cas(0, 100, 200, 1)?);
/// assert!(!cas.cas(1, 100, 300, 2)?);
/// assert_eq!(cas.read()?, 200);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RecoverableCas {
    pmem: PMem,
    base: POffset,
    n: usize,
    variant: CasVariant,
}

impl RecoverableCas {
    /// Bytes of NVRAM the object needs for `n` processes.
    #[must_use]
    pub fn required_len(n: usize) -> usize {
        (MATRIX_OFF + (n as u64 * n as u64) * CELL_STRIDE) as usize
    }

    /// Allocates the register + matrix from `heap`, initializes the
    /// register to `init` and zeroes the matrix.
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if the region is not `eager_flush` or
    /// `n` is zero; heap or NVRAM errors otherwise.
    pub fn format(
        pmem: PMem,
        heap: &PHeap,
        n: usize,
        init: i64,
        variant: CasVariant,
    ) -> Result<Self, PError> {
        if n == 0 {
            return Err(PError::InvalidConfig("need at least one process".into()));
        }
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "recoverable CAS requires an eager-flush region (the algorithm assumes \
                 cache-less NVRAM, §5)"
                    .into(),
            ));
        }
        let len = Self::required_len(n);
        let base = heap.alloc_aligned(len, 64)?;
        pmem.fill(base, 0, len)?;
        pmem.flush(base, len)?;
        TaggedValue::initial(init).write_to(&pmem, base)?;
        Ok(RecoverableCas {
            pmem,
            base,
            n,
            variant,
        })
    }

    /// Re-attaches to an object previously created by
    /// [`RecoverableCas::format`] at `base` (recovery boot).
    ///
    /// # Errors
    ///
    /// [`PError::InvalidConfig`] if the region is not `eager_flush`.
    pub fn open(pmem: PMem, base: POffset, n: usize, variant: CasVariant) -> Result<Self, PError> {
        if !pmem.is_eager_flush() {
            return Err(PError::InvalidConfig(
                "recoverable CAS requires an eager-flush region".into(),
            ));
        }
        Ok(RecoverableCas {
            pmem,
            base,
            n,
            variant,
        })
    }

    /// The object's base offset (persist this to find it after restart).
    #[must_use]
    pub fn base(&self) -> POffset {
        self.base
    }

    /// Number of participating processes.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.n
    }

    /// The variant this handle runs.
    #[must_use]
    pub fn variant(&self) -> CasVariant {
        self.variant
    }

    fn matrix_cell(&self, row: u64, col: u64) -> POffset {
        self.base + (MATRIX_OFF + (row * self.n as u64 + col) * CELL_STRIDE)
    }

    /// Reads the current logical register value.
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn read(&self) -> Result<i64, PError> {
        Ok(TaggedValue::read_from(&self.pmem, self.base)?.value)
    }

    /// Reads the full tagged register content (diagnostics, verifier).
    ///
    /// # Errors
    ///
    /// Propagated NVRAM errors.
    pub fn read_tagged(&self) -> Result<TaggedValue, PError> {
        Ok(TaggedValue::read_from(&self.pmem, self.base)?)
    }

    /// Executes `CAS(old → new)` as process `pid` with unique tag `seq`.
    /// Returns whether the CAS took effect.
    ///
    /// # Errors
    ///
    /// A propagated crash (the operation is then completed by
    /// [`RecoverableCas::recover`] after restart).
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n`.
    pub fn cas(&self, pid: usize, old: i64, new: i64, seq: u64) -> Result<bool, PError> {
        assert!(
            pid < self.n,
            "pid {pid} out of range ({} processes)",
            self.n
        );
        let desired = TaggedValue {
            value: new,
            pid: pid as u64,
            seq,
        };
        loop {
            let cur = TaggedValue::read_from(&self.pmem, self.base)?;
            if cur.value != old {
                return Ok(false);
            }
            if self.variant == CasVariant::Nsrl && cur.pid != INIT_PID {
                // Evidence first (flushed by eager mode): q's pair was
                // in the register and is about to be overwritten.
                cur.write_to(&self.pmem, self.matrix_cell(cur.pid, pid as u64))?;
            }
            if self
                .pmem
                .compare_exchange(self.base, &cur.encode(), &desired.encode())?
            {
                // Eager mode already persisted the CAS result; the
                // fence marks the linearization for the stats.
                self.pmem.fence();
                return Ok(true);
            }
            // Lost a race: re-read and retry.
        }
    }

    /// Completes an interrupted `CAS(old → new)` by `pid` with tag
    /// `seq`, per the NSRL recovery procedure (see module docs).
    ///
    /// # Errors
    ///
    /// A propagated crash; recovery is then re-run after restart.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= n`.
    pub fn recover(&self, pid: usize, old: i64, new: i64, seq: u64) -> Result<bool, PError> {
        assert!(
            pid < self.n,
            "pid {pid} out of range ({} processes)",
            self.n
        );
        let mine = TaggedValue {
            value: new,
            pid: pid as u64,
            seq,
        };
        let cur = TaggedValue::read_from(&self.pmem, self.base)?;
        if cur == mine {
            return Ok(true);
        }
        if self.variant == CasVariant::Nsrl {
            for j in 0..self.n as u64 {
                let evidence = TaggedValue::read_from(&self.pmem, self.matrix_cell(pid as u64, j))?;
                if evidence == mine {
                    return Ok(true);
                }
            }
        }
        // The write is neither current nor recorded as overwritten: it
        // never linearized (correct variant) — or we cannot tell (buggy
        // variant) — so (re-)execute.
        self.cas(pid, old, new, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_nvram::{FailPlan, PMemBuilder};

    fn fixture(n: usize, init: i64, variant: CasVariant) -> (PMem, PHeap, RecoverableCas) {
        let pmem = PMemBuilder::new()
            .len(1 << 16)
            .eager_flush(true)
            .build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        let cas = RecoverableCas::format(pmem.clone(), &heap, n, init, variant).unwrap();
        (pmem, heap, cas)
    }

    #[test]
    fn successful_and_failed_cas() {
        let (_, _, cas) = fixture(2, 10, CasVariant::Nsrl);
        assert!(cas.cas(0, 10, 20, 1).unwrap());
        assert!(!cas.cas(1, 10, 30, 2).unwrap());
        assert!(cas.cas(1, 20, 30, 3).unwrap());
        assert_eq!(cas.read().unwrap(), 30);
    }

    #[test]
    fn eager_flush_region_is_required() {
        let pmem = PMemBuilder::new().len(1 << 16).build_in_memory();
        let heap = PHeap::format(pmem.clone(), POffset::new(0), 1 << 16).unwrap();
        assert!(matches!(
            RecoverableCas::format(pmem, &heap, 2, 0, CasVariant::Nsrl),
            Err(PError::InvalidConfig(_))
        ));
    }

    #[test]
    fn recover_sees_value_still_in_register() {
        let (_, _, cas) = fixture(2, 0, CasVariant::Nsrl);
        assert!(cas.cas(0, 0, 5, 1).unwrap());
        // Crash "happened" right after: recovery confirms success.
        assert!(cas.recover(0, 0, 5, 1).unwrap());
        assert_eq!(cas.read().unwrap(), 5);
    }

    #[test]
    fn recover_sees_overwritten_value_in_matrix() {
        let (_, _, cas) = fixture(2, 0, CasVariant::Nsrl);
        assert!(cas.cas(0, 0, 5, 1).unwrap());
        assert!(cas.cas(1, 5, 9, 2).unwrap()); // overwrites p0's value
                                               // p0's recovery must still report success via R[0][1].
        assert!(cas.recover(0, 0, 5, 1).unwrap());
        // And must not have re-executed: register still holds 9.
        assert_eq!(cas.read().unwrap(), 9);
    }

    #[test]
    fn recover_reexecutes_unlinearized_cas() {
        let (_, _, cas) = fixture(2, 0, CasVariant::Nsrl);
        // Never ran: recovery re-executes and succeeds.
        assert!(cas.recover(0, 0, 5, 1).unwrap());
        assert_eq!(cas.read().unwrap(), 5);
    }

    #[test]
    fn recover_reexecution_can_fail() {
        let (_, _, cas) = fixture(2, 0, CasVariant::Nsrl);
        assert!(cas.cas(1, 0, 7, 1).unwrap());
        // p0's CAS(0 → 5) never linearized and now cannot: value is 7.
        assert!(!cas.recover(0, 0, 5, 2).unwrap());
        assert_eq!(cas.read().unwrap(), 7);
    }

    #[test]
    fn buggy_variant_double_applies_after_overwrite() {
        // The §5.2 bug demonstration, as a deterministic unit test:
        // p0's CAS(0 → 5) succeeds and is overwritten by p1 (5 → 0 —
        // note it restores the old value). Without the matrix, p0's
        // recovery cannot see its success and re-executes, applying the
        // CAS a second time.
        let (_, _, cas) = fixture(2, 0, CasVariant::NoMatrix);
        assert!(cas.cas(0, 0, 5, 1).unwrap());
        assert!(cas.cas(1, 5, 0, 2).unwrap());
        assert!(cas.recover(0, 0, 5, 1).unwrap());
        assert_eq!(
            cas.read().unwrap(),
            5,
            "double application: the register moved twice for one op"
        );
        // The correct variant, in the same scenario, does not re-execute.
        let (_, _, cas) = fixture(2, 0, CasVariant::Nsrl);
        assert!(cas.cas(0, 0, 5, 1).unwrap());
        assert!(cas.cas(1, 5, 0, 2).unwrap());
        assert!(cas.recover(0, 0, 5, 1).unwrap());
        assert_eq!(cas.read().unwrap(), 0, "correct variant: no re-execution");
    }

    #[test]
    fn crash_point_enumeration_cas_recovery_is_exact() {
        // For every crash point inside a CAS, recovery must return the
        // truth: true iff the operation's effect is in the history.
        // With a single process and distinct values, the register tells
        // us directly whether the op applied.
        let probe = || fixture(1, 0, CasVariant::Nsrl);
        let (pmem, _, cas) = probe();
        let e0 = pmem.events();
        assert!(cas.cas(0, 0, 5, 1).unwrap());
        let total = pmem.events() - e0;
        assert!(total >= 1);

        for k in 0..total {
            let (pmem, _, cas) = probe();
            pmem.arm_failpoint(FailPlan::after_events(k));
            let err = cas.cas(0, 0, 5, 1).unwrap_err();
            assert!(err.is_crash());
            let pmem2 = pmem.reopen().unwrap();
            let heap2 = PHeap::open(pmem2.clone(), POffset::new(0)).unwrap();
            let cas2 = RecoverableCas::open(pmem2, cas.base(), 1, CasVariant::Nsrl).unwrap();
            let _ = heap2;
            let result = cas2.recover(0, 0, 5, 1).unwrap();
            assert!(
                result,
                "recovery must complete the op (re-executing if needed)"
            );
            assert_eq!(cas2.read().unwrap(), 5, "crash at event {k}");
        }
    }

    #[test]
    fn concurrent_cas_chain_applies_each_op_once() {
        // 4 threads race to apply a chain 0→1→2→…→N; exactly one thread
        // wins each step, every op eventually succeeds exactly once.
        let (_, _, cas) = fixture(4, 0, CasVariant::Nsrl);
        let n_steps = 64i64;
        std::thread::scope(|s| {
            for pid in 0..4usize {
                let cas = cas.clone();
                s.spawn(move || {
                    for step in 0..n_steps {
                        // Everyone contends on every step until the
                        // chain has moved past it; exactly one CAS per
                        // step can succeed (values never repeat).
                        loop {
                            let cur = cas.read().unwrap();
                            if cur > step {
                                break;
                            }
                            if cur == step {
                                let _ = cas.cas(
                                    pid,
                                    step,
                                    step + 1,
                                    (step * 4 + pid as i64) as u64 + 1,
                                );
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        assert_eq!(cas.read().unwrap(), n_steps);
    }

    #[test]
    fn variant_encoding_round_trips() {
        for v in [CasVariant::Nsrl, CasVariant::NoMatrix] {
            assert_eq!(CasVariant::from_u8(v.as_u8()).unwrap(), v);
        }
        assert!(CasVariant::from_u8(9).is_err());
    }

    #[test]
    fn required_len_covers_matrix() {
        assert_eq!(RecoverableCas::required_len(1), 64 + 32);
        assert_eq!(RecoverableCas::required_len(4), 64 + 16 * 32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pid_bounds_are_enforced() {
        let (_, _, cas) = fixture(2, 0, CasVariant::Nsrl);
        let _ = cas.cas(2, 0, 1, 1);
    }
}
