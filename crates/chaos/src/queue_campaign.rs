//! The §5.2 crash-campaign methodology applied to the recoverable
//! queue — the paper's future-work direction 1 ("implement and test
//! other NVRAM algorithms") executed end to end: random workload,
//! random crashes, restart + recovery until completion, then a
//! semantic verdict from the FIFO verifier.
//!
//! Mirrors [`crate::run_campaign`] with the CAS register replaced by a
//! [`RecoverableQueue`], the descriptor table by a [`QueueOpTable`],
//! and the §5.1 Eulerian-path check by
//! [`pstack_verify::check_fifo`]'s slot-witness check.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pstack_core::{
    FunctionRegistry, PError, RecoveryMode, Runtime, RuntimeConfig, StackKind, Task,
};
use pstack_nvram::{FailPlan, PMem, PMemBuilder, POffset};
use pstack_recoverable::{
    QueueOpTable, QueueTaskFunction, QueueTaskOp, QueueTaskResult, QueueVariant, RecoverableQueue,
    QUEUE_TASK_FUNC_ID,
};
use pstack_verify::{
    check_fifo, FifoVerdict, QueueAnswer, QueueHistory, QueueOp, QueueOpKind, SlotWitness,
};

/// Configuration of one queue crash campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueCampaignConfig {
    /// Number of queue operations (descriptors).
    pub n_ops: usize,
    /// Worker threads — 4, like the paper's CAS campaign.
    pub workers: usize,
    /// Inclusive range enqueue values are drawn from.
    pub value_range: (i64, i64),
    /// Probability a descriptor is an enqueue (the rest are dequeues).
    pub enqueue_bias: f64,
    /// Master seed; campaigns are deterministic given the seed (for a
    /// single worker).
    pub seed: u64,
    /// Stack layout for the workers.
    pub stack_kind: StackKind,
    /// Correct NSRL queue or the no-scan bug.
    pub variant: QueueVariant,
    /// Crashes stop after this many, so the campaign terminates.
    pub max_crashes: usize,
    /// Fail-point countdown drawn uniformly from this range.
    pub crash_window: (u64, u64),
    /// Probability of injecting a crash into each recovery pass.
    pub recovery_crash_prob: f64,
    /// NVRAM region length.
    pub region_len: usize,
    /// Scheduling noise `(probability, pause-events)`; see
    /// [`crate::CampaignConfig::access_jitter`].
    pub access_jitter: Option<(f64, u64)>,
}

impl QueueCampaignConfig {
    /// Defaults mirroring the paper's CAS campaign: 4 workers, values
    /// in `[-100, 100]`, 60% enqueues.
    #[must_use]
    pub fn new(n_ops: usize, seed: u64) -> Self {
        QueueCampaignConfig {
            n_ops,
            workers: 4,
            value_range: (-100, 100),
            enqueue_bias: 0.6,
            seed,
            stack_kind: StackKind::Fixed,
            variant: QueueVariant::Nsrl,
            max_crashes: 8,
            crash_window: (40, 400),
            recovery_crash_prob: 0.3,
            region_len: 1 << 21,
            access_jitter: None,
        }
    }

    /// Selects the queue variant.
    #[must_use]
    pub fn variant(mut self, variant: QueueVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the stack layout.
    #[must_use]
    pub fn stack(mut self, kind: StackKind) -> Self {
        self.stack_kind = kind;
        self
    }
}

/// Outcome of a queue campaign.
#[derive(Debug, Clone)]
pub struct QueueCampaignReport {
    /// Normal-mode rounds executed (≥ 1).
    pub rounds: usize,
    /// Crashes injected during normal-mode rounds.
    pub crashes: usize,
    /// Crashes injected during recovery passes.
    pub recovery_crashes: usize,
    /// Total frames completed by recovery passes.
    pub recovered_frames: usize,
    /// The collected execution (answers + slot witness).
    pub history: QueueHistory,
    /// The FIFO verdict.
    pub verdict: FifoVerdict,
}

impl QueueCampaignReport {
    /// `true` if the execution passed the FIFO check.
    #[must_use]
    pub fn is_fifo(&self) -> bool {
        self.verdict.is_fifo()
    }
}

const ROOT_OFF: u64 = 64;

fn write_root(pmem: &PMem, queue_base: POffset, table_base: POffset) -> Result<(), PError> {
    pmem.write_u64(POffset::new(ROOT_OFF), queue_base.get())?;
    pmem.write_u64(POffset::new(ROOT_OFF + 8), table_base.get())?;
    pmem.flush(POffset::new(ROOT_OFF), 16)?;
    Ok(())
}

fn build_registry(
    pmem: &PMem,
    variant: QueueVariant,
) -> Result<(FunctionRegistry, RecoverableQueue, QueueOpTable), PError> {
    let queue_base = POffset::new(pmem.read_u64(POffset::new(ROOT_OFF))?);
    let table_base = POffset::new(pmem.read_u64(POffset::new(ROOT_OFF + 8))?);
    let queue = RecoverableQueue::open(pmem.clone(), queue_base, variant)?;
    let table = QueueOpTable::open(pmem.clone(), table_base)?;
    let mut registry = FunctionRegistry::new();
    registry.register(
        QUEUE_TASK_FUNC_ID,
        QueueTaskFunction::new(queue.clone(), table.clone()).into_arc(),
    )?;
    Ok((registry, queue, table))
}

/// Builds the verifier history from the quiescent table and queue.
///
/// Per-process program order is not reconstructable from the quiescent
/// state (the §5.2 protocol records answers, not invocation times), so
/// each process's operations are listed in witness order; the
/// producer-order condition of [`check_fifo`] is therefore satisfied by
/// construction here and exercised separately by the verifier's unit
/// tests. All other conditions — exactly-once application, no phantom
/// or lost effects, value fidelity, tombstone-prefix — are fully
/// checked.
pub(crate) fn build_queue_history(
    queue: &RecoverableQueue,
    table: &QueueOpTable,
) -> Result<QueueHistory, PError> {
    let snapshot: Vec<SlotWitness> = queue
        .snapshot()?
        .into_iter()
        .map(|s| SlotWitness {
            value: s.value,
            pid: s.pid,
            seq: s.seq,
            dequeued_by: if s.is_tombstone() {
                Some((s.deq_pid, s.deq_seq))
            } else {
                None
            },
        })
        .collect();

    // Witness position of each enqueue/dequeue tag, for ordering each
    // process's ops by linearization.
    let slot_pos: std::collections::HashMap<(u64, u64), usize> = snapshot
        .iter()
        .enumerate()
        .map(|(i, s)| ((s.pid, s.seq), i))
        .collect();
    let tomb_pos: std::collections::HashMap<(u64, u64), usize> = snapshot
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.dequeued_by.map(|tag| (tag, i)))
        .collect();

    let mut ops = Vec::with_capacity(table.len());
    for idx in 0..table.len() {
        let answer = table.result(idx)?.ok_or_else(|| {
            PError::Task(format!(
                "descriptor {idx} still pending; campaign incomplete"
            ))
        })?;
        let pid = u64::from(answer.executor);
        let seq = idx as u64 + 1;
        let (kind, value, ans) = match (table.op(idx)?, answer.result) {
            (QueueTaskOp::Enqueue(v), QueueTaskResult::Accepted(ok)) => {
                (QueueOpKind::Enqueue, v, QueueAnswer::Accepted(ok))
            }
            (QueueTaskOp::Dequeue, QueueTaskResult::Dequeued(v)) => {
                (QueueOpKind::Dequeue, 0, QueueAnswer::Dequeued(v))
            }
            (op, res) => {
                return Err(PError::Task(format!(
                    "descriptor {idx}: answer {res:?} does not match op {op:?}"
                )))
            }
        };
        ops.push(QueueOp {
            pid,
            seq,
            kind,
            value,
            answer: ans,
        });
    }
    // Witness order within each process (see the function docs).
    ops.sort_by_key(|op| {
        let pos = match op.kind {
            QueueOpKind::Enqueue => slot_pos.get(&(op.pid, op.seq)),
            QueueOpKind::Dequeue => tomb_pos.get(&(op.pid, op.seq)),
        };
        (op.pid, pos.copied().unwrap_or(usize::MAX), op.seq)
    });
    Ok(QueueHistory { ops, snapshot })
}

/// Runs one full queue crash campaign (the §5.2 loop with the queue as
/// the object under test). Deterministic for a given configuration
/// with a single worker.
///
/// # Errors
///
/// Propagates setup failures; the crash/restart loop itself handles
/// crashes as part of the experiment.
///
/// # Example
///
/// ```
/// use pstack_chaos::{run_queue_campaign, QueueCampaignConfig};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let report = run_queue_campaign(&QueueCampaignConfig::new(30, 7))?;
/// assert!(report.is_fifo());
/// # Ok(())
/// # }
/// ```
pub fn run_queue_campaign(cfg: &QueueCampaignConfig) -> Result<QueueCampaignReport, PError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let (lo, hi) = cfg.value_range;
    assert!(lo <= hi, "empty value range");
    let ops: Vec<QueueTaskOp> = (0..cfg.n_ops)
        .map(|_| {
            if rng.random_bool(cfg.enqueue_bias) {
                QueueTaskOp::Enqueue(rng.random_range(lo..=hi))
            } else {
                QueueTaskOp::Dequeue
            }
        })
        .collect();
    let capacity = ops
        .iter()
        .filter(|o| matches!(o, QueueTaskOp::Enqueue(_)))
        .count()
        .max(1) as u64;

    let mut builder = PMemBuilder::new().len(cfg.region_len).eager_flush(true);
    if let Some((prob, pause_events)) = cfg.access_jitter {
        builder = builder.access_jitter(prob, pause_events);
    }
    let mut pmem = builder.build_in_memory();
    let stub = FunctionRegistry::new();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(cfg.workers)
            .stack_kind(cfg.stack_kind)
            .stack_capacity(8 * 1024),
        &stub,
    )?;
    let queue = RecoverableQueue::format(pmem.clone(), rt.heap(), capacity, cfg.variant)?;
    let table = QueueOpTable::format(pmem.clone(), rt.heap(), &ops)?;
    write_root(&pmem, queue.base(), table.base())?;

    let mut rounds = 0usize;
    let mut crashes = 0usize;
    let mut recovery_crashes = 0usize;
    let mut recovered_frames = 0usize;

    loop {
        rounds += 1;
        let (registry, _, table) = build_registry(&pmem, cfg.variant)?;
        let rt = Runtime::open(pmem.clone(), &registry)?;

        let mut pending = table.pending()?;
        if pending.is_empty() {
            break;
        }
        pending.shuffle(&mut rng);
        let tasks: Vec<Task> = pending
            .iter()
            .map(|&i| Task::new(QUEUE_TASK_FUNC_ID, (i as u64).to_le_bytes().to_vec()))
            .collect();

        if crashes < cfg.max_crashes {
            let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
            pmem.arm_failpoint(FailPlan::after_events(countdown));
        }
        let report = rt.run_tasks(tasks);
        if !report.crashed {
            pmem.disarm_failpoint();
            continue;
        }
        crashes += 1;

        pmem = pmem.reopen()?;
        loop {
            let (registry, _, _) = build_registry(&pmem, cfg.variant)?;
            let rt = Runtime::open(pmem.clone(), &registry)?;
            if crashes + recovery_crashes < cfg.max_crashes * 2
                && rng.random_bool(cfg.recovery_crash_prob)
            {
                let countdown = rng.random_range(5..=60);
                pmem.arm_failpoint(FailPlan::after_events(countdown));
            }
            match rt.recover(RecoveryMode::Parallel) {
                Ok(rep) => {
                    pmem.disarm_failpoint();
                    recovered_frames += rep.total_frames();
                    break;
                }
                Err(e) if e.is_crash() => {
                    recovery_crashes += 1;
                    pmem = pmem.reopen()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    let (_, queue, table) = build_registry(&pmem, cfg.variant)?;
    let history = build_queue_history(&queue, &table)?;
    let verdict = check_fifo(&history);
    Ok(QueueCampaignReport {
        rounds,
        crashes,
        recovery_crashes,
        recovered_frames,
        history,
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_campaign_is_fifo_and_crashes() {
        let report = run_queue_campaign(&QueueCampaignConfig::new(60, 17)).unwrap();
        assert!(report.is_fifo(), "verdict: {:?}", report.verdict);
        assert!(report.crashes > 0, "campaign should experience crashes");
        assert_eq!(report.history.ops.len(), 60);
        assert!(report.rounds > 1);
    }

    #[test]
    fn queue_campaigns_are_deterministic_per_seed() {
        let cfg = QueueCampaignConfig {
            workers: 1,
            ..QueueCampaignConfig::new(30, 5)
        };
        let a = run_queue_campaign(&cfg).unwrap();
        let b = run_queue_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.crashes, b.crashes);
    }

    #[test]
    fn queue_campaign_works_on_all_stack_kinds() {
        for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            let report = run_queue_campaign(&QueueCampaignConfig::new(30, 23).stack(kind)).unwrap();
            assert!(report.is_fifo(), "stack {kind}: {:?}", report.verdict);
        }
    }

    #[test]
    fn correct_queue_never_flagged_across_seeds() {
        for seed in 200..208 {
            let report = run_queue_campaign(&QueueCampaignConfig::new(40, seed)).unwrap();
            assert!(report.is_fifo(), "seed {seed}: {:?}", report.verdict);
        }
    }

    #[test]
    fn noscan_queue_is_caught_across_seeds() {
        // The queue analogue of §5.2's matrix-removal experiment: the
        // no-scan recovery double-applies operations whose answers were
        // lost; the FIFO verifier reports duplicate tags. Detection is
        // probabilistic per run, so scan seeds with a crash-heavy
        // configuration.
        let mut detected = 0;
        let mut runs = 0;
        for seed in 0..24 {
            if detected >= 2 {
                break;
            }
            let cfg = QueueCampaignConfig {
                max_crashes: 40,
                crash_window: (10, 80),
                recovery_crash_prob: 0.5,
                access_jitter: Some((0.15, 40)),
                ..QueueCampaignConfig::new(80, seed)
            }
            .variant(QueueVariant::NoScan);
            let report = run_queue_campaign(&cfg).unwrap();
            runs += 1;
            if !report.is_fifo() {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "no FIFO violation detected in {runs} no-scan runs"
        );
    }
}
