//! The §5.2 crash-campaign methodology applied to the **sharded**
//! key-value store: worker threads drive disjoint shard sets over a
//! striped region bundle, group commits batch persists inside each
//! shard, kills land *inside batch windows* (the countdowns are drawn
//! from event windows smaller than a batch's event footprint), a system
//! failure takes every region down together, and recovery runs **in
//! parallel, one scan per shard**. The collected execution is checked
//! by `pstack-verify`'s [`check_kv_sharded`]: per-shard chain
//! witnesses, globally unique operation tags, key-routing validation.
//!
//! The campaign is deterministic per seed even with multiple worker
//! threads: shards are statically assigned to workers (`shard %
//! workers`), every shard's schedule/kill randomness comes from its own
//! seeded RNG, and different shards touch different regions — so no
//! cross-thread interleaving can influence any region's event stream.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pstack_core::{
    CrashRegion, CrashSite, FunctionRegistry, PError, RecoveryMode, RuntimeConfig, StripedRuntime,
};
use pstack_kv::{
    shard_of, KvBatchOp, KvOpTable, KvTaskOp, KvTaskResult, KvVariant, PKvStore, ShardedKvStore,
    ShardedKvTaskFunction, KV_SHARDED_FUNC_ID,
};
use pstack_nvram::{
    FailPlan, PMem, PMemBuilder, PMemStripe, POffset, PsanViolation, StatsSnapshot,
};
use pstack_verify::{
    check_kv_sharded_gen, KvAnswer, KvOp, KvOpKind, KvShardedHistory, KvVerdict, KvWitnessRecord,
};

use pstack_telemetry::{TelemetrySummary, TraceSession};
use std::time::{Duration, Instant};

use crate::kv_campaign::ShardLogUsage;

/// Where each shard region persists its descriptor-table base (inside
/// the 64-byte shard root, past the offsets the store itself uses).
pub(crate) const TABLE_ROOT_OFF: u64 = 40;

/// Configuration of one sharded KV crash campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedKvCampaignConfig {
    /// Number of KV operations across all shards.
    pub n_ops: usize,
    /// Number of shards (independent regions).
    pub shards: usize,
    /// Worker threads; shard `s` is owned by worker `s % workers`, so
    /// shard schedules are worker-private and deterministic.
    pub workers: usize,
    /// Keys are drawn from `0..key_space`.
    pub key_space: u64,
    /// Inclusive range put/cas values are drawn from.
    pub value_range: (i64, i64),
    /// Probability weights of (put, get, delete) — the remainder are
    /// cas operations.
    pub op_mix: (f64, f64, f64),
    /// Master seed; campaigns are deterministic given the seed.
    pub seed: u64,
    /// Correct NSRL recovery or the no-scan bug.
    pub variant: KvVariant,
    /// `Some(k)`: buffered regions, mutations group-committed in
    /// batches of up to `k`. `None`: eager regions, per-op durability.
    pub group_commit: Option<usize>,
    /// Route group commits and compactions through the asynchronous
    /// flush pipeline ([`ShardedKvStore::set_pipeline`]): record and
    /// log-tail persists ride overlapping `flush_async` flights, and
    /// armed kills land while those flights are still in the device
    /// queue. Ignored on eager regions (`group_commit: None`).
    pub pipeline: bool,
    /// Concurrent mutator threads per shard (default 1). With more,
    /// live rounds drive each chunk's mutations through the lock-free
    /// detectable-publication path instead of a group commit: every
    /// thread reserves, persists and publishes independently, and the
    /// armed fail-point countdowns land *between* those steps.
    /// Recovery rounds always stay on the quiesced evidence-scanning
    /// duals. Per-shard op schedules and kill draws stay seeded, but
    /// the racing threads make each region's exact event interleaving
    /// schedule-dependent — crash placement is windowed, not replayed
    /// bit-for-bit.
    pub mutators_per_shard: usize,
    /// Crashes stop after this many, so the campaign terminates.
    pub max_crashes: usize,
    /// Per-shard fail-point countdown drawn uniformly from this event
    /// window. Keep it smaller than a batch's event footprint and
    /// kills land inside batch windows.
    pub crash_window: (u64, u64),
    /// Probability that a given shard region gets a fail-point armed
    /// in a given round (while the crash budget lasts).
    pub crash_prob: f64,
    /// NVRAM region length *per shard*.
    pub region_len: usize,
    /// Per-shard version-log capacity override; `None` provisions
    /// automatically from the workload.
    pub log_cap_per_shard: Option<u64>,
    /// `true`: drive the descriptors through
    /// [`StripedRuntime::run_tasks`] — every put/get/batch executes as
    /// a persistent-stack task, a crash in any region trips the whole
    /// system, and restart goes through stack-driven recovery
    /// (`reopen_all` + frame replay with per-shard evidence-scan
    /// preludes). `false`: PR 3's direct worker-thread drive, no
    /// persistent stack in the loop.
    pub runtime_driven: bool,
    /// Control-region length for the runtime-driven mode (superblock,
    /// per-worker stacks, heap).
    pub control_region_len: usize,
    /// Probability of arming a kill *inside* each recovery pass
    /// (runtime-driven mode only; bounded by twice the crash budget).
    pub recovery_crash_prob: f64,
    /// Shadow every region (shards and, in the runtime-driven mode,
    /// the control region) with the persist-order sanitizer and
    /// collect its findings in the report. Defaults to the `psan`
    /// crate feature.
    pub psan: bool,
    /// Record the campaign with the flight recorder and attach the
    /// collected summary to the report. Defaults to the `telemetry`
    /// crate feature.
    pub telemetry: bool,
}

impl ShardedKvCampaignConfig {
    /// Defaults: 4 shards × 4 workers over buffered regions with
    /// group commits of 8, 16 hot keys, a 50/25/10/15
    /// put/get/delete/cas mix, and kill countdowns short enough to
    /// land inside batch windows.
    #[must_use]
    pub fn new(n_ops: usize, seed: u64) -> Self {
        ShardedKvCampaignConfig {
            n_ops,
            shards: 4,
            workers: 4,
            key_space: 16,
            value_range: (-100, 100),
            op_mix: (0.5, 0.25, 0.1),
            seed,
            variant: KvVariant::Nsrl,
            group_commit: Some(8),
            pipeline: false,
            mutators_per_shard: 1,
            max_crashes: 8,
            crash_window: (8, 80),
            crash_prob: 0.6,
            region_len: 1 << 19,
            log_cap_per_shard: None,
            runtime_driven: false,
            control_region_len: 1 << 20,
            recovery_crash_prob: 0.35,
            psan: cfg!(feature = "psan"),
            telemetry: cfg!(feature = "telemetry"),
        }
    }

    /// Selects the shard count.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Selects the drive mode: `true` routes all traffic through
    /// [`StripedRuntime::run_tasks`] (the persistent stack in the loop).
    #[must_use]
    pub fn runtime_driven(mut self, runtime_driven: bool) -> Self {
        self.runtime_driven = runtime_driven;
        self
    }

    /// Selects the recovery variant.
    #[must_use]
    pub fn variant(mut self, variant: KvVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the commit mode: `Some(batch)` for buffered regions
    /// with group commits, `None` for eager per-op durability.
    #[must_use]
    pub fn group_commit(mut self, batch: Option<usize>) -> Self {
        self.group_commit = batch;
        self
    }

    /// Enables the asynchronous flush pipeline (see
    /// [`ShardedKvCampaignConfig::pipeline`]).
    #[must_use]
    pub fn pipeline(mut self, pipeline: bool) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Selects how many concurrent mutator threads drive each shard
    /// (see [`ShardedKvCampaignConfig::mutators_per_shard`]).
    #[must_use]
    pub fn mutators_per_shard(mut self, mutators: usize) -> Self {
        self.mutators_per_shard = mutators.max(1);
        self
    }
}

/// Outcome of a sharded KV campaign.
#[derive(Debug, Clone)]
pub struct ShardedKvCampaignReport {
    /// Rounds executed (≥ 1); each crash adds a recovery round.
    pub rounds: usize,
    /// Crash/recover cycles tripped during normal rounds. (The direct
    /// worker-thread mode also counts its recovery-round kills here;
    /// the runtime-driven mode reports those separately in
    /// [`ShardedKvCampaignReport::recovery_crashes`].)
    pub crashes: usize,
    /// Kills that landed *inside* stack-driven recovery passes
    /// (runtime-driven mode; always 0 for the direct drive).
    pub recovery_crashes: usize,
    /// Frames completed by stack-driven recovery across all cycles
    /// (runtime-driven mode; always 0 for the direct drive).
    pub recovered_frames: usize,
    /// Attribution of each whole-system crash in the runtime-driven
    /// mode: the region that tripped it (shard index or the control
    /// region) plus that region's frozen persistence-event counter —
    /// what campaign logs key kills by.
    pub crash_sites: Vec<CrashSite>,
    /// Individual shard regions whose fail-point actually fired,
    /// summed over all cycles (the remaining regions of a cycle are
    /// taken down by the system failure itself). The runtime-driven
    /// mode counts the tripping shard region of each cycle.
    pub shard_kills: usize,
    /// The collected execution: answers plus per-shard chain witness.
    pub history: KvShardedHistory,
    /// The sharded linearizability verdict.
    pub verdict: KvVerdict,
    /// Per-shard version-log usage — a single hot shard degenerating
    /// to read-only is visible here even when the aggregate is fine.
    pub log_usage: Vec<ShardLogUsage>,
    /// Per-shard completed group commits.
    pub flush_epochs: Vec<u64>,
    /// Aggregate NVRAM statistics across all shard regions and boots
    /// (persists, coalesced lines, …).
    pub stats: StatsSnapshot,
    /// Mutation descriptors in the workload (put/delete/cas — the
    /// denominator of the persists-per-mutation metric).
    pub mutations: usize,
    /// Persist-order sanitizer findings across every region and boot,
    /// attributed to their home shard (empty when PSan is off;
    /// expected empty when it is on — unless the campaign runs a
    /// seeded persist-order bug variant).
    pub psan_violations: Vec<PsanViolation>,
    /// Wall-clock duration of each crash→recovery cycle — from the
    /// whole-system reboot to the recovery pass that succeeded. A kill
    /// *inside* recovery extends the cycle it interrupted rather than
    /// starting a new one.
    pub recovery_durations: Vec<Duration>,
    /// Flight-recorder summary of the whole campaign (spans, persist
    /// economy, crash→recovery timeline); `None` when recording was
    /// off.
    pub telemetry: Option<TelemetrySummary>,
}

impl ShardedKvCampaignReport {
    /// `true` if the execution passed the sharded KV check.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.verdict.is_linearizable()
    }

    /// Total crash/recover cycles the campaign survived (kills in
    /// normal rounds plus kills inside recovery).
    #[must_use]
    pub fn total_crashes(&self) -> usize {
        self.crashes + self.recovery_crashes
    }

    /// See [`ShardLogUsage::all_have_headroom`].
    #[must_use]
    pub fn log_had_headroom(&self) -> bool {
        ShardLogUsage::all_have_headroom(&self.log_usage)
    }

    /// See [`ShardLogUsage::tightest`].
    ///
    /// # Panics
    ///
    /// Panics if the report holds no shards (never produced by
    /// [`run_sharded_kv_campaign`]).
    #[must_use]
    pub fn tightest_shard(&self) -> ShardLogUsage {
        ShardLogUsage::tightest(&self.log_usage)
    }

    /// The shard that triggered — or, run with compaction disabled,
    /// *should* trigger — compaction: the shard whose log headroom
    /// fraction is smallest and below `threshold`. `None` while every
    /// shard keeps at least `threshold` of its log free. This is the
    /// report-side name for the per-shard signal
    /// ([`ShardLogUsage::headroom_fraction`]) the compaction campaign
    /// drives `ShardedKvStore::compact_shard` with.
    #[must_use]
    pub fn compaction_candidate(&self, threshold: f64) -> Option<usize> {
        ShardLogUsage::compaction_candidate(&self.log_usage, threshold)
    }

    /// Persist round-trips per mutation descriptor — the group-commit
    /// headline (compare a `group_commit: Some(k)` run against
    /// `None`).
    #[must_use]
    pub fn persists_per_mutation(&self) -> f64 {
        if self.mutations == 0 {
            0.0
        } else {
            self.stats.persists as f64 / self.mutations as f64
        }
    }
}

/// Generates the workload exactly like the unsharded campaign.
fn generate_ops(cfg: &ShardedKvCampaignConfig, rng: &mut SmallRng) -> Vec<KvTaskOp> {
    generate_kv_ops(cfg.n_ops, cfg.key_space, cfg.value_range, cfg.op_mix, rng)
}

/// The shared workload generator (the compaction campaign reuses it).
pub(crate) fn generate_kv_ops(
    n_ops: usize,
    key_space: u64,
    value_range: (i64, i64),
    op_mix: (f64, f64, f64),
    rng: &mut SmallRng,
) -> Vec<KvTaskOp> {
    let (lo, hi) = value_range;
    let (p_put, p_get, p_del) = op_mix;
    (0..n_ops)
        .map(|_| {
            let key = rng.random_range(0..key_space);
            let roll: f64 = rng.random();
            if roll < p_put {
                KvTaskOp::Put {
                    key,
                    value: rng.random_range(lo..=hi),
                }
            } else if roll < p_put + p_get {
                KvTaskOp::Get { key }
            } else if roll < p_put + p_get + p_del {
                KvTaskOp::Delete { key }
            } else {
                KvTaskOp::Cas {
                    key,
                    expected: rng.random_range(lo..=hi),
                    new: rng.random_range(lo..=hi),
                }
            }
        })
        .collect()
}

/// Runs the pending descriptors of one shard for one round (bounded to
/// `limit` descriptors when given — the compaction campaign bounds
/// rounds so headroom checks interleave with traffic). Returns `true`
/// if the shard's region crashed mid-round.
///
/// Gets resolve immediately; mutations collect into chunks that go
/// through the shard's group commit — `apply_batch` in a normal round,
/// its recovery dual `recover_batch` (evidence scans first, one group
/// commit for the re-executions) after any crash — so kills land
/// inside real multi-op batch windows in *both* kinds of round. Each
/// chunk's answers persist with one coalesced `mark_done_batch`. An
/// eager stripe degenerates to per-op durability inside the same
/// structure.
#[allow(clippy::too_many_arguments)] // an internal drive helper, not an API
pub(crate) fn run_shard_round(
    store: &ShardedKvStore,
    shard: usize,
    table: &KvOpTable,
    batch_size: usize,
    recovery: bool,
    rng: &mut SmallRng,
    limit: Option<usize>,
    mutators: usize,
) -> Result<bool, PError> {
    let crashed = |e: &PError| e.is_crash();
    let mut pending = table.pending()?;
    pending.shuffle(rng);
    if let Some(limit) = limit {
        pending.truncate(limit);
    }
    let pid = shard as u64;
    let pstore = store.shard(shard);

    for chunk in pending.chunks(batch_size.max(1)) {
        let mut answers: Vec<(usize, u32, KvTaskResult)> = Vec::new();
        let mut batch: Vec<(usize, KvBatchOp)> = Vec::new();
        for &idx in chunk {
            let seq = ShardedKvTaskFunction::seq_of(shard as u32, idx);
            let mut step = || -> Result<(), PError> {
                match table.op(idx)? {
                    KvTaskOp::Get { key } => {
                        let got = pstore.get(key)?;
                        answers.push((idx, pid as u32, KvTaskResult::Got(got)));
                    }
                    KvTaskOp::Put { key, value } => batch.push((
                        idx,
                        KvBatchOp::Put {
                            pid,
                            seq,
                            key,
                            value,
                        },
                    )),
                    KvTaskOp::Delete { key } => {
                        batch.push((idx, KvBatchOp::Delete { pid, seq, key }));
                    }
                    KvTaskOp::Cas { key, expected, new } => batch.push((
                        idx,
                        KvBatchOp::Cas {
                            pid,
                            seq,
                            key,
                            expected,
                            new,
                        },
                    )),
                }
                Ok(())
            };
            match step() {
                Ok(()) => {}
                Err(e) if crashed(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
        }
        // The batch window. Recovery passes always run the quiesced
        // evidence-scanning duals; live passes either group-commit the
        // chunk or fan it out over `mutators` lock-free threads, whose
        // reserve → persist → publish steps the armed fail-point
        // countdowns land between.
        if !batch.is_empty() {
            let ops: Vec<KvBatchOp> = batch.iter().map(|&(_, op)| op).collect();
            let result: Result<Vec<bool>, PError> = if recovery {
                pstore
                    .recover_batch(&ops)
                    .map(|o| o.iter().map(|a| a.took_effect()).collect())
            } else if mutators > 1 {
                apply_lock_free(pstore, &ops, mutators)
            } else {
                pstore
                    .apply_batch(&ops)
                    .map(|o| o.iter().map(|a| a.took_effect()).collect())
            };
            let effects = match result {
                Ok(effects) => effects,
                Err(e) if crashed(&e) => return Ok(true),
                Err(e) => return Err(e),
            };
            for (&(idx, op), effect) in batch.iter().zip(effects) {
                let result = match op {
                    KvBatchOp::Put { .. } => KvTaskResult::Stored(effect),
                    KvBatchOp::Delete { .. } => KvTaskResult::Deleted(effect),
                    KvBatchOp::Cas { .. } => KvTaskResult::Swapped(effect),
                };
                answers.push((idx, pid as u32, result));
            }
        }
        match table.mark_done_batch(&answers) {
            Ok(()) => {}
            Err(e) if crashed(&e) => return Ok(true),
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

/// Applies one chunk's mutations with `mutators` concurrent threads,
/// each through the shard's lock-free detectable-publication path. A
/// crash in any thread surfaces as the first error; outcomes come back
/// in op order.
fn apply_lock_free(
    store: &PKvStore,
    ops: &[KvBatchOp],
    mutators: usize,
) -> Result<Vec<bool>, PError> {
    let mut effects = vec![false; ops.len()];
    let results: Vec<Result<Vec<(usize, bool)>, PError>> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..mutators.min(ops.len()))
            .map(|m| {
                let st = store.clone();
                sc.spawn(move || -> Result<Vec<(usize, bool)>, PError> {
                    (m..ops.len())
                        .step_by(mutators)
                        .map(|i| {
                            let ok = match ops[i] {
                                KvBatchOp::Put {
                                    pid,
                                    seq,
                                    key,
                                    value,
                                } => st.put(pid, seq, key, value)?,
                                KvBatchOp::Delete { pid, seq, key } => st.delete(pid, seq, key)?,
                                KvBatchOp::Cas {
                                    pid,
                                    seq,
                                    key,
                                    expected,
                                    new,
                                } => st.cas(pid, seq, key, expected, new)?,
                            };
                            Ok((i, ok))
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard mutator panicked"))
            .collect()
    });
    for r in results {
        for (i, ok) in r? {
            effects[i] = ok;
        }
    }
    Ok(effects)
}

pub(crate) fn open_tables(stripe: &PMemStripe) -> Result<Vec<KvOpTable>, PError> {
    (0..stripe.len())
        .map(|s| {
            let base = stripe.region(s).read_u64(POffset::new(TABLE_ROOT_OFF))?;
            KvOpTable::open(stripe.region(s).clone(), POffset::new(base))
        })
        .collect()
}

/// Crash/recover bookkeeping shared by both drive modes.
#[derive(Debug, Default)]
struct CampaignTally {
    rounds: usize,
    crashes: usize,
    recovery_crashes: usize,
    recovered_frames: usize,
    shard_kills: usize,
    crash_sites: Vec<CrashSite>,
    recovery_durations: Vec<Duration>,
    stats: StatsSnapshot,
    psan_violations: Vec<PsanViolation>,
}

/// Builds the final report from a quiescent store (every descriptor
/// answered) and the campaign tally.
fn finalize_report(
    cfg: &ShardedKvCampaignConfig,
    store: &ShardedKvStore,
    tables: &[KvOpTable],
    tally: CampaignTally,
    mutations: usize,
) -> Result<ShardedKvCampaignReport, PError> {
    let history = build_sharded_history(store, tables)?;
    let nshards = cfg.shards;
    // Shards compact independently, so the verdict checks each shard's
    // chains against that shard's real active generation.
    let verdict = check_kv_sharded_gen(
        &history,
        |key| shard_of(key, nshards),
        &store.generations()?,
    );
    let log_usage = store
        .log_reserved_per_shard()?
        .into_iter()
        .zip(store.log_capacities()?)
        .enumerate()
        .map(|(shard, (reserved, capacity))| ShardLogUsage {
            shard,
            reserved,
            capacity,
        })
        .collect();
    Ok(ShardedKvCampaignReport {
        rounds: tally.rounds,
        crashes: tally.crashes,
        recovery_crashes: tally.recovery_crashes,
        recovered_frames: tally.recovered_frames,
        crash_sites: tally.crash_sites,
        shard_kills: tally.shard_kills,
        history,
        verdict,
        log_usage,
        flush_epochs: store.flush_epochs()?,
        stats: tally.stats,
        mutations,
        psan_violations: tally.psan_violations,
        recovery_durations: tally.recovery_durations,
        telemetry: None,
    })
}

/// Builds the verifier history from the quiescent per-shard tables and
/// the sharded store's chain witnesses.
pub(crate) fn build_sharded_history(
    store: &ShardedKvStore,
    tables: &[KvOpTable],
) -> Result<KvShardedHistory, PError> {
    let shards: Vec<Vec<Vec<KvWitnessRecord>>> = store
        .snapshot_sharded()?
        .into_iter()
        .map(|chains| {
            chains
                .into_iter()
                .map(|chain| chain.into_iter().map(KvWitnessRecord::from).collect())
                .collect()
        })
        .collect();

    let mut ops = Vec::new();
    for (s, table) in tables.iter().enumerate() {
        for idx in 0..table.len() {
            let answer = table.result(idx)?.ok_or_else(|| {
                PError::Task(format!(
                    "shard {s} descriptor {idx} still pending; campaign incomplete"
                ))
            })?;
            let pid = u64::from(answer.executor);
            let seq = ShardedKvTaskFunction::seq_of(s as u32, idx);
            let (kind, key, value, expected, ans) = match (table.op(idx)?, answer.result) {
                (KvTaskOp::Put { key, value }, KvTaskResult::Stored(ok)) => {
                    (KvOpKind::Put, key, value, 0, KvAnswer::Stored(ok))
                }
                (KvTaskOp::Get { key }, KvTaskResult::Got(v)) => {
                    (KvOpKind::Get, key, 0, 0, KvAnswer::Got(v))
                }
                (KvTaskOp::Delete { key }, KvTaskResult::Deleted(ok)) => {
                    (KvOpKind::Delete, key, 0, 0, KvAnswer::Deleted(ok))
                }
                (KvTaskOp::Cas { key, expected, new }, KvTaskResult::Swapped(ok)) => {
                    (KvOpKind::Cas, key, new, expected, KvAnswer::Swapped(ok))
                }
                (op, res) => {
                    return Err(PError::Task(format!(
                        "shard {s} descriptor {idx}: answer {res:?} does not match op {op:?}"
                    )))
                }
            };
            ops.push(KvOp {
                pid,
                seq,
                kind,
                key,
                value,
                expected,
                answer: ans,
            });
        }
    }
    Ok(KvShardedHistory { ops, shards })
}

/// Runs one full sharded KV crash campaign: stripe the store over
/// `shards` regions, drive the descriptors with `workers` threads (one
/// shard never has two drivers), kill shard regions inside their batch
/// windows, take the whole stripe down on every failure, recover all
/// shards in parallel, and finally verify the collected execution with
/// the sharded witness checker. Deterministic per configuration.
///
/// # Errors
///
/// Propagates setup failures; the crash/restart loop itself handles
/// crashes as part of the experiment.
///
/// # Panics
///
/// Panics if a worker thread panics (assertion failures inside the
/// harness).
///
/// # Example
///
/// ```
/// use pstack_chaos::{run_sharded_kv_campaign, ShardedKvCampaignConfig};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let report = run_sharded_kv_campaign(&ShardedKvCampaignConfig::new(40, 7))?;
/// assert!(report.is_linearizable());
/// assert_eq!(report.log_usage.len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn run_sharded_kv_campaign(
    cfg: &ShardedKvCampaignConfig,
) -> Result<ShardedKvCampaignReport, PError> {
    let session = cfg.telemetry.then(TraceSession::start);
    let mut report = run_sharded_kv_campaign_inner(cfg)?;
    report.telemetry = session.map(|s| s.finish().summary());
    Ok(report)
}

fn run_sharded_kv_campaign_inner(
    cfg: &ShardedKvCampaignConfig,
) -> Result<ShardedKvCampaignReport, PError> {
    assert!(cfg.shards > 0, "at least one shard");
    assert!(cfg.workers > 0, "at least one worker");
    assert!(cfg.key_space > 0, "empty key space");
    let (lo, hi) = cfg.value_range;
    assert!(lo <= hi, "empty value range");

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let ops = generate_ops(cfg, &mut rng);
    let mutations = ops
        .iter()
        .filter(|op| !matches!(op, KvTaskOp::Get { .. }))
        .count();

    // Partition by home shard; idle shards get a no-op get on a key
    // they own, so every table is non-empty.
    let per_shard = ShardedKvTaskFunction::partition_ops_padded(&ops, cfg.shards);

    // Provision each shard's log: every descriptor at most one
    // published slot, plus crash orphans (at most one staged batch per
    // cycle survives unpublished — per in-flight worker in the
    // runtime-driven mode, where several workers may run windows of
    // the same shard concurrently), plus retry slack. The runtime mode
    // also spends its crash budget twice (run kills + recovery kills).
    let max_shard_ops = per_shard.iter().map(Vec::len).max().unwrap_or(1) as u64;
    let batch = cfg.group_commit.unwrap_or(1).max(1);
    let orphan_sources = if cfg.runtime_driven {
        cfg.workers as u64 * 2
    } else {
        1
    };
    let log_cap = cfg.log_cap_per_shard.unwrap_or(
        max_shard_ops * 2 + (cfg.max_crashes as u64 + 1) * (batch as u64 + 1) * orphan_sources + 64,
    );
    let nbuckets = cfg.key_space.max(4);

    let mut builder = PMemBuilder::new().len(cfg.region_len).psan(cfg.psan);
    if cfg.group_commit.is_none() {
        builder = builder.eager_flush(true);
    }
    let mut stripe = builder.build_striped(cfg.shards);
    {
        let store = ShardedKvStore::format(stripe.regions(), nbuckets, log_cap, cfg.variant)?;
        for (s, shard_ops) in per_shard.iter().enumerate() {
            let table = KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops)?;
            stripe
                .region(s)
                .write_u64(POffset::new(TABLE_ROOT_OFF), table.base().get())?;
            stripe.region(s).flush(POffset::new(TABLE_ROOT_OFF), 8)?;
        }
    }

    if cfg.runtime_driven {
        return drive_with_runtime(cfg, stripe, mutations, rng, batch);
    }

    let mut tally = CampaignTally::default();
    // Set when a crash rebooted the stripe: the next round (which
    // drives every pending descriptor through its recovery dual) is
    // the recovery pass, and its completion closes the cycle.
    let mut recovery_started: Option<Instant> = None;

    loop {
        tally.rounds += 1;
        let mut store = ShardedKvStore::open(stripe.regions(), cfg.variant)?;
        store.set_pipeline(cfg.pipeline);
        let tables = open_tables(&stripe)?;
        if tables
            .iter()
            .map(KvOpTable::pending)
            .collect::<Result<Vec<_>, _>>()?
            .iter()
            .all(Vec::is_empty)
        {
            // Quiescent: fold in this boot's counters and stop. The
            // sanitizer's findings survive every reopen (the shadow
            // state rides the region), so one sweep here sees them all.
            if let Some(started) = recovery_started.take() {
                tally.recovery_durations.push(started.elapsed());
            }
            tally.stats = tally.stats + stripe.aggregate_stats();
            tally.psan_violations = stripe.psan_violations();
            return finalize_report(cfg, &store, &tables, tally, mutations);
        }

        // Arm per-shard fail-points while the crash budget lasts. The
        // draws happen on the main thread, per shard, so worker
        // scheduling cannot perturb them.
        if tally.crashes < cfg.max_crashes {
            for s in 0..cfg.shards {
                if rng.random_bool(cfg.crash_prob) {
                    let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
                    stripe
                        .region(s)
                        .arm_failpoint(FailPlan::after_events(countdown));
                }
            }
        }

        // One worker per shard set; a shard's whole round runs on its
        // owner, seeded per (shard, round). Recovery rounds (after any
        // crash) drive every pending descriptor through its recovery
        // dual — the per-shard evidence scans, in parallel.
        let recovery = tally.crashes > 0;
        let round_seed = cfg.seed ^ (tally.rounds as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let crashed_flags: Vec<Result<bool, PError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.workers)
                .map(|w| {
                    let store = store.clone();
                    let tables = &tables;
                    scope.spawn(move || {
                        let mut any_crash = false;
                        for s in (w..cfg.shards).step_by(cfg.workers) {
                            let mut shard_rng = SmallRng::seed_from_u64(
                                round_seed ^ (s as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95),
                            );
                            match run_shard_round(
                                &store,
                                s,
                                &tables[s],
                                batch,
                                recovery,
                                &mut shard_rng,
                                None,
                                cfg.mutators_per_shard,
                            ) {
                                Ok(true) => any_crash = true,
                                Ok(false) => {}
                                Err(e) => return Err(e),
                            }
                        }
                        Ok(any_crash)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let mut any_crash = false;
        for flag in crashed_flags {
            any_crash |= flag?;
        }
        // The round after a reboot drove recovery duals over every
        // pending descriptor; it just finished, closing the cycle. A
        // crash *during* that round keeps the cycle open instead.
        if !any_crash {
            if let Some(started) = recovery_started.take() {
                tally.recovery_durations.push(started.elapsed());
            }
        }

        if any_crash {
            tally.crashes += 1;
            tally.shard_kills += stripe.regions().iter().filter(|r| r.is_crashed()).count();
            tally
                .crash_sites
                .extend(stripe.crash_site().map(|(shard, events)| CrashSite {
                    region: CrashRegion::Shard(shard),
                    events,
                }));
            // System failure: every region dies with the killed ones
            // (unflushed lines of buffered regions are lost — survival
            // probability 0 keeps the campaign deterministic).
            tally.stats = tally.stats + stripe.aggregate_stats();
            stripe.crash_all(cfg.seed ^ tally.crashes as u64, 0.0);
            recovery_started.get_or_insert_with(Instant::now);
            let _phase = pstack_telemetry::phase("recovery.reopen");
            stripe = stripe.reopen_all()?;
        } else {
            stripe.disarm_all();
        }
    }
}

/// The runtime-driven drive: every pending descriptor (or batch
/// window) becomes a persistent-stack task executed by
/// [`StripedRuntime::run_tasks`] over the control region + shard
/// stripe. Kills land inside batch windows (shard-region fail-points
/// with window-sized countdowns), inside the runtime's own stack
/// discipline (control-region fail-points), *and* inside the
/// stack-driven recovery passes; every crash trips the whole system,
/// is attributed to the region that fired it, and restart goes through
/// `reopen_all` + frame replay with per-shard evidence-scan preludes.
fn drive_with_runtime(
    cfg: &ShardedKvCampaignConfig,
    mut stripe: PMemStripe,
    mutations: usize,
    mut rng: SmallRng,
    batch: usize,
) -> Result<ShardedKvCampaignReport, PError> {
    // The control region carries the runtime layout: superblock,
    // per-worker persistent stacks, heap. Formatted once; every later
    // boot is an open.
    let mut control = PMemBuilder::new()
        .len(cfg.control_region_len)
        .psan(cfg.psan)
        .build_in_memory();
    {
        let stub = FunctionRegistry::new();
        StripedRuntime::format(
            control.clone(),
            stripe.clone(),
            RuntimeConfig::new(cfg.workers).stack_capacity(8 * 1024),
            &stub,
        )?;
    }

    // Builds the registry of the current boot: one task function
    // re-attached to the freshly opened store and tables. Used both
    // for direct opens and as the `reopen_all_with` registry builder.
    let make_registry =
        |store: &ShardedKvStore, tables: &[KvOpTable]| -> Result<FunctionRegistry, PError> {
            let mut registry = FunctionRegistry::new();
            registry.register(
                KV_SHARDED_FUNC_ID,
                ShardedKvTaskFunction::new(store.clone(), tables.to_vec())
                    .with_mutators(cfg.mutators_per_shard)
                    .into_arc(),
            )?;
            Ok(registry)
        };
    // Re-attaches store, tables, task function and runtime to the
    // current boot's regions.
    let attach = |control: &PMem,
                  stripe: &PMemStripe|
     -> Result<
        (
            ShardedKvStore,
            Vec<KvOpTable>,
            ShardedKvTaskFunction,
            StripedRuntime,
        ),
        PError,
    > {
        let mut store = ShardedKvStore::open(stripe.regions(), cfg.variant)?;
        store.set_pipeline(cfg.pipeline);
        let tables = open_tables(stripe)?;
        let registry = make_registry(&store, &tables)?;
        let rt = StripedRuntime::open(control.clone(), stripe.clone(), &registry)?;
        let func = ShardedKvTaskFunction::new(store.clone(), tables.clone());
        Ok((store, tables, func, rt))
    };
    // The multi-region boot path after a whole-system crash: reopen
    // every region together, rebuilding the registry over the fresh
    // handles (the old task function holds dead pre-crash clones).
    let reboot = |rt: &StripedRuntime| -> Result<(PMem, PMemStripe), PError> {
        let next = rt.reopen_all_with(|_, stripe| {
            let mut store = ShardedKvStore::open(stripe.regions(), cfg.variant)?;
            store.set_pipeline(cfg.pipeline);
            let tables = open_tables(stripe)?;
            make_registry(&store, &tables)
        })?;
        Ok((next.control().clone(), next.stripe().clone()))
    };

    let mut tally = CampaignTally::default();
    let window = if cfg.group_commit.is_some() { batch } else { 1 };

    loop {
        tally.rounds += 1;
        let (store, tables, func, rt) = attach(&control, &stripe)?;
        let rt =
            rt.crash_seed(cfg.seed ^ (tally.rounds as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut tasks = func.pending_tasks(KV_SHARDED_FUNC_ID, window)?;
        if tasks.is_empty() {
            tally.stats = tally.stats + stripe.aggregate_stats();
            tally.psan_violations = stripe.psan_violations();
            tally.psan_violations.extend(control.psan_violations());
            return finalize_report(cfg, &store, &tables, tally, mutations);
        }
        tasks.shuffle(&mut rng);

        // Arm kills while the budget lasts: per-shard fail-points with
        // countdowns shorter than a batch window's event footprint, and
        // occasionally one in the control region so the persistent
        // stack's own discipline gets hit too.
        if tally.crashes + tally.recovery_crashes < cfg.max_crashes {
            for s in 0..cfg.shards {
                if rng.random_bool(cfg.crash_prob) {
                    let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
                    stripe
                        .region(s)
                        .arm_failpoint(FailPlan::after_events(countdown));
                }
            }
            if rng.random_bool(cfg.crash_prob / 2.0) {
                let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
                control.arm_failpoint(FailPlan::after_events(countdown));
            }
        }

        let report = rt.run_tasks(tasks);
        if !report.crashed {
            stripe.disarm_all();
            control.disarm_failpoint();
            continue;
        }
        tally.crashes += 1;
        if let Some(site) = report.crash_site {
            if matches!(site.region, CrashRegion::Shard(_)) {
                tally.shard_kills += 1;
            }
            tally.crash_sites.push(site);
        }
        tally.stats = tally.stats + stripe.aggregate_stats();
        let recovery_started = Instant::now();
        (control, stripe) = reboot(&rt)?;

        // Stack-driven recovery, possibly killed mid-pass: reopen and
        // retry until a pass completes (idempotence across regions —
        // frames popped by a completed recover dual never replay).
        loop {
            let (store, _tables, _func, rt) = attach(&control, &stripe)?;
            let rt = rt.crash_seed(
                cfg.seed ^ (tally.recovery_crashes as u64 + 1).wrapping_mul(0xD134_2543_DE82_EF95),
            );
            if tally.crashes + tally.recovery_crashes < cfg.max_crashes * 2
                && rng.random_bool(cfg.recovery_crash_prob)
            {
                // A kill inside recovery: a random shard region or the
                // control region, with a short countdown so it lands
                // mid-replay.
                let target = rng.random_range(0..=cfg.shards as u64) as usize;
                let countdown = rng.random_range(2..=40);
                let plan = FailPlan::after_events(countdown);
                if target == cfg.shards {
                    control.arm_failpoint(plan);
                } else {
                    stripe.region(target).arm_failpoint(plan);
                }
            }
            let prelude_store = store.clone();
            let result = rt.recover_with(RecoveryMode::Parallel, |shard, _region| {
                // Per-shard evidence fan-out before any frame replays:
                // walk the shard's published chains, the witness the
                // recover duals' tag scans run against.
                prelude_store.shard(shard).snapshot().map(|_| ())
            });
            match result {
                Ok(rep) => {
                    stripe.disarm_all();
                    control.disarm_failpoint();
                    tally.recovered_frames += rep.total_frames();
                    tally.recovery_durations.push(recovery_started.elapsed());
                    break;
                }
                Err(e) if e.is_crash() => {
                    tally.recovery_crashes += 1;
                    if let Some(site) = rt.last_crash_site() {
                        tally.crash_sites.push(site);
                    }
                    tally.stats = tally.stats + stripe.aggregate_stats();
                    (control, stripe) = reboot(&rt)?;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstack_verify::check_kv_sharded;

    #[test]
    fn sharded_campaign_is_linearizable_and_crashes_in_batch_windows() {
        let report = run_sharded_kv_campaign(&ShardedKvCampaignConfig::new(80, 21)).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(report.crashes > 0, "campaign should experience crashes");
        assert!(report.shard_kills > 0, "fail-points should actually fire");
        assert_eq!(report.history.shards.len(), 4);
        assert!(report.rounds > 1);
        assert!(report.log_had_headroom(), "{}", report.tightest_shard());
        assert!(
            report.flush_epochs.iter().any(|&e| e > 0),
            "group commits should have completed: {:?}",
            report.flush_epochs
        );
        assert!(
            report.stats.coalesced_lines > 0,
            "group commits should coalesce persists: {:?}",
            report.stats
        );
        assert!(
            report.psan_violations.is_empty(),
            "sanitizer findings: {:?}",
            report.psan_violations
        );
    }

    #[test]
    fn sharded_campaigns_are_deterministic_per_seed() {
        let cfg = ShardedKvCampaignConfig::new(48, 5);
        let a = run_sharded_kv_campaign(&cfg).unwrap();
        let b = run_sharded_kv_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.shard_kills, b.shard_kills);
    }

    #[test]
    fn eager_sharded_campaign_passes_too() {
        let cfg = ShardedKvCampaignConfig::new(60, 9).group_commit(None);
        let report = run_sharded_kv_campaign(&cfg).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert_eq!(
            report.flush_epochs,
            vec![0; 4],
            "eager stores never group-commit"
        );
    }

    #[test]
    fn group_commit_cuts_persists_per_mutation() {
        // Same workload, no crashes: the batched campaign must spend
        // far fewer persist round-trips per mutation than the per-op
        // buffered one — measured straight from the PMem counters.
        let quiet = |batch| {
            let mut cfg = ShardedKvCampaignConfig::new(200, 3).group_commit(batch);
            cfg.max_crashes = 0;
            cfg.key_space = 64;
            run_sharded_kv_campaign(&cfg).unwrap()
        };
        let batched = quiet(Some(16));
        let per_op = quiet(Some(1));
        assert!(batched.is_linearizable() && per_op.is_linearizable());
        assert_eq!(batched.mutations, per_op.mutations);
        assert!(
            batched.persists_per_mutation() * 2.0 < per_op.persists_per_mutation(),
            "batched {:.2} vs per-op {:.2} persists/mutation",
            batched.persists_per_mutation(),
            per_op.persists_per_mutation(),
        );
    }

    #[test]
    fn single_hot_shard_headroom_is_detected_per_shard() {
        // One key → one hot shard. With a tiny per-shard log the hot
        // shard fills while the others stay empty: the per-shard
        // report must expose it (the old global sum would have hidden
        // it behind three idle shards' headroom).
        let mut cfg = ShardedKvCampaignConfig::new(60, 11);
        cfg.key_space = 1;
        cfg.max_crashes = 0;
        cfg.op_mix = (1.0, 0.0, 0.0); // all puts
        cfg.log_cap_per_shard = Some(8);
        let report = run_sharded_kv_campaign(&cfg).unwrap();
        assert!(
            report.is_linearizable(),
            "capacity-rejected puts are legal answers: {:?}",
            report.verdict
        );
        assert!(!report.log_had_headroom(), "hot shard must be flagged");
        let hot = shard_of(0, 4);
        for usage in &report.log_usage {
            assert_eq!(
                usage.has_headroom(),
                usage.shard != hot,
                "only the hot shard fills: {usage}"
            );
            // The trigger signal: 0.0 for the full shard, a healthy
            // fraction for the idle ones.
            if usage.shard == hot {
                assert_eq!(usage.headroom_fraction(), 0.0, "{usage}");
            } else {
                assert!(usage.headroom_fraction() > 0.5, "{usage}");
            }
        }
        assert_eq!(report.tightest_shard().shard, hot);
        // The report names the shard that should trigger compaction.
        assert_eq!(report.compaction_candidate(0.25), Some(hot));
        assert_eq!(
            report.compaction_candidate(0.0),
            None,
            "threshold 0 never fires"
        );
    }

    #[test]
    fn two_hundred_sharded_crash_recover_cycles_lose_nothing() {
        // The sharded acceptance gate: ≥ 200 crash/recover cycles with
        // kills landing inside group-commit batch windows, every
        // campaign recovering all shards in parallel and verifying
        // against the sequential spec — zero lost or torn updates.
        let mut cycles = 0usize;
        let mut campaigns = 0usize;
        for seed in 0.. {
            let mut cfg = ShardedKvCampaignConfig::new(60, 4000 + seed);
            cfg.max_crashes = 14;
            cfg.crash_prob = 0.8;
            let report = run_sharded_kv_campaign(&cfg).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: lost or torn update after {} crashes: {:?}",
                report.total_crashes(),
                report.verdict
            );
            assert!(
                report.log_had_headroom(),
                "seed {seed}: {} filled — cycles stopped exercising recovery",
                report.tightest_shard()
            );
            assert!(
                report.psan_violations.is_empty(),
                "seed {seed}: sanitizer findings: {:?}",
                report.psan_violations
            );
            cycles += report.total_crashes();
            campaigns += 1;
            if cycles >= 200 {
                break;
            }
        }
        assert!(
            cycles >= 200,
            "only {cycles} crash/recover cycles across {campaigns} campaigns"
        );
    }

    #[test]
    fn two_hundred_multi_mutator_cycles_lose_nothing() {
        // The lock-free acceptance gate: ≥ 200 crash/recover cycles
        // with three concurrent mutators per shard racing through
        // reserve → persist → publish, kills landing between those
        // steps, recovery always on the quiesced evidence-scanning
        // duals — zero lost or torn updates and a clean sanitizer.
        let mut cycles = 0usize;
        let mut campaigns = 0usize;
        for seed in 0.. {
            let mut cfg = ShardedKvCampaignConfig::new(60, 7000 + seed).mutators_per_shard(3);
            cfg.max_crashes = 14;
            cfg.crash_prob = 0.8;
            let report = run_sharded_kv_campaign(&cfg).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: lost or torn update after {} crashes: {:?}",
                report.total_crashes(),
                report.verdict
            );
            assert!(
                report.log_had_headroom(),
                "seed {seed}: {} filled — cycles stopped exercising recovery",
                report.tightest_shard()
            );
            assert!(
                report.psan_violations.is_empty(),
                "seed {seed}: sanitizer findings: {:?}",
                report.psan_violations
            );
            cycles += report.total_crashes();
            campaigns += 1;
            if cycles >= 200 {
                break;
            }
        }
        assert!(
            cycles >= 200,
            "only {cycles} crash/recover cycles across {campaigns} campaigns"
        );
    }

    #[test]
    fn pipelined_campaigns_are_deterministic_per_seed() {
        // The async flush pipeline must not leak scheduling into the
        // campaign's observable history: no device thread exists, so
        // two runs of the same seed retire identical flights and crash
        // at identical event counts.
        let cfg = ShardedKvCampaignConfig::new(48, 5)
            .group_commit(Some(16))
            .pipeline(true);
        let a = run_sharded_kv_campaign(&cfg).unwrap();
        let b = run_sharded_kv_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.rounds, b.rounds);
        assert!(a.stats.async_flushes > 0, "pipeline never engaged");
    }

    #[test]
    fn two_hundred_pipelined_cycles_lose_nothing() {
        // The flush-pipeline acceptance gate: ≥ 200 crash/recover
        // cycles with group commits riding overlapping async flights,
        // kills landing inside batch windows (including between flight
        // issue and await, while tickets are still queued on the
        // device), recovery keeping exactly the completed-flight
        // prefix — zero lost or torn updates and a clean sanitizer.
        let mut cycles = 0usize;
        let mut campaigns = 0usize;
        let mut async_flushes = 0u64;
        for seed in 0.. {
            let mut cfg = ShardedKvCampaignConfig::new(60, 11_000 + seed)
                .group_commit(Some(16))
                .pipeline(true);
            cfg.max_crashes = 14;
            cfg.crash_prob = 0.8;
            let report = run_sharded_kv_campaign(&cfg).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: lost or torn update after {} crashes: {:?}",
                report.total_crashes(),
                report.verdict
            );
            assert!(
                report.psan_violations.is_empty(),
                "seed {seed}: sanitizer findings: {:?}",
                report.psan_violations
            );
            cycles += report.total_crashes();
            campaigns += 1;
            async_flushes += report.stats.async_flushes;
            if cycles >= 200 {
                break;
            }
        }
        assert!(
            cycles >= 200,
            "only {cycles} crash/recover cycles across {campaigns} campaigns"
        );
        assert!(async_flushes > 0, "no campaign ever issued a flight");
    }

    #[test]
    fn psan_flags_the_early_publish_variant_and_names_the_shard() {
        // The seeded persist-order bug as a campaign-level negative
        // control: group commits publish their bucket heads without
        // persisting the staged records first. Without a crash the
        // execution is semantically flawless — the verifier passes —
        // but the sanitizer must flag every buggy publish and attribute
        // it to the home shard and the group-commit op.
        use pstack_nvram::PsanViolationKind;
        let mut cfg = ShardedKvCampaignConfig::new(60, 13).variant(KvVariant::EarlyPublish);
        cfg.max_crashes = 0; // deterministic: violations fire at publish time
        cfg.psan = true;
        let report = run_sharded_kv_campaign(&cfg).unwrap();
        assert!(
            report.is_linearizable(),
            "without crashes the bug is invisible to the verifier: {:?}",
            report.verdict
        );
        let early: Vec<_> = report
            .psan_violations
            .iter()
            .filter(|v| matches!(v.kind, PsanViolationKind::EarlyPublish { .. }))
            .collect();
        assert!(
            !early.is_empty(),
            "the sanitizer must catch what the verifier cannot: {:?}",
            report.psan_violations
        );
        for v in &early {
            assert!(
                v.region.starts_with("shard-"),
                "violation names its home shard: {v:?}"
            );
            assert_eq!(
                v.op_label, "kv.apply_batch",
                "violation names the group-commit op: {v:?}"
            );
        }
    }

    // ---- runtime-driven mode ------------------------------------------

    #[test]
    fn runtime_driven_campaign_puts_the_stack_in_the_loop() {
        let report =
            run_sharded_kv_campaign(&ShardedKvCampaignConfig::new(80, 21).runtime_driven(true))
                .unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(report.crashes > 0, "campaign should experience crashes");
        assert!(report.rounds > 1);
        assert!(report.log_had_headroom(), "{}", report.tightest_shard());
        // The batch windows ran as persistent-stack tasks: group
        // commits completed and interrupted frames were replayed.
        assert!(
            report.flush_epochs.iter().any(|&e| e > 0),
            "windows should group-commit: {:?}",
            report.flush_epochs
        );
        assert!(
            report.recovered_frames > 0,
            "stack-driven recovery should replay interrupted frames"
        );
        assert!(
            report.psan_violations.is_empty(),
            "sanitizer findings: {:?}",
            report.psan_violations
        );
        // Every cycle is attributed to the region that tripped it.
        assert!(!report.crash_sites.is_empty());
        assert!(report.crash_sites.len() <= report.total_crashes());
        for site in &report.crash_sites {
            match site.region {
                CrashRegion::Shard(s) => assert!(s < 4, "shard index in range: {site}"),
                CrashRegion::Runtime => {}
            }
            assert!(
                site.events > 0,
                "the op counter freezes at the kill: {site}"
            );
        }
        // Every crash→recovery cycle that completed was timed.
        assert_eq!(report.recovery_durations.len(), report.crashes);
        assert!(report.recovery_durations.iter().all(|d| d.as_nanos() > 0));
        #[cfg(feature = "telemetry")]
        {
            let telemetry = report.telemetry.as_ref().expect("recording was on");
            // The stack-driven recovery path exercises the reopen, the
            // per-shard evidence scan, the frame replay, and the
            // recover duals — the timeline must attribute at least
            // three distinct phases with durations.
            assert!(
                telemetry.distinct_recovery_phases() >= 3,
                "timeline:\n{}",
                telemetry.render()
            );
            assert!(!telemetry.timeline.is_empty());
            assert!(
                telemetry.ops.iter().any(|op| op.count > 0),
                "spans should have latencies: {:?}",
                telemetry.ops
            );
            println!("{}", telemetry.render());
        }
    }

    #[test]
    fn runtime_driven_campaign_is_deterministic_with_one_worker() {
        let mut cfg = ShardedKvCampaignConfig::new(48, 5).runtime_driven(true);
        cfg.workers = 1;
        let a = run_sharded_kv_campaign(&cfg).unwrap();
        let b = run_sharded_kv_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.recovery_crashes, b.recovery_crashes);
        assert_eq!(a.crash_sites, b.crash_sites);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn runtime_driven_eager_campaign_passes_too() {
        let cfg = ShardedKvCampaignConfig::new(60, 9)
            .group_commit(None)
            .runtime_driven(true);
        let report = run_sharded_kv_campaign(&cfg).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert_eq!(
            report.flush_epochs,
            vec![0; 4],
            "eager stores never group-commit"
        );
    }

    #[test]
    fn runtime_driven_two_hundred_crash_recover_cycles_lose_nothing() {
        // The runtime-driven acceptance gate: ≥ 200 crash/recover
        // cycles with every put/get/batch executing as a persistent-
        // stack task, kills landing inside batch windows *and* inside
        // stack-driven recovery, every crash tripping the whole
        // system, and the sharded verifier confirming zero lost or
        // torn updates.
        let mut cycles = 0usize;
        let mut recovery_kills = 0usize;
        let mut batch_window_kills = 0usize;
        let mut frames = 0usize;
        let mut campaigns = 0usize;
        for seed in 0.. {
            let mut cfg = ShardedKvCampaignConfig::new(60, 7000 + seed).runtime_driven(true);
            cfg.max_crashes = 14;
            cfg.crash_prob = 0.8;
            cfg.recovery_crash_prob = 0.5;
            let report = run_sharded_kv_campaign(&cfg).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: lost or torn update after {} crashes: {:?}",
                report.total_crashes(),
                report.verdict
            );
            assert!(
                report.log_had_headroom(),
                "seed {seed}: {} filled — cycles stopped exercising recovery",
                report.tightest_shard()
            );
            assert!(
                report.psan_violations.is_empty(),
                "seed {seed}: sanitizer findings: {:?}",
                report.psan_violations
            );
            cycles += report.total_crashes();
            recovery_kills += report.recovery_crashes;
            batch_window_kills += report.shard_kills;
            frames += report.recovered_frames;
            campaigns += 1;
            if cycles >= 200 {
                break;
            }
        }
        assert!(
            cycles >= 200,
            "only {cycles} crash/recover cycles across {campaigns} campaigns"
        );
        assert!(
            recovery_kills > 0,
            "kills must land inside recovery passes too"
        );
        assert!(
            batch_window_kills > 0,
            "kills must land inside shard batch windows"
        );
        assert!(frames > 0, "recovery must replay interrupted frames");
    }

    #[test]
    fn runtime_driven_noscan_is_caught() {
        // The NoScan bug variant driven through `run_tasks`: recovery
        // duals that skip the per-shard evidence scan re-execute
        // already-published operations, and the campaign's verifier
        // must flag the resulting duplicates. Detection is
        // probabilistic per run, so scan seeds.
        let mut detected = 0;
        let mut runs = 0;
        for seed in 0..24 {
            if detected >= 2 {
                break;
            }
            let mut cfg = ShardedKvCampaignConfig::new(80, seed)
                .variant(KvVariant::NoScan)
                .runtime_driven(true);
            cfg.key_space = 4;
            cfg.max_crashes = 30;
            cfg.crash_prob = 0.9;
            cfg.recovery_crash_prob = 0.6;
            cfg.crash_window = (5, 60);
            let report = run_sharded_kv_campaign(&cfg).unwrap();
            runs += 1;
            if !report.is_linearizable() {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "no sharded KV violation detected in {runs} runtime-driven no-scan runs"
        );
    }

    // ---- multi-region crash-point enumeration -------------------------

    /// Formats a deterministic 2-shard runtime-driven system: buffered
    /// stripe, one store + descriptor table per shard (table bases at
    /// `TABLE_ROOT_OFF`), and a 1-worker runtime over a fresh control
    /// region.
    fn build_enum_system(ops: &[KvTaskOp]) -> (PMem, PMemStripe) {
        let stripe = PMemBuilder::new().len(1 << 19).psan(true).build_striped(2);
        let store = ShardedKvStore::format(stripe.regions(), 8, 128, KvVariant::Nsrl).unwrap();
        let per_shard = ShardedKvTaskFunction::partition_ops_padded(ops, 2);
        for (s, shard_ops) in per_shard.iter().enumerate() {
            let table =
                KvOpTable::format(stripe.region(s).clone(), store.heap(s), shard_ops).unwrap();
            stripe
                .region(s)
                .write_u64(POffset::new(TABLE_ROOT_OFF), table.base().get())
                .unwrap();
            stripe
                .region(s)
                .flush(POffset::new(TABLE_ROOT_OFF), 8)
                .unwrap();
        }
        let control = PMemBuilder::new().len(1 << 20).build_in_memory();
        let stub = FunctionRegistry::new();
        StripedRuntime::format(
            control.clone(),
            stripe.clone(),
            RuntimeConfig::new(1).stack_capacity(8 * 1024),
            &stub,
        )
        .unwrap();
        (control, stripe)
    }

    /// Re-attaches store/tables/function to the current boot.
    fn attach_enum_system(
        control: &PMem,
        stripe: &PMemStripe,
    ) -> (ShardedKvStore, Vec<KvOpTable>, StripedRuntime) {
        let store = ShardedKvStore::open(stripe.regions(), KvVariant::Nsrl).unwrap();
        let tables = open_tables(stripe).unwrap();
        let mut registry = FunctionRegistry::new();
        registry
            .register(
                KV_SHARDED_FUNC_ID,
                ShardedKvTaskFunction::new(store.clone(), tables.clone()).into_arc(),
            )
            .unwrap();
        let rt = StripedRuntime::open(control.clone(), stripe.clone(), &registry).unwrap();
        (store, tables, rt)
    }

    /// Runs the 1-worker system to quiescence with no fail-points
    /// (recovering first, since the caller may hand over a state with
    /// an interrupted frame) and checks the execution: verifier-clean,
    /// every key holding its submitted value.
    fn drain_and_check(control: &PMem, stripe: &PMemStripe, ops: &[KvTaskOp], label: &str) {
        for _ in 0..16 {
            let (store, tables, rt) = attach_enum_system(control, stripe);
            rt.recover(RecoveryMode::Parallel).unwrap();
            let func = ShardedKvTaskFunction::new(store.clone(), tables.clone());
            let tasks = func.pending_tasks(KV_SHARDED_FUNC_ID, 4).unwrap();
            if tasks.is_empty() {
                let history = build_sharded_history(&store, &tables).unwrap();
                let verdict = check_kv_sharded(&history, |key| shard_of(key, 2));
                assert!(verdict.is_linearizable(), "{label}: {verdict:?}");
                let contents = store.contents().unwrap();
                for op in ops {
                    if let KvTaskOp::Put { key, value } = op {
                        assert_eq!(contents.get(key), Some(value), "{label}: key {key}");
                    }
                }
                let violations = stripe.psan_violations();
                assert!(violations.is_empty(), "{label}: sanitizer: {violations:?}");
                return;
            }
            let report = rt.run_tasks(tasks);
            assert!(!report.crashed, "{label}: no fail-points are armed");
        }
        panic!("{label}: system failed to drain in 16 rounds");
    }

    #[test]
    fn enumerated_shard_crash_times_recovery_step_boundaries() {
        // The multi-region enumeration: for a 2-shard stripe, crash
        // shard 0's region at *every* event boundary of its batch
        // window, then crash the recovery pass at *every* event
        // boundary of the same region — and from each (crash-moment ×
        // recovery-step) state, recovery must converge with per-bucket
        // all-or-nothing effects and no re-run frames.
        let ops: Vec<KvTaskOp> = (0..8u64)
            .map(|key| KvTaskOp::Put {
                key,
                value: key as i64 + 10,
            })
            .collect();
        let target = 0usize;

        // Clean run: count the target region's events for the whole
        // drive (one worker, unshuffled tasks — fully deterministic).
        let (control, stripe) = build_enum_system(&ops);
        let e0 = stripe.region(target).events();
        {
            let (store, tables, rt) = attach_enum_system(&control, &stripe);
            let func = ShardedKvTaskFunction::new(store, tables);
            let report = rt.run_tasks(func.pending_tasks(KV_SHARDED_FUNC_ID, 4).unwrap());
            assert!(!report.crashed);
        }
        let run_events = stripe.region(target).events() - e0;
        assert!(run_events >= 3, "a window must span several events");

        for k in 0..run_events {
            // Phase 1 (attribution): crash shard 0 after k events of
            // the run; the kill must trip the whole system and be
            // blamed on the armed region.
            {
                let (control, stripe) = build_enum_system(&ops);
                let (store, tables, rt) = attach_enum_system(&control, &stripe);
                stripe
                    .region(target)
                    .arm_failpoint(FailPlan::after_events(k));
                let func = ShardedKvTaskFunction::new(store, tables);
                let report = rt.run_tasks(func.pending_tasks(KV_SHARDED_FUNC_ID, 4).unwrap());
                assert!(report.crashed, "crash at event {k} must fire");
                assert!(rt.all_crashed(), "event {k}: whole system down");
                assert_eq!(
                    report.crash_site.map(|s| s.region),
                    Some(CrashRegion::Shard(target)),
                    "event {k}: kill attributed to the armed shard"
                );
            }

            // Phase 2: enumerate recovery-step boundaries j. Every
            // j below recovery's event footprint crashes the pass; the
            // first j at or past it completes cleanly — an `Ok` means
            // the plan never fired, so the enumeration of this k is
            // done.
            for j in 0.. {
                // Rebuild the identical crash-at-k state from scratch
                // (one worker, unshuffled tasks: fully deterministic).
                let (control, stripe) = build_enum_system(&ops);
                {
                    let (store, tables, rt) = attach_enum_system(&control, &stripe);
                    stripe
                        .region(target)
                        .arm_failpoint(FailPlan::after_events(k));
                    let func = ShardedKvTaskFunction::new(store, tables);
                    let report = rt.run_tasks(func.pending_tasks(KV_SHARDED_FUNC_ID, 4).unwrap());
                    assert!(report.crashed);
                }
                let control = control.reopen().unwrap();
                let stripe = stripe.reopen_all().unwrap();

                // Per-bucket all-or-nothing after the crash: every
                // published record carries an untorn tag and value
                // from the workload.
                let store = ShardedKvStore::open(stripe.regions(), KvVariant::Nsrl).unwrap();
                for chains in store.snapshot_sharded().unwrap() {
                    for rec in chains.iter().flatten() {
                        assert!(rec.key < 8, "crash {k}: phantom key {}", rec.key);
                        assert_eq!(
                            rec.value,
                            rec.key as i64 + 10,
                            "crash {k}: torn record value"
                        );
                    }
                }

                let (_, _, rt) = attach_enum_system(&control, &stripe);
                stripe
                    .region(target)
                    .arm_failpoint(FailPlan::after_events(j));
                match rt.recover(RecoveryMode::Parallel) {
                    Ok(rep) => {
                        stripe.disarm_all();
                        // No re-run frames: a completed recovery pass
                        // leaves nothing for a second one.
                        assert!(rep.total_frames() <= 1, "one worker, one frame");
                        assert_eq!(
                            rt.recover(RecoveryMode::Serial).unwrap().total_frames(),
                            0,
                            "crash {k}, step {j}: recovered frames must not re-run"
                        );
                        drain_and_check(&control, &stripe, &ops, &format!("crash {k}, step {j}"));
                        break;
                    }
                    Err(e) => {
                        assert!(e.is_crash(), "crash {k}, step {j}: {e}");
                        assert!(rt.all_crashed(), "recovery crash must trip all regions");
                        let control = control.reopen().unwrap();
                        let stripe = stripe.reopen_all().unwrap();
                        drain_and_check(&control, &stripe, &ops, &format!("crash {k}, step {j}"));
                    }
                }
            }
        }
    }

    // ---- negative controls: deliberately broken recovery --------------

    /// Maps a store's chains into the verifier's witness shape.
    fn witness_of(store: &ShardedKvStore) -> Vec<Vec<Vec<KvWitnessRecord>>> {
        store
            .snapshot_sharded()
            .unwrap()
            .into_iter()
            .map(|chains| {
                chains
                    .into_iter()
                    .map(|chain| chain.into_iter().map(KvWitnessRecord::from).collect())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovery_into_the_wrong_shard_is_flagged_as_misrouted() {
        use pstack_verify::KvViolation;
        // Crash a put mid-flight in its home shard, then "recover" it
        // by skipping the home shard's evidence scan and re-executing
        // in the *other* shard's store — the striping invariant breaks
        // and the sharded verifier must say exactly that.
        let stripe = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_striped(2);
        let kv = ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl).unwrap();
        let key = 0u64;
        let home = kv.shard_of(key);
        let wrong = 1 - home;
        stripe.region(home).arm_failpoint(FailPlan::after_events(1));
        assert!(kv.put(1, 1, key, 42).unwrap_err().is_crash());
        stripe.crash_all(3, 0.0);
        let stripe2 = stripe.reopen_all().unwrap();
        let kv2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();
        // The bug: recovery re-executes in a shard the router never
        // picked, instead of scanning the home shard.
        assert!(kv2.shard(wrong).recover_put(1, 1, key, 42).unwrap());

        let history = KvShardedHistory {
            ops: vec![KvOp {
                pid: 1,
                seq: 1,
                kind: KvOpKind::Put,
                key,
                value: 42,
                expected: 0,
                answer: KvAnswer::Stored(true),
            }],
            shards: witness_of(&kv2),
        };
        let verdict = check_kv_sharded(&history, |k| shard_of(k, 2));
        match verdict.violation() {
            Some(KvViolation::MisroutedKey { shard, home: h, .. }) => {
                assert_eq!(*shard, wrong);
                assert_eq!(*h, home);
            }
            other => panic!("expected MisroutedKey, got {other:?}"),
        }
    }

    #[test]
    fn skipping_the_recovery_scan_entirely_is_flagged_as_lost_update() {
        use pstack_verify::KvViolation;
        // Crash a put before anything publishes, then "recover" by
        // declaring it done without scanning or re-executing — the
        // answer claims success, no record exists anywhere, and the
        // verifier must report the lost update.
        let stripe = PMemBuilder::new()
            .len(1 << 18)
            .eager_flush(true)
            .build_striped(2);
        let kv = ShardedKvStore::format(stripe.regions(), 8, 64, KvVariant::Nsrl).unwrap();
        let key = 3u64;
        let home = kv.shard_of(key);
        stripe.region(home).arm_failpoint(FailPlan::after_events(0));
        assert!(kv.put(2, 9, key, 77).unwrap_err().is_crash());
        stripe.crash_all(5, 0.0);
        let stripe2 = stripe.reopen_all().unwrap();
        let kv2 = ShardedKvStore::open(stripe2.regions(), KvVariant::Nsrl).unwrap();

        let history = KvShardedHistory {
            ops: vec![KvOp {
                pid: 2,
                seq: 9,
                kind: KvOpKind::Put,
                key,
                value: 77,
                expected: 0,
                answer: KvAnswer::Stored(true), // the skipped-scan lie
            }],
            shards: witness_of(&kv2),
        };
        let verdict = check_kv_sharded(&history, |k| shard_of(k, 2));
        match verdict.violation() {
            Some(KvViolation::LostUpdate { tag }) => assert_eq!(*tag, (2, 9)),
            other => panic!("expected LostUpdate, got {other:?}"),
        }
    }

    #[test]
    fn sharded_noscan_is_caught() {
        // The sharded analogue of the §5.2 matrix-removal experiment:
        // no-scan recovery re-executes operations whose records already
        // published in their home shard; the sharded verifier reports
        // the duplicate tags. Detection is probabilistic per run, so
        // scan seeds.
        let mut detected = 0;
        let mut runs = 0;
        for seed in 0..24 {
            if detected >= 2 {
                break;
            }
            let mut cfg = ShardedKvCampaignConfig::new(80, seed).variant(KvVariant::NoScan);
            cfg.key_space = 4;
            cfg.max_crashes = 30;
            cfg.crash_prob = 0.9;
            cfg.crash_window = (5, 60);
            let report = run_sharded_kv_campaign(&cfg).unwrap();
            runs += 1;
            if !report.is_linearizable() {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "no sharded KV violation detected in {runs} no-scan runs"
        );
    }
}
