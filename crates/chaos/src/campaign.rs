//! The randomized crash campaign of §5.2.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pstack_core::{
    FunctionRegistry, PError, RecoveryMode, Runtime, RuntimeConfig, StackKind, Task,
};
use pstack_nvram::{FailPlan, PMem, PMemBuilder, POffset, PsanViolation};
use pstack_recoverable::{
    CasTaskFunction, CasVariant, RecoverableCas, TaskTable, CAS_TASK_FUNC_ID,
};
use pstack_telemetry::{TelemetrySummary, TraceSession};
use pstack_verify::{check_serializability, replay_witness, CasHistory, CasOp, SerialVerdict};

/// Configuration of one §5.2 campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Number of CAS operations (descriptors).
    pub n_ops: usize,
    /// Worker threads — the paper uses 4.
    pub workers: usize,
    /// Inclusive range operands are drawn from.
    pub value_range: (i64, i64),
    /// Master seed: campaigns are fully deterministic given the seed.
    pub seed: u64,
    /// Stack layout for the workers.
    pub stack_kind: StackKind,
    /// Correct NSRL CAS or the §5.2 buggy no-matrix variant.
    pub cas_variant: CasVariant,
    /// Crashes stop after this many, so the campaign terminates.
    pub max_crashes: usize,
    /// Fail-point countdown is drawn uniformly from this range.
    pub crash_window: (u64, u64),
    /// Probability of also injecting a crash into each recovery pass
    /// (the paper's repeated-failure scenario).
    pub recovery_crash_prob: f64,
    /// NVRAM region length.
    pub region_len: usize,
    /// Scheduling noise `(probability, pause-events)` applied after
    /// mutating NVRAM accesses: with the given probability the thread
    /// pauses until that many further events happen on other threads —
    /// modelling the OS preemption and slow persists of the paper's HDD
    /// deployment. `None` keeps campaigns deterministic (for a single
    /// worker).
    pub access_jitter: Option<(f64, u64)>,
    /// When set, the NVRAM is emulated on this file — the paper's
    /// actual deployment (HDD-backed `mmap`). The file is created (or
    /// truncated logically by reformatting) at campaign start.
    pub backing_file: Option<std::path::PathBuf>,
    /// Shadow every NVRAM access with the persist-order sanitizer and
    /// collect its findings in the report. Defaults to the `psan`
    /// crate feature (on unless built with `--no-default-features`).
    pub psan: bool,
    /// Record the campaign with the flight recorder and attach a
    /// [`TelemetrySummary`] to the report. Defaults to the `telemetry`
    /// crate feature (on unless built with `--no-default-features`).
    pub telemetry: bool,
}

impl CampaignConfig {
    /// The paper's wide-range setup: operands in `[-10⁵, 10⁵]`,
    /// 4 workers.
    #[must_use]
    pub fn wide(n_ops: usize, seed: u64) -> Self {
        CampaignConfig {
            n_ops,
            workers: 4,
            value_range: (-100_000, 100_000),
            seed,
            stack_kind: StackKind::Fixed,
            cas_variant: CasVariant::Nsrl,
            max_crashes: 8,
            crash_window: (40, 400),
            recovery_crash_prob: 0.3,
            region_len: 1 << 21,
            access_jitter: None,
            backing_file: None,
            psan: cfg!(feature = "psan"),
            telemetry: cfg!(feature = "telemetry"),
        }
    }

    /// The paper's narrow-range setup: operands in `[-10, 10]`, which
    /// forces duplicate values (multigraph edges in the verifier).
    #[must_use]
    pub fn narrow(n_ops: usize, seed: u64) -> Self {
        CampaignConfig {
            value_range: (-10, 10),
            ..Self::wide(n_ops, seed)
        }
    }

    /// Selects the CAS variant.
    #[must_use]
    pub fn variant(mut self, variant: CasVariant) -> Self {
        self.cas_variant = variant;
        self
    }

    /// Selects the stack layout.
    #[must_use]
    pub fn stack(mut self, kind: StackKind) -> Self {
        self.stack_kind = kind;
        self
    }
}

/// Outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Normal-mode rounds executed (≥ 1).
    pub rounds: usize,
    /// Crashes injected during normal-mode rounds.
    pub crashes: usize,
    /// Crashes injected during recovery passes (repeated failures).
    pub recovery_crashes: usize,
    /// Total frames completed by recovery passes.
    pub recovered_frames: usize,
    /// The collected execution.
    pub history: CasHistory,
    /// The §5.1 verdict on the execution.
    pub verdict: SerialVerdict,
    /// Persist-order sanitizer findings across every boot (empty when
    /// PSan is off; expected empty when it is on — the campaign's
    /// persist discipline is supposed to be violation-free).
    pub psan_violations: Vec<PsanViolation>,
    /// Flight-recorder summary (per-op latency percentiles, persist
    /// economy, crash→recovery timeline); `None` when recording was
    /// off for the run.
    pub telemetry: Option<TelemetrySummary>,
}

impl CampaignReport {
    /// `true` if the execution was found serializable.
    #[must_use]
    pub fn is_serializable(&self) -> bool {
        self.verdict.is_serializable()
    }
}

/// Persistent root record locating the CAS object and the descriptor
/// table across restarts (written into the user scratch area).
struct RootRecord {
    cas_base: POffset,
    table_base: POffset,
}

const ROOT_OFF: u64 = 64; // user scratch area begins here

fn write_root(pmem: &PMem, root: &RootRecord) -> Result<(), PError> {
    pmem.write_u64(POffset::new(ROOT_OFF), root.cas_base.get())?;
    pmem.write_u64(POffset::new(ROOT_OFF + 8), root.table_base.get())?;
    pmem.flush(POffset::new(ROOT_OFF), 16)?;
    Ok(())
}

fn read_root(pmem: &PMem) -> Result<RootRecord, PError> {
    Ok(RootRecord {
        cas_base: POffset::new(pmem.read_u64(POffset::new(ROOT_OFF))?),
        table_base: POffset::new(pmem.read_u64(POffset::new(ROOT_OFF + 8))?),
    })
}

fn build_registry(
    pmem: &PMem,
    cfg: &CampaignConfig,
) -> Result<(FunctionRegistry, RecoverableCas, TaskTable), PError> {
    let root = read_root(pmem)?;
    let cas = RecoverableCas::open(pmem.clone(), root.cas_base, cfg.workers, cfg.cas_variant)?;
    let table = TaskTable::open(pmem.clone(), root.table_base)?;
    let mut registry = FunctionRegistry::new();
    registry.register(
        CAS_TASK_FUNC_ID,
        CasTaskFunction::new(cas.clone(), table.clone()).into_arc(),
    )?;
    Ok((registry, cas, table))
}

/// Runs one full §5.2 campaign. Deterministic for a given
/// configuration.
///
/// # Errors
///
/// Propagates setup failures (the crash/restart loop itself handles
/// crashes as part of the experiment).
///
/// # Example
///
/// ```
/// use pstack_chaos::{run_campaign, CampaignConfig};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let report = run_campaign(&CampaignConfig::wide(40, 7))?;
/// assert!(report.is_serializable());
/// # Ok(())
/// # }
/// ```
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, PError> {
    let session = cfg.telemetry.then(TraceSession::start);
    let mut report = run_campaign_inner(cfg)?;
    report.telemetry = session.map(|s| s.finish().summary());
    Ok(report)
}

fn run_campaign_inner(cfg: &CampaignConfig) -> Result<CampaignReport, PError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let (lo, hi) = cfg.value_range;
    assert!(lo <= hi, "empty value range");
    let init: i64 = rng.random_range(lo..=hi);
    let ops: Vec<(i64, i64)> = (0..cfg.n_ops)
        .map(|_| (rng.random_range(lo..=hi), rng.random_range(lo..=hi)))
        .collect();

    // Standard-mode boot: format the system and the application state.
    let mut builder = PMemBuilder::new()
        .len(cfg.region_len)
        .eager_flush(true)
        .psan(cfg.psan);
    if let Some((prob, pause_events)) = cfg.access_jitter {
        builder = builder.access_jitter(prob, pause_events);
    }
    let mut pmem = match &cfg.backing_file {
        None => builder.build_in_memory(),
        Some(path) => {
            // Start from a fresh image: remove any previous campaign's
            // file so the format below is authoritative.
            let _ = std::fs::remove_file(path);
            builder.build_file(path).map_err(PError::Mem)?
        }
    };
    let stub = FunctionRegistry::new();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(cfg.workers)
            .stack_kind(cfg.stack_kind)
            .stack_capacity(8 * 1024),
        &stub,
    )?;
    let cas = RecoverableCas::format(pmem.clone(), rt.heap(), cfg.workers, init, cfg.cas_variant)?;
    let table = TaskTable::format(pmem.clone(), rt.heap(), &ops)?;
    write_root(
        &pmem,
        &RootRecord {
            cas_base: cas.base(),
            table_base: table.base(),
        },
    )?;

    let mut rounds = 0usize;
    let mut crashes = 0usize;
    let mut recovery_crashes = 0usize;
    let mut recovered_frames = 0usize;

    loop {
        rounds += 1;
        let (registry, _cas, table) = build_registry(&pmem, cfg)?;
        let rt = Runtime::open(pmem.clone(), &registry)?;

        // Step 3/7: enqueue the remaining descriptors in random order.
        let mut pending = table.pending()?;
        if pending.is_empty() {
            break;
        }
        pending.shuffle(&mut rng);
        let tasks: Vec<Task> = pending
            .iter()
            .map(|&i| Task::new(CAS_TASK_FUNC_ID, (i as u64).to_le_bytes().to_vec()))
            .collect();

        // Step 5: arm the kill at a random moment — while the crash
        // budget lasts.
        if crashes < cfg.max_crashes {
            let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
            pmem.arm_failpoint(FailPlan::after_events(countdown));
        }
        let report = rt.run_tasks(tasks);
        if !report.crashed {
            pmem.disarm_failpoint();
            continue; // next loop iteration sees an empty pending set
        }
        crashes += 1;

        // Step 6: restart in recovery mode; repeated failures may hit
        // the recovery itself.
        pmem = pmem.reopen()?;
        loop {
            let (registry, _, _) = build_registry(&pmem, cfg)?;
            let rt = Runtime::open(pmem.clone(), &registry)?;
            if crashes + recovery_crashes < cfg.max_crashes * 2
                && rng.random_bool(cfg.recovery_crash_prob)
            {
                let countdown = rng.random_range(5..=60);
                pmem.arm_failpoint(FailPlan::after_events(countdown));
            }
            match rt.recover(RecoveryMode::Parallel) {
                Ok(rep) => {
                    pmem.disarm_failpoint();
                    recovered_frames += rep.total_frames();
                    break;
                }
                Err(e) if e.is_crash() => {
                    recovery_crashes += 1;
                    pmem = pmem.reopen()?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Step 9: answers, final value, serializability.
    let (_, cas, table) = build_registry(&pmem, cfg)?;
    let results = table.results()?;
    let mut history_ops = Vec::with_capacity(cfg.n_ops);
    for (i, result) in results.iter().enumerate() {
        let (old, new) = table.op(i)?;
        let success = result.expect("campaign loop runs until every op completes");
        history_ops.push(CasOp {
            pid: 0,
            old,
            new,
            success,
        });
    }
    let history = CasHistory::new(init, cas.read()?, history_ops);
    let verdict = check_serializability(&history);
    if let SerialVerdict::Serializable { order } = &verdict {
        // Positive verdicts are independently replayed; a failure here
        // would be a checker bug, not an execution bug.
        replay_witness(&history, order).expect("serializability witness must replay");
    }

    Ok(CampaignReport {
        rounds,
        crashes,
        recovery_crashes,
        recovered_frames,
        history,
        verdict,
        psan_violations: pmem.psan_violations(),
        telemetry: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_campaign_is_serializable_and_crashes() {
        let report = run_campaign(&CampaignConfig::wide(60, 42)).unwrap();
        assert!(report.is_serializable(), "verdict: {:?}", report.verdict);
        assert!(report.crashes > 0, "campaign should experience crashes");
        assert_eq!(report.history.ops.len(), 60);
        assert!(report.rounds > 1);
        assert!(
            report.psan_violations.is_empty(),
            "sanitizer findings: {:?}",
            report.psan_violations
        );
    }

    #[test]
    fn narrow_campaign_is_serializable_with_duplicates() {
        let report = run_campaign(&CampaignConfig::narrow(60, 43)).unwrap();
        assert!(report.is_serializable(), "verdict: {:?}", report.verdict);
        // Narrow range all but guarantees duplicate operand pairs.
        let mut pairs: Vec<(i64, i64)> =
            report.history.ops.iter().map(|o| (o.old, o.new)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert!(pairs.len() < 60, "narrow range should produce duplicates");
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        // Single worker: thread scheduling cannot perturb the history,
        // so two runs with one seed must agree bit for bit.
        let cfg = CampaignConfig {
            workers: 1,
            ..CampaignConfig::wide(30, 7)
        };
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn all_stack_kinds_complete_campaigns() {
        for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            let report = run_campaign(&CampaignConfig::wide(30, 11).stack(kind)).unwrap();
            assert!(
                report.is_serializable(),
                "stack {kind}: verdict {:?}",
                report.verdict
            );
        }
    }

    #[test]
    fn buggy_cas_is_caught_across_seeds() {
        // §5.2: executions of the no-matrix CAS "were reported to be
        // non-serializable". Detection is per-run probabilistic — the
        // bug needs a crash to land between a CAS taking effect and its
        // answer persisting, with a concurrent overwrite in between —
        // so scan seeds with a high-contention, crash-heavy
        // configuration and require detections.
        // Detection odds per run depend on real-thread scheduling, so
        // a loaded host (the full workspace test run on one core)
        // needs a deeper seed scan than an idle one; the early exit
        // keeps the healthy case fast either way.
        let mut detected = 0;
        let mut runs = 0;
        for seed in 0..64 {
            if detected >= 2 {
                break; // the point is made; keep the test fast
            }
            let cfg = CampaignConfig {
                value_range: (-1, 1),
                max_crashes: 40,
                crash_window: (10, 80),
                recovery_crash_prob: 0.5,
                access_jitter: Some((0.15, 40)),
                ..CampaignConfig::wide(80, seed)
            }
            .variant(CasVariant::NoMatrix);
            let report = run_campaign(&cfg).unwrap();
            runs += 1;
            if !report.is_serializable() {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "no non-serializable execution detected in {runs} buggy runs"
        );
    }

    #[test]
    fn file_backed_campaign_matches_paper_deployment() {
        // §5.2 ran on HDD-backed mmap; the same campaign on the file
        // backend must behave identically (and leave a valid image).
        let mut path = std::env::temp_dir();
        path.push(format!("pstack-campaign-{}.img", std::process::id()));
        let cfg = CampaignConfig {
            backing_file: Some(path.clone()),
            ..CampaignConfig::narrow(30, 21)
        };
        let report = run_campaign(&cfg).unwrap();
        assert!(report.is_serializable(), "{:?}", report.verdict);
        assert!(path.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn correct_cas_never_flagged_across_seeds() {
        for seed in 100..110 {
            let report = run_campaign(&CampaignConfig::narrow(40, seed)).unwrap();
            assert!(
                report.is_serializable(),
                "seed {seed}: correct CAS flagged non-serializable: {:?}",
                report.verdict
            );
        }
    }
}
