//! The §5.2 crash-campaign methodology applied to the recoverable
//! key-value store — the ROADMAP's "real workload" on the runtime,
//! exercised end to end: random KV workload, seeded crashes at flush
//! boundaries, restart + recovery until completion, then a semantic
//! verdict from the KV verifier.
//!
//! Mirrors [`crate::run_campaign`] with the CAS register replaced by a
//! [`PKvStore`], the descriptor table by a [`KvOpTable`], and the §5.1
//! Eulerian-path check by [`pstack_verify::check_kv`]'s chain-witness
//! linearizability check against the sequential map specification.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pstack_core::{
    FunctionRegistry, PError, RecoveryMode, Runtime, RuntimeConfig, StackKind, Task,
};
use pstack_kv::{
    KvOpTable, KvTaskFunction, KvTaskOp, KvTaskResult, KvVariant, PKvStore, KV_TASK_FUNC_ID,
};
use pstack_nvram::{FailPlan, PMem, PMemBuilder, POffset, PsanViolation};
use pstack_telemetry::{TelemetrySummary, TraceSession};
use pstack_verify::{check_kv, KvAnswer, KvHistory, KvOp, KvOpKind, KvVerdict, KvWitnessRecord};

/// Configuration of one KV crash campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCampaignConfig {
    /// Number of KV operations (descriptors).
    pub n_ops: usize,
    /// Worker threads — 4, like the paper's CAS campaign.
    pub workers: usize,
    /// Keys are drawn from `0..key_space`; a small space forces
    /// same-key contention (chain conflicts, cas races).
    pub key_space: u64,
    /// Inclusive range put/cas values are drawn from.
    pub value_range: (i64, i64),
    /// Probability weights of (put, get, delete) — the remainder are
    /// cas operations.
    pub op_mix: (f64, f64, f64),
    /// Master seed; campaigns are deterministic given the seed (for a
    /// single worker).
    pub seed: u64,
    /// Stack layout for the workers.
    pub stack_kind: StackKind,
    /// Correct NSRL recovery or the no-scan bug.
    pub variant: KvVariant,
    /// Crashes stop after this many, so the campaign terminates.
    pub max_crashes: usize,
    /// Fail-point countdown drawn uniformly from this range.
    pub crash_window: (u64, u64),
    /// Probability of injecting a crash into each recovery pass.
    pub recovery_crash_prob: f64,
    /// NVRAM region length.
    pub region_len: usize,
    /// Scheduling noise `(probability, pause-events)`; see
    /// [`crate::CampaignConfig::access_jitter`].
    pub access_jitter: Option<(f64, u64)>,
    /// Shadow every NVRAM access with the persist-order sanitizer and
    /// collect its findings in the report. Defaults to the `psan`
    /// crate feature.
    pub psan: bool,
    /// Record the campaign with the flight recorder; defaults to the
    /// `telemetry` crate feature.
    pub telemetry: bool,
}

impl KvCampaignConfig {
    /// Defaults mirroring the paper's CAS campaign: 4 workers, 16 hot
    /// keys, values in `[-100, 100]`, a 50/25/10/15 put/get/delete/cas
    /// mix.
    #[must_use]
    pub fn new(n_ops: usize, seed: u64) -> Self {
        KvCampaignConfig {
            n_ops,
            workers: 4,
            key_space: 16,
            value_range: (-100, 100),
            op_mix: (0.5, 0.25, 0.1),
            seed,
            stack_kind: StackKind::Fixed,
            variant: KvVariant::Nsrl,
            max_crashes: 8,
            crash_window: (40, 400),
            recovery_crash_prob: 0.3,
            region_len: 1 << 21,
            access_jitter: None,
            psan: cfg!(feature = "psan"),
            telemetry: cfg!(feature = "telemetry"),
        }
    }

    /// Selects the recovery variant.
    #[must_use]
    pub fn variant(mut self, variant: KvVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the stack layout.
    #[must_use]
    pub fn stack(mut self, kind: StackKind) -> Self {
        self.stack_kind = kind;
        self
    }
}

/// One shard's version-log usage at the end of a campaign. A filled
/// log turns *that shard* read-only — every later mutation routed to
/// it legally answers "no effect", an execution the verifier rightly
/// accepts but one that stops exercising crash recovery. Reporting
/// usage per shard (instead of a global sum) is what lets campaign
/// tests catch a single hot shard degenerating while the others keep
/// plenty of headroom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLogUsage {
    /// The shard index (always 0 for the unsharded campaign).
    pub shard: usize,
    /// Log slots reserved (published records plus crash orphans).
    pub reserved: u64,
    /// The shard's lifetime version-log capacity.
    pub capacity: u64,
}

impl ShardLogUsage {
    /// `true` while the shard can still accept mutations.
    #[must_use]
    pub fn has_headroom(&self) -> bool {
        self.reserved < self.capacity
    }

    /// Free log slots as a fraction of capacity, in `[0, 1]` — **the
    /// compaction trigger signal**: `1.0` is a fresh log, `0.0` a full
    /// (read-only) one. A driver compacts a shard when this falls
    /// under its threshold (`run_compaction_campaign` uses it that
    /// way; `ShardedKvStore::compact_shard` is the lever it pulls).
    /// Over-reserved counts (possible only through corruption) clamp
    /// to `0.0` rather than going negative.
    #[must_use]
    pub fn headroom_fraction(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.capacity.saturating_sub(self.reserved) as f64 / self.capacity as f64
    }

    /// `true` if **every** shard in `usage` keeps headroom — the
    /// per-shard check that catches one hot shard turning read-only
    /// even while aggregate usage looks healthy.
    #[must_use]
    pub fn all_have_headroom(usage: &[ShardLogUsage]) -> bool {
        usage.iter().all(ShardLogUsage::has_headroom)
    }

    /// The shard of `usage` that triggered — or should trigger —
    /// compaction: the one with the smallest headroom fraction below
    /// `threshold`. `None` while every shard keeps at least
    /// `threshold` of its log free. Both campaign reports delegate
    /// their `compaction_candidate` accessors here.
    #[must_use]
    pub fn compaction_candidate(usage: &[ShardLogUsage], threshold: f64) -> Option<usize> {
        usage
            .iter()
            .filter(|u| u.headroom_fraction() < threshold)
            .min_by(|a, b| {
                a.headroom_fraction()
                    .partial_cmp(&b.headroom_fraction())
                    .expect("headroom fractions are finite")
            })
            .map(|u| u.shard)
    }

    /// The fullest shard of `usage` (highest reserved/capacity ratio,
    /// compared by cross-multiplication) — what a capacity alert would
    /// page on.
    ///
    /// # Panics
    ///
    /// Panics on an empty list (campaign reports always hold ≥ 1).
    #[must_use]
    pub fn tightest(usage: &[ShardLogUsage]) -> ShardLogUsage {
        let ratio = |x: &ShardLogUsage, other_cap: u64| {
            u128::from(x.reserved) * u128::from(other_cap.max(1))
        };
        *usage
            .iter()
            .max_by(|a, b| ratio(a, b.capacity).cmp(&ratio(b, a.capacity)))
            .expect("at least one shard")
    }
}

impl std::fmt::Display for ShardLogUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}: {}/{}",
            self.shard, self.reserved, self.capacity
        )
    }
}

/// Outcome of a KV campaign.
#[derive(Debug, Clone)]
pub struct KvCampaignReport {
    /// Normal-mode rounds executed (≥ 1).
    pub rounds: usize,
    /// Crashes injected during normal-mode rounds.
    pub crashes: usize,
    /// Crashes injected during recovery passes.
    pub recovery_crashes: usize,
    /// Total frames completed by recovery passes.
    pub recovered_frames: usize,
    /// The collected execution (answers + chain witness).
    pub history: KvHistory,
    /// The KV linearizability verdict.
    pub verdict: KvVerdict,
    /// Per-shard version-log usage at the end of the campaign (one
    /// entry for this single-store campaign; the sharded campaign
    /// reports one per shard).
    pub log_usage: Vec<ShardLogUsage>,
    /// Persist-order sanitizer findings across every boot (empty when
    /// PSan is off; expected empty when it is on).
    pub psan_violations: Vec<PsanViolation>,
    /// Flight-recorder summary; `None` when recording was off.
    pub telemetry: Option<TelemetrySummary>,
}

impl KvCampaignReport {
    /// `true` if the execution passed the KV check.
    #[must_use]
    pub fn is_linearizable(&self) -> bool {
        self.verdict.is_linearizable()
    }

    /// Total crash/recover cycles the campaign survived.
    #[must_use]
    pub fn total_crashes(&self) -> usize {
        self.crashes + self.recovery_crashes
    }

    /// See [`ShardLogUsage::all_have_headroom`].
    #[must_use]
    pub fn log_had_headroom(&self) -> bool {
        ShardLogUsage::all_have_headroom(&self.log_usage)
    }

    /// See [`ShardLogUsage::tightest`].
    ///
    /// # Panics
    ///
    /// Panics if the report holds no shards (never produced by the
    /// campaign runners).
    #[must_use]
    pub fn tightest_shard(&self) -> ShardLogUsage {
        ShardLogUsage::tightest(&self.log_usage)
    }
}

const ROOT_OFF: u64 = 64;

fn write_root(pmem: &PMem, store_base: POffset, table_base: POffset) -> Result<(), PError> {
    pmem.write_u64(POffset::new(ROOT_OFF), store_base.get())?;
    pmem.write_u64(POffset::new(ROOT_OFF + 8), table_base.get())?;
    pmem.flush(POffset::new(ROOT_OFF), 16)?;
    Ok(())
}

fn build_registry(
    pmem: &PMem,
    variant: KvVariant,
) -> Result<(FunctionRegistry, PKvStore, KvOpTable), PError> {
    let store_base = POffset::new(pmem.read_u64(POffset::new(ROOT_OFF))?);
    let table_base = POffset::new(pmem.read_u64(POffset::new(ROOT_OFF + 8))?);
    let store = PKvStore::open(pmem.clone(), store_base, variant)?;
    let table = KvOpTable::open(pmem.clone(), table_base)?;
    let mut registry = FunctionRegistry::new();
    registry.register(
        KV_TASK_FUNC_ID,
        KvTaskFunction::new(store.clone(), table.clone()).into_arc(),
    )?;
    Ok((registry, store, table))
}

/// Builds the verifier history from the quiescent table and store.
pub(crate) fn build_kv_history(store: &PKvStore, table: &KvOpTable) -> Result<KvHistory, PError> {
    let chains: Vec<Vec<KvWitnessRecord>> = store
        .snapshot()?
        .into_iter()
        .map(|chain| chain.into_iter().map(KvWitnessRecord::from).collect())
        .collect();

    let mut ops = Vec::with_capacity(table.len());
    for idx in 0..table.len() {
        let answer = table.result(idx)?.ok_or_else(|| {
            PError::Task(format!(
                "descriptor {idx} still pending; campaign incomplete"
            ))
        })?;
        let pid = u64::from(answer.executor);
        let seq = idx as u64 + 1;
        let (kind, key, value, expected, ans) = match (table.op(idx)?, answer.result) {
            (KvTaskOp::Put { key, value }, KvTaskResult::Stored(ok)) => {
                (KvOpKind::Put, key, value, 0, KvAnswer::Stored(ok))
            }
            (KvTaskOp::Get { key }, KvTaskResult::Got(v)) => {
                (KvOpKind::Get, key, 0, 0, KvAnswer::Got(v))
            }
            (KvTaskOp::Delete { key }, KvTaskResult::Deleted(ok)) => {
                (KvOpKind::Delete, key, 0, 0, KvAnswer::Deleted(ok))
            }
            (KvTaskOp::Cas { key, expected, new }, KvTaskResult::Swapped(ok)) => {
                (KvOpKind::Cas, key, new, expected, KvAnswer::Swapped(ok))
            }
            (op, res) => {
                return Err(PError::Task(format!(
                    "descriptor {idx}: answer {res:?} does not match op {op:?}"
                )))
            }
        };
        ops.push(KvOp {
            pid,
            seq,
            kind,
            key,
            value,
            expected,
            answer: ans,
        });
    }
    Ok(KvHistory { ops, chains })
}

/// Runs one full KV crash campaign (the §5.2 loop with the KV store as
/// the object under test). Deterministic for a given configuration
/// with a single worker.
///
/// # Errors
///
/// Propagates setup failures; the crash/restart loop itself handles
/// crashes as part of the experiment.
///
/// # Example
///
/// ```
/// use pstack_chaos::{run_kv_campaign, KvCampaignConfig};
///
/// # fn main() -> Result<(), pstack_core::PError> {
/// let report = run_kv_campaign(&KvCampaignConfig::new(30, 7))?;
/// assert!(report.is_linearizable());
/// # Ok(())
/// # }
/// ```
pub fn run_kv_campaign(cfg: &KvCampaignConfig) -> Result<KvCampaignReport, PError> {
    let session = cfg.telemetry.then(TraceSession::start);
    let mut report = run_kv_campaign_inner(cfg)?;
    report.telemetry = session.map(|s| s.finish().summary());
    Ok(report)
}

fn run_kv_campaign_inner(cfg: &KvCampaignConfig) -> Result<KvCampaignReport, PError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let (lo, hi) = cfg.value_range;
    assert!(lo <= hi, "empty value range");
    assert!(cfg.key_space > 0, "empty key space");
    let (p_put, p_get, p_del) = cfg.op_mix;
    let ops: Vec<KvTaskOp> = (0..cfg.n_ops)
        .map(|_| {
            let key = rng.random_range(0..cfg.key_space);
            let roll: f64 = rng.random();
            if roll < p_put {
                KvTaskOp::Put {
                    key,
                    value: rng.random_range(lo..=hi),
                }
            } else if roll < p_put + p_get {
                KvTaskOp::Get { key }
            } else if roll < p_put + p_get + p_del {
                KvTaskOp::Delete { key }
            } else {
                KvTaskOp::Cas {
                    key,
                    expected: rng.random_range(lo..=hi),
                    new: rng.random_range(lo..=hi),
                }
            }
        })
        .collect();
    // Each descriptor consumes at most one published slot, every crash
    // can orphan up to one reserved slot per in-flight worker, and
    // precondition-fail retries can orphan one more per execution
    // attempt; provision for all of it so the log never turns the
    // store read-only mid-campaign (the tests assert log_had_headroom).
    let log_cap =
        cfg.n_ops as u64 * 2 + (cfg.max_crashes as u64 * 2 + 1) * (cfg.workers as u64 + 1) + 64;
    let nbuckets = cfg.key_space.max(4);

    let mut builder = PMemBuilder::new()
        .len(cfg.region_len)
        .eager_flush(true)
        .psan(cfg.psan);
    if let Some((prob, pause_events)) = cfg.access_jitter {
        builder = builder.access_jitter(prob, pause_events);
    }
    let mut pmem = builder.build_in_memory();
    let stub = FunctionRegistry::new();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(cfg.workers)
            .stack_kind(cfg.stack_kind)
            .stack_capacity(8 * 1024),
        &stub,
    )?;
    let store = PKvStore::format(pmem.clone(), rt.heap(), nbuckets, log_cap, cfg.variant)?;
    let table = KvOpTable::format(pmem.clone(), rt.heap(), &ops)?;
    write_root(&pmem, store.base(), table.base())?;

    let mut rounds = 0usize;
    let mut crashes = 0usize;
    let mut recovery_crashes = 0usize;
    let mut recovered_frames = 0usize;

    loop {
        rounds += 1;
        let (registry, _, table) = build_registry(&pmem, cfg.variant)?;
        let rt = Runtime::open(pmem.clone(), &registry)?;

        // Step 3/7: enqueue the remaining descriptors in random order.
        let mut pending = table.pending()?;
        if pending.is_empty() {
            break;
        }
        pending.shuffle(&mut rng);
        let tasks: Vec<Task> = pending
            .iter()
            .map(|&i| Task::new(KV_TASK_FUNC_ID, (i as u64).to_le_bytes().to_vec()))
            .collect();

        // Step 5: arm the kill at a random flush boundary — while the
        // crash budget lasts.
        if crashes < cfg.max_crashes {
            let countdown = rng.random_range(cfg.crash_window.0..=cfg.crash_window.1);
            pmem.arm_failpoint(FailPlan::after_events(countdown));
        }
        let report = rt.run_tasks(tasks);
        if !report.crashed {
            pmem.disarm_failpoint();
            continue;
        }
        crashes += 1;

        // Step 6: restart in recovery mode; repeated failures may hit
        // the recovery itself.
        pmem = {
            let _phase = pstack_telemetry::phase("recovery.reopen");
            pmem.reopen()?
        };
        loop {
            let (registry, _, _) = build_registry(&pmem, cfg.variant)?;
            let rt = Runtime::open(pmem.clone(), &registry)?;
            if crashes + recovery_crashes < cfg.max_crashes * 2
                && rng.random_bool(cfg.recovery_crash_prob)
            {
                let countdown = rng.random_range(5..=60);
                pmem.arm_failpoint(FailPlan::after_events(countdown));
            }
            match rt.recover(RecoveryMode::Parallel) {
                Ok(rep) => {
                    pmem.disarm_failpoint();
                    recovered_frames += rep.total_frames();
                    break;
                }
                Err(e) if e.is_crash() => {
                    recovery_crashes += 1;
                    pmem = {
                        let _phase = pstack_telemetry::phase("recovery.reopen");
                        pmem.reopen()?
                    };
                }
                Err(e) => return Err(e),
            }
        }
    }

    // Step 9: answers, chain witness, linearizability.
    let (_, store, table) = build_registry(&pmem, cfg.variant)?;
    let history = build_kv_history(&store, &table)?;
    let verdict = check_kv(&history);
    Ok(KvCampaignReport {
        rounds,
        crashes,
        recovery_crashes,
        recovered_frames,
        history,
        verdict,
        log_usage: vec![ShardLogUsage {
            shard: 0,
            reserved: store.log_reserved()?,
            capacity: store.log_capacity()?,
        }],
        psan_violations: pmem.psan_violations(),
        telemetry: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_campaign_is_linearizable_and_crashes() {
        let report = run_kv_campaign(&KvCampaignConfig::new(60, 31)).unwrap();
        assert!(report.is_linearizable(), "verdict: {:?}", report.verdict);
        assert!(report.crashes > 0, "campaign should experience crashes");
        assert_eq!(report.history.ops.len(), 60);
        assert!(report.rounds > 1);
        assert!(
            report.log_had_headroom(),
            "log filled ({}) — the campaign degenerated to a read-only store",
            report.tightest_shard()
        );
        assert!(
            report.psan_violations.is_empty(),
            "sanitizer findings: {:?}",
            report.psan_violations
        );
    }

    #[test]
    fn kv_campaigns_are_deterministic_per_seed() {
        let cfg = KvCampaignConfig {
            workers: 1,
            ..KvCampaignConfig::new(30, 5)
        };
        let a = run_kv_campaign(&cfg).unwrap();
        let b = run_kv_campaign(&cfg).unwrap();
        assert_eq!(a.history, b.history);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn kv_campaign_works_on_all_stack_kinds() {
        for kind in [StackKind::Fixed, StackKind::Vec, StackKind::List] {
            let report = run_kv_campaign(&KvCampaignConfig::new(30, 37).stack(kind)).unwrap();
            assert!(
                report.is_linearizable(),
                "stack {kind}: {:?}",
                report.verdict
            );
        }
    }

    #[test]
    fn two_hundred_crash_recover_cycles_lose_nothing() {
        // The acceptance gate of the KV subsystem: ≥ 200 seeded
        // crash/recover cycles across flush boundaries, each campaign
        // reopening, recovering, and verifying against the sequential
        // spec — zero lost or torn updates tolerated.
        let mut cycles = 0usize;
        let mut campaigns = 0usize;
        for seed in 0.. {
            let cfg = KvCampaignConfig {
                max_crashes: 14,
                crash_window: (20, 200),
                recovery_crash_prob: 0.5,
                ..KvCampaignConfig::new(50, 1000 + seed)
            };
            let report = run_kv_campaign(&cfg).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: lost or torn update after {} crashes: {:?}",
                report.total_crashes(),
                report.verdict
            );
            assert!(
                report.log_had_headroom(),
                "seed {seed}: log filled ({}) — cycles stopped exercising recovery",
                report.tightest_shard()
            );
            assert!(
                report.psan_violations.is_empty(),
                "seed {seed}: sanitizer findings: {:?}",
                report.psan_violations
            );
            cycles += report.total_crashes();
            campaigns += 1;
            if cycles >= 200 {
                break;
            }
        }
        assert!(
            cycles >= 200,
            "only {cycles} crash/recover cycles across {campaigns} campaigns"
        );
    }

    #[test]
    fn correct_kv_never_flagged_across_seeds() {
        for seed in 300..308 {
            let report = run_kv_campaign(&KvCampaignConfig::new(40, seed)).unwrap();
            assert!(
                report.is_linearizable(),
                "seed {seed}: {:?}",
                report.verdict
            );
            assert!(report.log_had_headroom(), "seed {seed}: log filled");
        }
    }

    #[test]
    fn noscan_kv_is_caught_across_seeds() {
        // The KV analogue of §5.2's matrix-removal experiment: no-scan
        // recovery re-executes operations whose effects already
        // published, and the verifier reports the duplicate tags.
        // Detection is probabilistic per run, so scan seeds with a
        // crash-heavy, high-contention configuration.
        let mut detected = 0;
        let mut runs = 0;
        for seed in 0..24 {
            if detected >= 2 {
                break;
            }
            let cfg = KvCampaignConfig {
                key_space: 4,
                max_crashes: 40,
                crash_window: (10, 80),
                recovery_crash_prob: 0.5,
                access_jitter: Some((0.15, 40)),
                ..KvCampaignConfig::new(80, seed)
            }
            .variant(KvVariant::NoScan);
            let report = run_kv_campaign(&cfg).unwrap();
            runs += 1;
            if !report.is_linearizable() {
                detected += 1;
            }
        }
        assert!(
            detected > 0,
            "no KV violation detected in {runs} no-scan runs"
        );
    }
}
