//! Crash-injection harness reproducing the paper's §5.2 experiments.
//!
//! The paper tests the persistent-stack runtime by running randomly
//! generated recoverable-CAS workloads on emulated NVRAM, killing the
//! system at random moments, restarting it in recovery mode, and
//! finally checking the collected execution for serializability:
//!
//! > 1. Generate an initial integer value of the register; 2. generate
//! > {newᵢ} and {oldᵢ} … uniformly sampled from some range: either wide
//! > (`[-10⁵, 10⁵]`) or narrow (`[-10, 10]`); 3. start the system in
//! > the normal mode, add descriptors … in random order; 4. run 4
//! > working threads; 5. at a random moment, emulate system failure …;
//! > 6. restart the system in the recovery mode …; 7. restart the
//! > system in the normal mode, add all remaining descriptors …;
//! > 8. run steps 4–7 until all operations are completed; 9. get
//! > answers …, get the final value …, verify the execution for
//! > serializability.
//!
//! Two implementations of that loop are provided:
//!
//! * [`run_campaign`] — in-process, with `kill` emulated by
//!   deterministic fail-points (seeded, reproducible, CI-friendly; see
//!   the substitution table in DESIGN.md);
//! * [`run_kill_campaign`] — the real thing: worker **processes** over
//!   a file-backed image, SIGKILLed by a driver process at random
//!   wall-clock moments (the `kill_campaign` binary drives it).
//!
//! The module also provides [`enumerate_crash_points`], the exhaustive
//! single-operation crash harness used across the test suites.

mod campaign;
mod compaction_campaign;
mod crashpoints;
mod kv_campaign;
mod sharded_kv_campaign;
// The real-kill(1) harness spawns and SIGKILLs OS processes: unix-only
// and inherently nondeterministic, so it is opt-in via the
// `kill-harness` feature. Default builds and `cargo test -q` stay
// deterministic.
#[cfg(all(unix, feature = "kill-harness"))]
mod killharness;
mod queue_campaign;
mod server_campaign;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use compaction_campaign::{
    run_compaction_campaign, CompactionCampaignConfig, CompactionCampaignReport,
};
pub use crashpoints::{enumerate_crash_points, CrashScenario, EnumerationReport};
#[cfg(all(unix, feature = "kill-harness"))]
pub use killharness::{
    child_recover, child_run, collect_report, format_image, run_kill_campaign, ChildOutcome,
    KillCampaignConfig, KillCampaignReport, KillOutcome, KillWorkload,
};
pub use kv_campaign::{run_kv_campaign, KvCampaignConfig, KvCampaignReport, ShardLogUsage};
pub use queue_campaign::{run_queue_campaign, QueueCampaignConfig, QueueCampaignReport};
pub use server_campaign::{
    run_server_campaign, CycleSlo, ServerCampaignConfig, ServerCampaignReport, SloStat,
};
pub use sharded_kv_campaign::{
    run_sharded_kv_campaign, ShardedKvCampaignConfig, ShardedKvCampaignReport,
};
