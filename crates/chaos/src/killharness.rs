//! The §5.2 experiment with a *real* `kill(1)`: separate OS processes
//! over a file-backed NVRAM image.
//!
//! The in-process campaign ([`crate::run_campaign`]) emulates the kill
//! with deterministic fail-points. This module removes the emulation:
//! a **driver** process formats an NVRAM image file, then repeatedly
//! spawns a **worker** process (the same binary, `child-run` mode) that
//! executes CAS descriptors against the file, and SIGKILLs it at a
//! random wall-clock moment — exactly the paper's methodology ("we used
//! UNIX utility `kill` to interrupt the system at random moments"). The
//! worker's volatile state (its in-process dirty-line cache, threads,
//! volatile stack indexes) genuinely evaporates with the process; only
//! what the write-through file backend persisted survives. After each
//! kill the driver runs a **recovery** process (`child-recover` mode),
//! which it may also kill — the paper's repeated-failure scenario —
//! until one recovery pass completes. When every descriptor is done the
//! driver reads the answers from the image and runs the workload's
//! semantic verifier — §5.1 serializability for the CAS workload, the
//! FIFO witness check for the queue workload ([`KillWorkload`]).
//!
//! The driver/worker protocol lives in this module so both the
//! `kill_campaign` binary and the integration tests can drive it; see
//! `crates/chaos/src/bin/kill_campaign.rs` for the CLI.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pstack_core::{
    FunctionRegistry, PError, RecoveryMode, Runtime, RuntimeConfig, StackKind, Task,
};
use pstack_nvram::{PMem, PMemBuilder, POffset};
use pstack_recoverable::{
    CasTaskFunction, CasVariant, QueueOpTable, QueueTaskFunction, QueueTaskOp, QueueVariant,
    RecoverableCas, RecoverableQueue, TaskTable, CAS_TASK_FUNC_ID, QUEUE_TASK_FUNC_ID,
};
use pstack_verify::{
    check_fifo, check_serializability, replay_witness, CasHistory, CasOp, FifoVerdict,
    QueueHistory, SerialVerdict,
};

use crate::queue_campaign::build_queue_history;

/// Magic word opening the harness root record in the user scratch area.
const ROOT_MAGIC: u64 = 0x4B49_4C4C_524F_4F54; // "KILLROOT"
/// The root record starts at the user scratch area (after the runtime
/// superblock).
const ROOT_OFF: u64 = 64;

/// Which object (and semantic check) a kill campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillWorkload {
    /// The §5.2 recoverable CAS, verified for serializability.
    Cas(CasVariant),
    /// The recoverable queue (future work 1), verified for FIFO.
    Queue(QueueVariant),
}

impl Default for KillWorkload {
    fn default() -> Self {
        KillWorkload::Cas(CasVariant::Nsrl)
    }
}

impl KillWorkload {
    fn as_bytes(self) -> (u8, u8) {
        match self {
            KillWorkload::Cas(v) => (0, v.as_u8()),
            KillWorkload::Queue(v) => (1, v.as_u8()),
        }
    }

    fn from_bytes(kind: u8, variant: u8) -> Result<Self, PError> {
        match kind {
            0 => Ok(KillWorkload::Cas(CasVariant::from_u8(variant)?)),
            1 => Ok(KillWorkload::Queue(QueueVariant::from_u8(variant)?)),
            other => Err(PError::InvalidConfig(format!(
                "unknown kill workload kind {other}"
            ))),
        }
    }
}

/// Configuration of one real-`kill` campaign.
///
/// # Example
///
/// ```
/// use pstack_chaos::KillCampaignConfig;
///
/// let cfg = KillCampaignConfig::new("/tmp/pstack-kill.img", 40, 7)
///     .kill_delay_ms(2, 20)
///     .max_kills(4);
/// assert_eq!(cfg.n_ops, 40);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KillCampaignConfig {
    /// Path of the NVRAM image file (created by the driver).
    pub image: PathBuf,
    /// Number of CAS descriptors.
    pub n_ops: usize,
    /// Worker threads inside each worker process — the paper uses 4.
    pub workers: usize,
    /// Inclusive operand range.
    pub value_range: (i64, i64),
    /// Seed for the workload (operands and initial value). Kill timing
    /// is wall-clock and therefore *not* reproducible — as in the paper.
    pub seed: u64,
    /// Which object (and check) the campaign exercises.
    pub workload: KillWorkload,
    /// Probability a descriptor is an enqueue (queue workloads only).
    pub enqueue_bias: f64,
    /// Stack layout for the worker threads.
    pub stack_kind: StackKind,
    /// NVRAM image length in bytes.
    pub region_len: usize,
    /// Kills of normal-mode worker processes before the driver lets the
    /// campaign run to completion.
    pub max_kills: usize,
    /// Range (inclusive, milliseconds) the driver sleeps before killing
    /// a worker process.
    pub kill_delay: (u64, u64),
    /// Probability that a recovery process is also killed (repeated
    /// failures), while the kill budget lasts.
    pub recovery_kill_prob: f64,
    /// Per-line persist latency in microseconds, emulating the paper's
    /// slow HDD persists. Without it the emulated device is so fast
    /// that worker processes finish before any wall-clock kill can
    /// land mid-operation. Persisted in the image's root record so
    /// every child process runs the same device model.
    pub persist_delay_us: u32,
}

impl KillCampaignConfig {
    /// Starts a configuration with the paper's §5.2 defaults: 4 worker
    /// threads, operands in the wide range `[-10⁵, 10⁵]`, the correct
    /// NSRL CAS, fixed stacks and a 2 MiB image.
    #[must_use]
    pub fn new(image: impl Into<PathBuf>, n_ops: usize, seed: u64) -> Self {
        KillCampaignConfig {
            image: image.into(),
            n_ops,
            workers: 4,
            value_range: (-100_000, 100_000),
            seed,
            workload: KillWorkload::Cas(CasVariant::Nsrl),
            enqueue_bias: 0.6,
            stack_kind: StackKind::Fixed,
            region_len: 1 << 21,
            max_kills: 6,
            kill_delay: (2, 25),
            recovery_kill_prob: 0.3,
            persist_delay_us: 150,
        }
    }

    /// Selects the CAS variant (and the CAS workload).
    #[must_use]
    pub fn variant(mut self, variant: CasVariant) -> Self {
        self.workload = KillWorkload::Cas(variant);
        self
    }

    /// Switches the campaign to the queue workload with the given
    /// variant; operand range narrows to `[-100, 100]` like the
    /// in-process queue campaign.
    #[must_use]
    pub fn queue(mut self, variant: QueueVariant) -> Self {
        self.workload = KillWorkload::Queue(variant);
        self.value_range = (-100, 100);
        self
    }

    /// Narrows the operand range to the paper's `[-10, 10]` setup.
    #[must_use]
    pub fn narrow(mut self) -> Self {
        self.value_range = (-10, 10);
        self
    }

    /// Sets the kill-delay window in milliseconds.
    #[must_use]
    pub fn kill_delay_ms(mut self, lo: u64, hi: u64) -> Self {
        self.kill_delay = (lo, hi);
        self
    }

    /// Sets the kill budget.
    #[must_use]
    pub fn max_kills(mut self, kills: usize) -> Self {
        self.max_kills = kills;
        self
    }
}

/// The collected execution and its semantic verdict, per workload.
#[derive(Debug, Clone)]
pub enum KillOutcome {
    /// A CAS campaign's history and §5.1 serializability verdict.
    Cas {
        /// The collected execution.
        history: CasHistory,
        /// The §5.1 verdict.
        verdict: SerialVerdict,
    },
    /// A queue campaign's history and FIFO verdict.
    Queue {
        /// The collected execution (answers + slot witness).
        history: QueueHistory,
        /// The FIFO verdict.
        verdict: FifoVerdict,
    },
}

impl KillOutcome {
    /// `true` if the execution passed its semantic check
    /// (serializability for CAS, FIFO for the queue).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        match self {
            KillOutcome::Cas { verdict, .. } => verdict.is_serializable(),
            KillOutcome::Queue { verdict, .. } => verdict.is_fifo(),
        }
    }

    /// Number of operations in the collected history.
    #[must_use]
    pub fn ops(&self) -> usize {
        match self {
            KillOutcome::Cas { history, .. } => history.ops.len(),
            KillOutcome::Queue { history, .. } => history.ops.len(),
        }
    }
}

/// Outcome of a real-`kill` campaign.
#[derive(Debug, Clone)]
pub struct KillCampaignReport {
    /// Worker processes spawned (killed or completed).
    pub rounds: usize,
    /// Worker processes killed by the driver.
    pub kills: usize,
    /// Recovery processes killed by the driver (repeated failures).
    pub recovery_kills: usize,
    /// Recovery processes spawned in total.
    pub recovery_attempts: usize,
    /// The collected execution and its verdict.
    pub outcome: KillOutcome,
}

impl KillCampaignReport {
    /// `true` if the execution passed its semantic check.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.outcome.is_consistent()
    }

    /// `true` if this was a CAS campaign and it verified serializable
    /// (kept for symmetry with the paper's §5.2 wording).
    #[must_use]
    pub fn is_serializable(&self) -> bool {
        matches!(
            &self.outcome,
            KillOutcome::Cas { verdict, .. } if verdict.is_serializable()
        )
    }
}

/// The attached persistent objects, per workload.
enum Objects {
    Cas {
        cas: RecoverableCas,
        table: TaskTable,
    },
    Queue {
        queue: RecoverableQueue,
        table: QueueOpTable,
    },
}

impl Objects {
    fn pending(&self) -> Result<Vec<usize>, PError> {
        match self {
            Objects::Cas { table, .. } => table.pending(),
            Objects::Queue { table, .. } => table.pending(),
        }
    }

    fn func_id(&self) -> u64 {
        match self {
            Objects::Cas { .. } => CAS_TASK_FUNC_ID,
            Objects::Queue { .. } => QUEUE_TASK_FUNC_ID,
        }
    }
}

/// Everything a process (driver or child) needs once attached to an
/// existing image.
struct Attached {
    pmem: PMem,
    registry: FunctionRegistry,
    objects: Objects,
}

fn open_image(path: &Path, persist_delay_us: u32) -> Result<PMem, PError> {
    let len = std::fs::metadata(path)
        .map_err(|e| PError::InvalidConfig(format!("cannot stat image {}: {e}", path.display())))?
        .len() as usize;
    Ok(PMemBuilder::new()
        .len(len)
        .eager_flush(true)
        .persist_delay(Duration::from_micros(u64::from(persist_delay_us)))
        .build_file(path)?)
}

/// Reads the persist delay out of the root record without paying it:
/// the probe handle uses no delay, and reads never persist lines.
fn read_persist_delay(path: &Path) -> Result<u32, PError> {
    let probe = open_image(path, 0)?;
    let magic = probe.read_u64(POffset::new(ROOT_OFF))?;
    if magic != ROOT_MAGIC {
        return Err(PError::CorruptStack(format!(
            "image {} has no kill-harness root record (magic {magic:#x})",
            path.display()
        )));
    }
    Ok(probe.read_u32(POffset::new(ROOT_OFF + 40))?)
}

fn write_root(
    pmem: &PMem,
    object_base: POffset,
    table_base: POffset,
    init: i64,
    workers: usize,
    workload: KillWorkload,
    persist_delay_us: u32,
) -> Result<(), PError> {
    let (kind, variant) = workload.as_bytes();
    let base = POffset::new(ROOT_OFF);
    pmem.write_u64(base, ROOT_MAGIC)?;
    pmem.write_u64(base + 8u64, object_base.get())?;
    pmem.write_u64(base + 16u64, table_base.get())?;
    pmem.write_i64(base + 24u64, init)?;
    pmem.write_u32(base + 32u64, workers as u32)?;
    pmem.write_u8(base + 36u64, variant)?;
    pmem.write_u8(base + 37u64, kind)?;
    pmem.write_u32(base + 40u64, persist_delay_us)?;
    pmem.flush(base, 48)?;
    Ok(())
}

fn attach(path: &Path) -> Result<(Attached, i64), PError> {
    let persist_delay_us = read_persist_delay(path)?;
    let pmem = open_image(path, persist_delay_us)?;
    let base = POffset::new(ROOT_OFF);
    let magic = pmem.read_u64(base)?;
    if magic != ROOT_MAGIC {
        return Err(PError::CorruptStack(format!(
            "image {} has no kill-harness root record (magic {magic:#x})",
            path.display()
        )));
    }
    let object_base = POffset::new(pmem.read_u64(base + 8u64)?);
    let table_base = POffset::new(pmem.read_u64(base + 16u64)?);
    let init = pmem.read_i64(base + 24u64)?;
    let workers = pmem.read_u32(base + 32u64)? as usize;
    let variant = pmem.read_u8(base + 36u64)?;
    let kind = pmem.read_u8(base + 37u64)?;
    let mut registry = FunctionRegistry::new();
    let objects = match KillWorkload::from_bytes(kind, variant)? {
        KillWorkload::Cas(variant) => {
            let cas = RecoverableCas::open(pmem.clone(), object_base, workers, variant)?;
            let table = TaskTable::open(pmem.clone(), table_base)?;
            registry.register(
                CAS_TASK_FUNC_ID,
                CasTaskFunction::new(cas.clone(), table.clone()).into_arc(),
            )?;
            Objects::Cas { cas, table }
        }
        KillWorkload::Queue(variant) => {
            let queue = RecoverableQueue::open(pmem.clone(), object_base, variant)?;
            let table = QueueOpTable::open(pmem.clone(), table_base)?;
            registry.register(
                QUEUE_TASK_FUNC_ID,
                QueueTaskFunction::new(queue.clone(), table.clone()).into_arc(),
            )?;
            Objects::Queue { queue, table }
        }
    };
    Ok((
        Attached {
            pmem,
            registry,
            objects,
        },
        init,
    ))
}

/// Formats the image file for a campaign: runtime layout, the workload
/// object, its descriptor table and the root record. Returns the
/// initial register value (0 for queue workloads). Run by the driver
/// before the first worker process.
///
/// # Errors
///
/// File I/O, layout or formatting failures.
pub fn format_image(cfg: &KillCampaignConfig) -> Result<i64, PError> {
    let (lo, hi) = cfg.value_range;
    assert!(lo <= hi, "empty value range");
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let _ = std::fs::remove_file(&cfg.image);
    // Formatting runs without the persist delay (no process is racing a
    // kill against it); the delay recorded in the root record applies
    // to every child that attaches afterwards.
    let pmem = PMemBuilder::new()
        .len(cfg.region_len)
        .eager_flush(true)
        .build_file(&cfg.image)?;
    let stub = FunctionRegistry::new();
    let rt = Runtime::format(
        pmem.clone(),
        RuntimeConfig::new(cfg.workers)
            .stack_kind(cfg.stack_kind)
            .stack_capacity(8 * 1024),
        &stub,
    )?;
    let (object_base, table_base, init) = match cfg.workload {
        KillWorkload::Cas(variant) => {
            let init: i64 = rng.random_range(lo..=hi);
            let ops: Vec<(i64, i64)> = (0..cfg.n_ops)
                .map(|_| (rng.random_range(lo..=hi), rng.random_range(lo..=hi)))
                .collect();
            let cas = RecoverableCas::format(pmem.clone(), rt.heap(), cfg.workers, init, variant)?;
            let table = TaskTable::format(pmem.clone(), rt.heap(), &ops)?;
            (cas.base(), table.base(), init)
        }
        KillWorkload::Queue(variant) => {
            let ops: Vec<QueueTaskOp> = (0..cfg.n_ops)
                .map(|_| {
                    if rng.random_bool(cfg.enqueue_bias) {
                        QueueTaskOp::Enqueue(rng.random_range(lo..=hi))
                    } else {
                        QueueTaskOp::Dequeue
                    }
                })
                .collect();
            let capacity = ops
                .iter()
                .filter(|o| matches!(o, QueueTaskOp::Enqueue(_)))
                .count()
                .max(1) as u64;
            let queue = RecoverableQueue::format(pmem.clone(), rt.heap(), capacity, variant)?;
            let table = QueueOpTable::format(pmem.clone(), rt.heap(), &ops)?;
            (queue.base(), table.base(), 0i64)
        }
    };
    write_root(
        &pmem,
        object_base,
        table_base,
        init,
        cfg.workers,
        cfg.workload,
        cfg.persist_delay_us,
    )?;
    Ok(init)
}

/// What a worker process found to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildOutcome {
    /// Every descriptor was already done; nothing ran.
    AllDone,
    /// The worker ran (and completed) the pending descriptors.
    Ran {
        /// Tasks completed in this process.
        completed: usize,
    },
}

/// Normal-mode body of a worker process: attach to the image, enqueue
/// the still-pending descriptors in random order, and run them on
/// `workers` threads. The process is expected to be SIGKILLed at any
/// moment; everything it must not lose is persisted through the file
/// backend.
///
/// # Errors
///
/// Attachment failures, or an in-process crash signal (which cannot
/// happen in a worker process — no fail-points are armed — and is
/// therefore reported as an error).
pub fn child_run(image: &Path) -> Result<ChildOutcome, PError> {
    let (att, _) = attach(image)?;
    let rt = Runtime::open(att.pmem.clone(), &att.registry)?;
    let mut pending = att.objects.pending()?;
    if pending.is_empty() {
        return Ok(ChildOutcome::AllDone);
    }
    // Shuffle from OS entropy: kill timing already makes runs
    // non-reproducible, and distinct processes must not replay one
    // fixed order.
    let mut rng = SmallRng::seed_from_u64(rand::rng().random());
    pending.shuffle(&mut rng);
    let func_id = att.objects.func_id();
    let tasks: Vec<Task> = pending
        .iter()
        .map(|&i| Task::new(func_id, (i as u64).to_le_bytes().to_vec()))
        .collect();
    let report = rt.run_tasks(tasks);
    if report.crashed {
        return Err(PError::Task(
            "worker process observed an in-process crash signal".into(),
        ));
    }
    Ok(ChildOutcome::Ran {
        completed: report.completed,
    })
}

/// Recovery-mode body: attach and run one parallel recovery pass over
/// all worker stacks. Returns the number of frames recovered.
///
/// # Errors
///
/// Attachment or recovery failures.
pub fn child_recover(image: &Path) -> Result<usize, PError> {
    let (att, _) = attach(image)?;
    let rt = Runtime::open(att.pmem.clone(), &att.registry)?;
    Ok(rt.recover(RecoveryMode::Parallel)?.total_frames())
}

/// Reads the completed campaign's answers from the image and runs the
/// workload's semantic check (step 9): §5.1 serializability for CAS,
/// the FIFO witness check for the queue.
///
/// # Errors
///
/// Attachment failures, or [`PError::Task`] if any descriptor is still
/// pending (the campaign has not finished).
pub fn collect_report(image: &Path) -> Result<KillOutcome, PError> {
    let (att, init) = attach(image)?;
    match &att.objects {
        Objects::Cas { cas, table } => {
            let results = table.results()?;
            let mut ops = Vec::with_capacity(results.len());
            for (i, result) in results.iter().enumerate() {
                let (old, new) = table.op(i)?;
                let success = result.ok_or_else(|| {
                    PError::Task(format!("descriptor {i} still pending; campaign incomplete"))
                })?;
                ops.push(CasOp {
                    pid: 0,
                    old,
                    new,
                    success,
                });
            }
            let history = CasHistory::new(init, cas.read()?, ops);
            let verdict = check_serializability(&history);
            if let SerialVerdict::Serializable { order } = &verdict {
                replay_witness(&history, order).expect("serializability witness must replay");
            }
            Ok(KillOutcome::Cas { history, verdict })
        }
        Objects::Queue { queue, table } => {
            let history = build_queue_history(queue, table)?;
            let verdict = check_fifo(&history);
            Ok(KillOutcome::Queue { history, verdict })
        }
    }
}

/// Child subcommands the driver spawns; the binary maps these onto
/// [`child_run`] / [`child_recover`].
const CHILD_RUN: &str = "child-run";
const CHILD_RECOVER: &str = "child-recover";

fn spawn_child(exe: &Path, mode: &str, image: &Path) -> std::io::Result<std::process::Child> {
    Command::new(exe)
        .arg(mode)
        .arg(image)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
}

/// Waits up to `delay`, then reports whether the child exited on its
/// own (`Some(status)`) or is still running (`None`).
fn wait_with_deadline(
    child: &mut std::process::Child,
    delay: Duration,
) -> std::io::Result<Option<std::process::ExitStatus>> {
    let deadline = std::time::Instant::now() + delay;
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(Some(status));
        }
        if std::time::Instant::now() >= deadline {
            return Ok(None);
        }
        std::thread::sleep(Duration::from_micros(300));
    }
}

fn io_err(context: &str, e: std::io::Error) -> PError {
    PError::Task(format!("{context}: {e}"))
}

/// Runs a full real-`kill` campaign: format the image, repeatedly spawn
/// `exe child-run <image>` and SIGKILL it at a random moment, run (and
/// occasionally kill) `exe child-recover <image>` passes, and loop
/// until every descriptor completed; finally verify serializability.
///
/// `exe` must be a binary whose `child-run`/`child-recover` subcommands
/// call [`child_run`]/[`child_recover`] — normally the `kill_campaign`
/// binary itself (the driver re-invokes its own executable).
///
/// # Errors
///
/// Formatting, spawning or attachment failures, and child processes
/// that *exit with an error* (a child that dies from the driver's own
/// SIGKILL is the experiment working as intended, not an error).
pub fn run_kill_campaign(
    exe: &Path,
    cfg: &KillCampaignConfig,
) -> Result<KillCampaignReport, PError> {
    format_image(cfg)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x6B69_6C6C);
    let mut rounds = 0usize;
    let mut kills = 0usize;
    let mut recovery_kills = 0usize;
    let mut recovery_attempts = 0usize;

    loop {
        // Check for completion from the driver's side: the image is
        // quiescent between children.
        let (att, _) = attach(&cfg.image)?;
        if att.objects.pending()?.is_empty() {
            break;
        }
        drop(att);

        rounds += 1;
        let mut child =
            spawn_child(exe, CHILD_RUN, &cfg.image).map_err(|e| io_err("spawn worker", e))?;
        let delay = Duration::from_millis(rng.random_range(cfg.kill_delay.0..=cfg.kill_delay.1));
        let status = if kills < cfg.max_kills {
            wait_with_deadline(&mut child, delay).map_err(|e| io_err("wait for worker", e))?
        } else {
            Some(child.wait().map_err(|e| io_err("wait for worker", e))?)
        };

        match status {
            Some(status) => {
                // The worker finished this round on its own.
                if !status.success() {
                    return Err(PError::Task(format!("worker process failed: {status}")));
                }
                continue;
            }
            None => {
                // §5.2 step 5: kill at a random moment. The process
                // dies with SIGKILL; its unflushed dirty lines are lost
                // with it.
                let _ = child.kill();
                let _ = child.wait();
                kills += 1;
            }
        }

        // §5.2 step 6: restart in recovery mode until one pass
        // completes; the driver may kill recovery processes too
        // (repeated failures).
        loop {
            recovery_attempts += 1;
            let mut rec = spawn_child(exe, CHILD_RECOVER, &cfg.image)
                .map_err(|e| io_err("spawn recovery", e))?;
            let kill_this_one = recovery_kills + kills < cfg.max_kills * 2
                && rng.random_bool(cfg.recovery_kill_prob);
            let status = if kill_this_one {
                let delay = Duration::from_millis(rng.random_range(1..=6));
                wait_with_deadline(&mut rec, delay).map_err(|e| io_err("wait for recovery", e))?
            } else {
                Some(rec.wait().map_err(|e| io_err("wait for recovery", e))?)
            };
            match status {
                Some(status) if status.success() => break,
                Some(status) => {
                    return Err(PError::Task(format!("recovery process failed: {status}")))
                }
                None => {
                    let _ = rec.kill();
                    let _ = rec.wait();
                    recovery_kills += 1;
                }
            }
        }
    }

    let outcome = collect_report(&cfg.image)?;
    Ok(KillCampaignReport {
        rounds,
        kills,
        recovery_kills,
        recovery_attempts,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_image(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pstack-kill-{tag}-{}.img", std::process::id()));
        p
    }

    #[test]
    fn format_then_attach_round_trips_root_record() {
        let image = tmp_image("root");
        let cfg = KillCampaignConfig::new(&image, 10, 3);
        let init = format_image(&cfg).unwrap();
        let (att, init2) = attach(&image).unwrap();
        assert_eq!(init, init2);
        let Objects::Cas { cas, table } = &att.objects else {
            panic!("default workload is CAS");
        };
        assert_eq!(cas.processes(), 4);
        assert_eq!(cas.read().unwrap(), init);
        assert_eq!(table.len(), 10);
        assert_eq!(att.objects.pending().unwrap().len(), 10);
        assert!(att.registry.contains(CAS_TASK_FUNC_ID));
        let _ = std::fs::remove_file(&image);
    }

    #[test]
    fn attach_rejects_unformatted_image() {
        let image = tmp_image("bad");
        std::fs::write(&image, vec![0u8; 4096]).unwrap();
        assert!(matches!(attach(&image), Err(PError::CorruptStack(_))));
        let _ = std::fs::remove_file(&image);
    }

    #[test]
    fn child_run_completes_everything_without_kills() {
        // In-process use of the child bodies: a single "worker process"
        // run with no kill must finish all descriptors, after which
        // another run reports AllDone and collect_report verifies.
        let image = tmp_image("norm");
        let cfg = KillCampaignConfig::new(&image, 12, 5);
        format_image(&cfg).unwrap();
        match child_run(&image).unwrap() {
            ChildOutcome::Ran { completed } => assert_eq!(completed, 12),
            ChildOutcome::AllDone => panic!("first run must execute tasks"),
        }
        assert_eq!(child_run(&image).unwrap(), ChildOutcome::AllDone);
        let outcome = collect_report(&image).unwrap();
        assert_eq!(outcome.ops(), 12);
        assert!(outcome.is_consistent(), "{outcome:?}");
        let _ = std::fs::remove_file(&image);
    }

    #[test]
    fn child_recover_is_idempotent_on_clean_image() {
        let image = tmp_image("rec");
        let cfg = KillCampaignConfig::new(&image, 4, 9);
        format_image(&cfg).unwrap();
        assert_eq!(child_recover(&image).unwrap(), 0);
        assert_eq!(child_recover(&image).unwrap(), 0);
        let _ = std::fs::remove_file(&image);
    }

    #[test]
    fn collect_report_rejects_incomplete_campaign() {
        let image = tmp_image("inc");
        let cfg = KillCampaignConfig::new(&image, 4, 11);
        format_image(&cfg).unwrap();
        assert!(matches!(collect_report(&image), Err(PError::Task(_))));
        let _ = std::fs::remove_file(&image);
    }

    #[test]
    fn config_builders_apply() {
        let cfg = KillCampaignConfig::new("/tmp/x", 5, 1)
            .narrow()
            .variant(CasVariant::NoMatrix)
            .kill_delay_ms(1, 2)
            .max_kills(9);
        assert_eq!(cfg.value_range, (-10, 10));
        assert_eq!(cfg.workload, KillWorkload::Cas(CasVariant::NoMatrix));
        assert_eq!(cfg.kill_delay, (1, 2));
        assert_eq!(cfg.max_kills, 9);
        let cfg = KillCampaignConfig::new("/tmp/x", 5, 1).queue(QueueVariant::Nsrl);
        assert_eq!(cfg.workload, KillWorkload::Queue(QueueVariant::Nsrl));
        assert_eq!(cfg.value_range, (-100, 100));
    }

    #[test]
    fn queue_image_round_trips_and_runs_in_process() {
        let image = tmp_image("queue");
        let cfg = KillCampaignConfig::new(&image, 14, 8).queue(QueueVariant::Nsrl);
        format_image(&cfg).unwrap();
        let (att, _) = attach(&image).unwrap();
        assert!(matches!(att.objects, Objects::Queue { .. }));
        assert_eq!(att.objects.pending().unwrap().len(), 14);
        drop(att);
        match child_run(&image).unwrap() {
            ChildOutcome::Ran { completed } => assert_eq!(completed, 14),
            ChildOutcome::AllDone => panic!("first run must execute tasks"),
        }
        let outcome = collect_report(&image).unwrap();
        assert!(matches!(outcome, KillOutcome::Queue { .. }));
        assert!(outcome.is_consistent(), "{outcome:?}");
        let _ = std::fs::remove_file(&image);
    }
}
